#!/usr/bin/env python
"""Quickstart: build a synthetic Twitter world and audit an account.

Creates a target with a known follower composition (35 % inactive,
15 % fake, 50 % genuine), then audits it twice:

* with the **Fake Project classifier** (FC) — uniform sampling over the
  whole follower list, disclosed criteria;
* with a re-implementation of **Twitteraudit** — one newest-5000 page
  and an undisclosed 5-point score.

Run::

    python examples/quickstart.py
"""

from repro.analytics import Twitteraudit
from repro.audit import AuditRequest
from repro.core import SimClock, format_duration
from repro.fc import FakeClassifierEngine, default_detector
from repro.twitter import add_simple_target, build_world


def main() -> None:
    # 1. A synthetic world, seeded for reproducibility.
    world = build_world(seed=7)
    add_simple_target(
        world, "example_vip", followers=25_000,
        inactive=0.35, fake=0.15, genuine=0.50,
    )
    clock = SimClock()

    # 2. The FC engine: statistically sound, honest about its cost.
    print("training the FC detector on a persona gold standard ...")
    fc = FakeClassifierEngine(world, clock, default_detector(seed=7))
    report = fc.audit(AuditRequest(target="example_vip"))
    print(f"\n[{report.tool}] @{report.target} "
          f"({report.followers_count} followers, "
          f"sample {report.sample_size}):")
    print(f"  inactive {report.inactive_pct}%  fake {report.fake_pct}%  "
          f"genuine {report.genuine_pct}%")
    print(f"  response time: {format_duration(report.response_seconds)} "
          f"(simulated; the paper's Table II shows FC always needs >180s)")

    # 3. Twitteraudit: fast, opaque, and sampling only the newest 5000.
    ta = Twitteraudit(world, clock)
    report = ta.audit(AuditRequest(target="example_vip"))
    print(f"\n[{report.tool}] @{report.target}:")
    print(f"  fake {report.fake_pct}%  genuine {report.genuine_pct}%  "
          f"(no inactive class)")
    print(f"  response time: {format_duration(report.response_seconds)}")

    # 4. The ground truth, which only a simulation can hand you.
    composition = world.population("example_vip").composition(clock.now())
    truth = ", ".join(
        f"{label.value} {100 * share:.1f}%"
        for label, share in composition.items())
    print(f"\nground truth: {truth}")
    print("\nNote how FC lands on the truth while the head-sampling tool "
          "does not — that asymmetry is the paper's whole point.")


if __name__ == "__main__":
    main()
