#!/usr/bin/env python
"""Sampling-bias study: what the head of a follower list hides.

A self-contained tour of ``repro.stats``: confidence-interval
arithmetic (why 9604?), the purchased-burst worked example from the
paper's Section II, and an empirical sweep of head-frame bias over a
population with a recency gradient.

Run::

    python examples/sampling_bias_study.py
"""

from repro.core import PAPER_EPOCH
from repro.experiments import TextTable
from repro.stats import (
    achieved_margin,
    gradient_head_bias,
    head_sampling_bias,
    purchased_burst_rates,
    required_sample_size,
)
from repro.twitter import Label, add_simple_target, build_world


def sample_size_arithmetic() -> None:
    print("=== 1. Why does FC sample exactly 9604 followers? ===")
    n = required_sample_size(margin=0.01, confidence=0.95)
    print(f"smallest n with a 95% CI of +/-1% (worst case p=0.5): {n}")
    table = TextTable(["tool", "sample", "margin it buys (if unbiased)"])
    for tool, size in (("StatusPeople", 700), ("Socialbakers", 2000),
                       ("Twitteraudit", 5000), ("Fake Project FC", 9604)):
        table.add_row(tool, size, f"+/-{100 * achieved_margin(size):.2f}%")
    print(table.render())


def purchased_burst() -> None:
    print("\n=== 2. The paper's worked example (Section II) ===")
    for head in (1000, 35_000):
        report = purchased_burst_rates(100_000, 10_000, head_size=head)
        print(f"100K genuine + 10K bought, newest-{head} frame: "
              f"frame says {100 * report.head_rate:.1f}% fake, "
              f"truth is {100 * report.whole_rate:.1f}%")


def gradient_sweep() -> None:
    print("\n=== 3. Head bias under a recency gradient ===")
    base, tilt, inactive = 40_000, 0.6, 0.45
    world = build_world(seed=99)
    add_simple_target(world, "study", base, inactive, 0.05, 0.50,
                      tilt=tilt, pieces=8)
    population = world.population("study")
    flags = [population.true_label_at(p) is Label.INACTIVE
             for p in range(population.size_at(PAPER_EPOCH))]

    table = TextTable(
        ["frame", "inactive rate seen", "bias vs truth",
         "closed-form prediction"])
    whole = sum(flags) / len(flags)
    for head in (1000, 5000, 15_000, base):
        report = head_sampling_bias(lambda p: flags[p], base, head)
        predicted = gradient_head_bias(inactive, tilt, head / base)
        table.add_row(
            "whole list" if head == base else f"newest {head}",
            f"{100 * report.head_rate:.1f}%",
            f"{100 * report.absolute_bias:+.1f}pp",
            f"{100 * predicted:+.1f}pp",
        )
    print(f"true inactive rate: {100 * whole:.1f}%")
    print(table.render())
    print(
        "\nHead frames systematically *underestimate* inactivity — which "
        "is exactly why Socialbakers and StatusPeople report far fewer "
        "inactive followers than FC in the paper's Table III."
    )


def main() -> None:
    sample_size_arithmetic()
    purchased_burst()
    gradient_sweep()


if __name__ == "__main__":
    main()
