#!/usr/bin/env python
"""Reproduce the whole paper in one run.

Executes every experiment of the evaluation (E1-E8) against a freshly
built testbed and prints the combined report — the same artefacts the
benchmark suite regenerates one by one, stitched together.  Expect a
couple of minutes of wall time; the simulated time spent inside is
measured in weeks.

Run::

    python examples/reproduce_paper.py [output.txt]
"""

import sys
import time

from repro.experiments import run_all


def main() -> None:
    started = time.time()
    print("running the full experiment suite (E1-E8) ...", flush=True)
    suite = run_all(seed=42, ordering_days=5, coverage_trials=100)
    report = suite.report()
    print()
    print(report)
    elapsed = time.time() - started
    print(f"\ncompleted {len(suite.sections)} experiments "
          f"in {elapsed:.0f}s of wall time.")
    if len(sys.argv) > 1:
        with open(sys.argv[1], "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"report written to {sys.argv[1]}")


if __name__ == "__main__":
    main()
