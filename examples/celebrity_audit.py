#!/usr/bin/env python
"""Celebrity audit: four engines, one bought-followers scandal.

Builds a Romney-style scenario — a large account whose follower base
jumped by a purchased block a few months ago — and runs all four
engines over it, printing the side-by-side report the paper's Table III
makes for real accounts, plus each engine's response time.

Run::

    python examples/celebrity_audit.py
"""

from repro.audit import AuditRequest, build_engines
from repro.core import SimClock, format_duration
from repro.experiments import TextTable
from repro.fc import default_detector
from repro.twitter import add_simple_target, build_world


def main() -> None:
    world = build_world(seed=2014)
    # 120K followers: 30% long-gone, 18% fake (two thirds of them bought
    # in one recent burst), the rest genuine.
    add_simple_target(
        world, "senator_x", followers=120_000,
        inactive=0.30, fake=0.18, genuine=0.52,
        fake_burst_fraction=0.66, fake_burst_position=0.93,
        verified=True,
    )
    clock = SimClock()

    print("training the FC detector ...")
    engines = build_engines(world, clock, default_detector(seed=3), 3)

    table = TextTable(
        ["engine", "sample", "inactive %", "fake %", "genuine %",
         "response time"],
        title="@senator_x, as seen by four fake-follower analytics",
    )
    for engine in engines.values():
        report = engine.audit(AuditRequest(target="senator_x"))
        table.add_row(
            report.tool,
            report.sample_size,
            "-" if report.inactive_pct is None else f"{report.inactive_pct}",
            f"{report.fake_pct}",
            f"{report.genuine_pct}",
            format_duration(report.response_seconds),
        )
    print()
    print(table.render())

    composition = world.population("senator_x").composition(
        clock.now(), sample=8000)
    print("\nground truth: " + ", ".join(
        f"{label.value} {100 * share:.1f}%"
        for label, share in composition.items()))
    print(
        "\nReading guide: FC recovers the truth from a uniform 9604-"
        "follower sample.  The head-sampling tools each tell a different "
        "story — the 'general disagreement' of the paper's Table III — "
        "because the newest slice of the list is nothing like the base."
    )


if __name__ == "__main__":
    main()
