#!/usr/bin/env python
"""Live attack simulation: buy followers, watch every detector react.

A discrete-event scenario on the mutable graph backend:

* day 0-9    — @rising_star grows organically (~200 followers/day);
* day 10     — 8000 followers are bought from the cheap-bulk seller
               (delivered within two hours);
* day 10-24  — attrition quietly erodes the purchased block while
               organic growth continues.

Three instruments watch the same account:

1. the **growth monitor** (daily counter polling, burst detection);
2. the **StatusPeople engine** (head-of-list sampler) audited before
   and after the purchase;
3. the **FC engine** (uniform sampler) at the same instants.

Run::

    python examples/live_attack_simulation.py
"""

from repro.analytics import StatusPeopleFakers
from repro.audit import AuditRequest
from repro.core import DAY, HOUR, PAPER_EPOCH, SimClock, YEAR, isoformat
from repro.fc import FakeClassifierEngine, default_detector
from repro.growth import BurstDetector, series_from_observations
from repro.market import CHEAP_BULK, Marketplace
from repro.twitter import (
    Account,
    LiveSimulation,
    OrganicGrowthProcess,
    SocialGraph,
    TweetingProcess,
)

TARGET_ID = 4242


def build_scenario():
    graph = SocialGraph(seed=7)
    graph.add_account(Account(
        user_id=TARGET_ID, screen_name="rising_star",
        created_at=PAPER_EPOCH - 2 * YEAR,
        statuses_count=3200, last_tweet_at=PAPER_EPOCH - HOUR,
        followers_count=0, friends_count=350,
    ))
    simulation = LiveSimulation(graph, SimClock(PAPER_EPOCH), seed=99)
    simulation.add_process(OrganicGrowthProcess(TARGET_ID, per_day=200.0))
    simulation.add_process(TweetingProcess(TARGET_ID, per_day=5.0))
    # Seed an initial organic audience so the day-10 audit has a base.
    simulation.run_for(10 * DAY)
    return simulation


def audit(simulation, detector, moment_label):
    graph = simulation.graph
    clock = simulation.clock
    sp = StatusPeopleFakers(graph, clock, seed=4)
    fc = FakeClassifierEngine(graph, clock, detector, seed=4)
    request = AuditRequest(target="rising_star")
    sp_report = sp.audit(request)
    fc_report = fc.audit(request)
    followers = graph.follower_count(TARGET_ID, clock.now())
    print(f"\n--- audit {moment_label} "
          f"({followers} followers, {isoformat(clock.now())[:10]}) ---")
    print(f"  StatusPeople: {sp_report.inactive_pct}% inactive, "
          f"{sp_report.fake_pct}% fake, {sp_report.genuine_pct}% genuine")
    print(f"  Fake Project: {fc_report.inactive_pct}% inactive, "
          f"{fc_report.fake_pct}% fake, {fc_report.genuine_pct}% genuine")


def main() -> None:
    print("building the scenario (10 days of organic growth) ...")
    simulation = build_scenario()
    detector = default_detector(seed=99)
    market = Marketplace(simulation, seed=13)

    audit(simulation, detector, "BEFORE the purchase")

    print("\nday 10: placing an order with the cheap-bulk seller ...")
    order = market.place_order(CHEAP_BULK, TARGET_ID, quantity=8000)
    print(f"  8000 followers for ${order.price:.2f}, delivery within "
          f"{CHEAP_BULK.delivery_hours(8000):.1f}h")

    # The watchdog keeps polling daily through the attack.
    observations = []
    for day in range(15):
        observations.append((
            simulation.now(),
            simulation.graph.follower_count(TARGET_ID, simulation.now())))
        simulation.run_for(DAY)
    series = series_from_observations(observations)
    events = BurstDetector().detect(series)
    print(f"\ngrowth monitor over days 10-24: "
          f"{'ALERT' if events else 'quiet'}")
    if events:
        event = events[0]
        print(f"  burst on {isoformat(event.start_time)[:10]}: "
              f"{event.arrivals} arrivals vs baseline "
              f"{event.baseline:.0f}/day (z={event.z_score:.0f})")

    audit(simulation, detector, "AFTER the purchase (day 25)")
    print(f"\nattrition so far: {order.delivered - order.retained} of the "
          f"{order.delivered} purchased followers already unfollowed "
          f"({CHEAP_BULK.daily_attrition:.0%}/day).")
    print("\nNote the asymmetry the paper predicts: the purchased block "
          "sits at the head of the follower list, so the head-sampling "
          "tool's numbers jump far more than the base truly changed, "
          "while FC moves by exactly the purchased share.")


if __name__ == "__main__":
    main()
