#!/usr/bin/env python
"""Growth monitoring: catching the "Romney jump".

The paper's introduction recounts how the fake-follower debate started:
during the 2012 US campaign, bloggers "noticed that the Twitter account
of challenger Romney experienced a sudden jump in the number of
followers, the great majority of them has been later claimed to be
fake".

This example runs that watchdog: a monitor that polls an account's
follower count once per (simulated) day and applies a robust-z-score
burst detector.  One target grows organically; the other takes delivery
of a purchased block mid-campaign.

Run::

    python examples/growth_monitoring.py
"""

from repro.core import DAY, PAPER_EPOCH, SimClock, isoformat
from repro.experiments import ascii_bar_chart
from repro.growth import GrowthMonitor
from repro.twitter import add_simple_target, build_world

WATCH_DAYS = 21


def main() -> None:
    world = build_world(seed=2012)
    # The clean account: steady organic growth only.
    add_simple_target(
        world, "incumbent", followers=80_000,
        inactive=0.30, fake=0.05, genuine=0.65,
        daily_new_followers=150,
    )
    # The challenger: same size, but a purchased block equal to ~13% of
    # the base lands a few days before the reference instant.
    add_simple_target(
        world, "challenger", followers=80_000,
        inactive=0.25, fake=0.18, genuine=0.57,
        fake_burst_fraction=0.85, fake_burst_position=0.995,
        created_years_before=1.0, daily_new_followers=150,
    )

    for handle in ("incumbent", "challenger"):
        clock = SimClock(PAPER_EPOCH - WATCH_DAYS * DAY)
        monitor = GrowthMonitor(world, clock)
        report = monitor.watch(handle, days=WATCH_DAYS)

        print(f"\n=== @{handle}: {WATCH_DAYS} days of daily polling ===")
        chart = ascii_bar_chart(
            [(f"day {day:2d}", float(count))
             for day, count in enumerate(report.series.arrivals)],
            title="new followers per day",
        )
        print(chart)
        if report.suspicious:
            event = report.bursts[0]
            print(f"\nALERT: burst on {isoformat(event.start_time)[:10]} — "
                  f"{event.arrivals} arrivals vs a baseline of "
                  f"{event.baseline:.0f}/day (z = {event.z_score:.1f}).")
            print(f"estimated purchased block: "
                  f"~{report.purchased_estimate} followers")
        else:
            print("\nno anomaly: growth is consistent with the "
                  "account's organic baseline.")
        calls = monitor.client.call_log.count()
        print(f"(cost: {calls} API calls — the monitor never crawls "
              f"a single follower)")


if __name__ == "__main__":
    main()
