#!/usr/bin/env python
"""Train your own fake-follower detector, the Fake Project way.

Walks the full Section III methodology: build a gold standard of
a-priori-labelled accounts, evaluate the era's rule-based baselines on
it, train decision-tree and random-forest classifiers on profile-only
(class A) and full (class A+B) feature sets, and finally pick the
production detector by *crawling cost* — the optimized-classifier step
of [12].

Run::

    python examples/train_your_own_detector.py
"""

from repro.core import format_duration
from repro.experiments import TextTable
from repro.fc import (
    BASELINE_RULESETS,
    FULL_FEATURE_SET,
    PROFILE_FEATURE_SET,
    build_gold_standard,
    evaluate_ruleset,
    rank_by_cost,
    select_under_budget,
    train_and_evaluate,
    train_detector,
)


def main() -> None:
    print("building the gold standard (a-priori-known labels) ...")
    gold = build_gold_standard(n_fake=400, n_genuine=400, seed=1)
    train, test = gold.split(train_fraction=0.7, seed=1)

    # 1. The literature's rule sets, straight on the gold standard.
    table = TextTable(["approach", "accuracy", "F1", "MCC"],
                      title="baselines vs learned classifiers")
    for ruleset in BASELINE_RULESETS:
        matrix = evaluate_ruleset(ruleset, test)
        table.add_row(f"rules:{ruleset.name}", f"{matrix.accuracy:.3f}",
                      f"{matrix.f1:.3f}", f"{matrix.mcc:.3f}")

    # 2. Learned classifiers, held-out evaluation.
    for feature_set, tag in ((PROFILE_FEATURE_SET, "A"),
                             (FULL_FEATURE_SET, "A+B")):
        for model in ("tree", "forest"):
            __, report = train_and_evaluate(
                gold, feature_set=feature_set, model=model, seed=1)
            table.add_row(f"ml:{model}[{tag}]",
                          f"{report.matrix.accuracy:.3f}",
                          f"{report.matrix.f1:.3f}",
                          f"{report.matrix.mcc:.3f}")
    print(table.render())

    # 3. Which features does the forest actually use?
    detector = train_detector(train, feature_set=PROFILE_FEATURE_SET,
                              model="forest", seed=1)
    importances = detector.model.feature_importances()
    ranked = sorted(zip(PROFILE_FEATURE_SET.names, importances),
                    key=lambda pair: pair[1], reverse=True)
    print("\ntop class-A features by split importance:")
    for name, importance in ranked[:5]:
        print(f"  {name:<22} {importance:.3f}")

    # 4. The cost-aware selection: what can run inside a 4-minute audit?
    candidates = [
        train_detector(train, feature_set=PROFILE_FEATURE_SET,
                       model="forest", seed=1),
        train_detector(train, feature_set=FULL_FEATURE_SET,
                       model="forest", seed=1),
    ]
    print("\nquality vs crawl cost for a 9604-follower audit:")
    for row in rank_by_cost(candidates, test, accounts=9604):
        print(f"  {row.name:<12} MCC {row.mcc:.3f}, "
              f"crawl {format_duration(row.cost.seconds)}")
    chosen = select_under_budget(candidates, test, 9604,
                                 budget_seconds=240)
    print(f"\nproduction pick under a 240s budget: {chosen.name} "
          f"(this is why the paper's FC answers in ~200s, Table II)")


if __name__ == "__main__":
    main()
