"""Bench E8 — the FC sample size (9604) and empirical coverage.

Paper (Section IV-C): "the sample size is always 9604, to guarantee a
confidence level of 95%, with a confidence interval of 1%."
"""

import pytest

from repro.experiments import run_sample_size_experiment
from repro.stats import required_sample_size


@pytest.mark.benchmark(group="sample-size")
def test_sample_size(once, save_result):
    coverage, rendered = once(
        run_sample_size_experiment, trials=150, seed=42)
    save_result("sample_size", rendered)
    print("\n" + rendered)

    assert required_sample_size(0.01, 0.95) == 9604
    # Nominal coverage is 95%; finite-population sampling does better.
    assert coverage.coverage >= 0.93
    assert coverage.sample_size == 9604
