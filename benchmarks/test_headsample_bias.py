"""Bench E6 — the purchased-fakes head-bias demonstration.

Paper (Sections II-A/II-D): an account with 100K genuine followers that
buys 10K fakes "could show a 100% of fake, while the right percentage
should be around 9%" under a newest-1K sampling frame.
"""

import pytest

from repro.experiments import run_purchased_burst_demo


@pytest.mark.benchmark(group="headsample-bias")
def test_headsample_bias(once, save_result, detector):
    result, rendered = once(
        run_purchased_burst_demo, seed=42, detector=detector)
    save_result("headsample_bias", rendered)
    print("\n" + rendered)

    # Closed forms, paper numbers: truth ~9.1%, newest-1K head 100%.
    assert result.closed_form_1k_head.whole_rate == pytest.approx(
        0.0909, abs=0.001)
    assert result.closed_form_1k_head.head_rate == 1.0
    assert result.closed_form_35k_head.head_rate == pytest.approx(
        10_000 / 35_000, abs=0.001)

    # Live engines: the newest-1K frame reports (almost) everything
    # fake; the production Fakers frame still overestimates ~3x; FC's
    # uniform sample recovers the truth.
    assert result.sp_newest1k_fake_pct > 85.0
    assert result.sp_default_fake_pct > 2.0 * result.true_fake_pct
    assert result.fc_fake_plus_inactive_pct == pytest.approx(
        result.true_fake_pct, abs=2.5)
