"""Ablation A1 — estimator error vs sample size.

Sweeps the sample size from StatusPeople's 700 to FC's 9604 (and
below), measuring the mean absolute estimation error over repeated
*unbiased* uniform samples.  The sweep shows why 9604 is the right
number: the observed error tracks the theoretical worst-case margin
and only drops to the ±1 % target at the FC size.
"""

import pytest

from repro.core import PAPER_EPOCH, make_rng
from repro.experiments import TextTable
from repro.stats import achieved_margin, uniform_sample
from repro.twitter import Label, add_simple_target, build_world

SIZES = (100, 400, 700, 2000, 5000, 9604)
TRIALS = 60


def sweep_estimation_error():
    world = build_world(seed=42)
    add_simple_target(world, "sweep", 60_000, 0.42, 0.1, 0.48)
    population = world.population("sweep")
    size = population.size_at(PAPER_EPOCH)

    labels = [population.true_label_at(p) is Label.INACTIVE
              for p in range(size)]
    truth = sum(labels) / size

    rng = make_rng(42, "a1")
    rows = []
    for n in SIZES:
        errors = []
        for __ in range(TRIALS):
            positions = uniform_sample(rng, size, n)
            estimate = sum(1 for p in positions if labels[p]) / n
            errors.append(abs(estimate - truth))
        rows.append((n, sum(errors) / TRIALS, max(errors),
                     achieved_margin(n)))
    return truth, rows


@pytest.mark.benchmark(group="ablation-a1")
def test_ablation_sample_size(once, save_result):
    truth, rows = once(sweep_estimation_error)

    table = TextTable(
        ["sample size", "mean |error|", "max |error|",
         "worst-case 95% margin"],
        title=f"A1: estimation error vs sample size "
              f"(true inactive rate {100 * truth:.2f}%)",
    )
    for n, mean_error, max_error, margin in rows:
        table.add_row(n, f"{100 * mean_error:.2f}%",
                      f"{100 * max_error:.2f}%", f"{100 * margin:.2f}%")
    rendered = table.render()
    save_result("ablation_a1_sample_size", rendered)
    print("\n" + rendered)

    mean_errors = [mean for __, mean, __m, __g in rows]
    # Error shrinks as n grows (allowing tiny sampling noise).
    assert mean_errors[-1] < mean_errors[0] / 3
    # FC's 9604 achieves the sub-1% regime the paper claims.
    assert mean_errors[-1] < 0.01
    # Observed error stays within the theoretical margin (p=0.5 bound).
    for n, mean_error, __max_error, margin in rows:
        assert mean_error <= margin
