"""Shared fixtures for the benchmark suite.

Every bench regenerates one of the paper's tables/figures (or one of
the DESIGN.md ablations), asserts the paper's *shape* claims on the
measured rows, and writes the rendered table to
``benchmarks/results/<name>.txt`` so the regenerated artefacts survive
the run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.fc import default_detector

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def detector():
    """The production FC detector, trained once per session."""
    return default_detector(seed=0)


@pytest.fixture(scope="session")
def save_result():
    """Persist a rendered experiment table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _save


@pytest.fixture
def once(benchmark):
    """Run a heavy experiment exactly once under the benchmark timer."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run
