"""Headline benchmark: watermarked delta re-audits vs full re-audits.

The ISSUE-10 claim, measured end to end: a fleet re-audit sweep with
sparse purchases costs >= 5x fewer API calls and finishes with >= 3x
lower (simulated) makespan when it goes through the watermarked delta
path instead of full audits — and whenever the full audit samples the
same frame the merge reproduces, the two strategies' verdicts are
bit-identical.  Everything here runs on the simulated clock, so the
measured numbers are byte-stable and land in
``benchmarks/results/BENCH_delta_audit.json`` as the recorded floors.

The floors default to the ISSUE targets and are tunable via
``DELTA_MIN_CALL_REDUCTION`` / ``DELTA_MIN_MAKESPAN_SPEEDUP`` (the CI
wallclock-bench job pins them at the ISSUE values — the measurement is
deterministic, so there is no runner-noise excuse to relax them).
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.experiments.perf import measure_delta

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

MIN_CALL_REDUCTION = float(os.environ.get("DELTA_MIN_CALL_REDUCTION", "5"))
MIN_MAKESPAN_SPEEDUP = float(os.environ.get("DELTA_MIN_MAKESPAN_SPEEDUP", "3"))


def test_delta_reaudit_sweep_beats_full(save_result):
    doc = measure_delta(seed=0)

    # Correctness before speed: every account the delta path merged or
    # replayed must agree with a fresh full audit of the same frame.
    assert doc["verdicts_matching"] == doc["accounts"], doc
    # The sweep exercised both cheap paths: replayed watermarks on the
    # untouched accounts, head-only merges on the purchased ones.
    assert doc["unchanged"] == doc["accounts"] - doc["purchased"]
    assert doc["merged"] == doc["purchased"]
    assert doc["fallbacks"] == 0
    # O(anchor depth): one head page per account, not a full crawl.
    assert doc["head_pages"] == doc["accounts"]

    doc["min_call_reduction"] = MIN_CALL_REDUCTION
    doc["min_makespan_speedup"] = MIN_MAKESPAN_SPEEDUP
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_delta_audit.json").write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    save_result(
        "delta_audit",
        "\n".join(f"{key}: {value}" for key, value in sorted(doc.items())))

    assert doc["call_reduction"] >= MIN_CALL_REDUCTION, (
        f"delta sweep used {doc['delta_api_calls']} API calls vs "
        f"{doc['full_api_calls']} full — "
        f"{doc['call_reduction']:.1f}x is below the "
        f"{MIN_CALL_REDUCTION:g}x floor")
    assert doc["makespan_speedup"] >= MIN_MAKESPAN_SPEEDUP, (
        f"delta makespan {doc['delta_makespan_seconds']:.1f}s vs "
        f"{doc['full_makespan_seconds']:.1f}s full — "
        f"{doc['makespan_speedup']:.1f}x is below the "
        f"{MIN_MAKESPAN_SPEEDUP:g}x floor")
