"""Bench E3 — regenerate Table II (response time to first analysis).

Shape claims asserted against the measured rows:

* FC always exceeds 180 s and grows with follower count;
* Twitteraudit and StatusPeople pre-cached exactly the accounts the
  paper caught them caching (@pinucciotwit; @pinucciotwit,
  @mvbrambilla, @pierofassino) and serve those in < 5 s;
* Socialbakers never answers from cache and stays around ~10 s;
* fresh latencies land in the paper's bands (TA ~40-55 s, SP ~20-32 s,
  SB ~7-13 s).
"""

import pytest

from repro.experiments import run_response_time_experiment


@pytest.mark.benchmark(group="table2")
def test_table2_response_time(once, save_result, detector):
    rows, rendered = once(
        run_response_time_experiment, seed=42, detector=detector)
    save_result("table2_response_time", rendered)
    print("\n" + rendered)

    assert len(rows) == 13
    fc_times = []
    for row in rows:
        handle = row.account.handle
        fc_times.append((row.followers_used, row.seconds["fc"]))
        assert row.seconds["fc"] > 180.0, handle
        assert not row.cached["socialbakers"], handle
        assert row.seconds["socialbakers"] < 16.0, handle

        ta_cached = handle in ("pinucciotwit",)
        sp_cached = handle in ("pinucciotwit", "mvbrambilla", "pierofassino")
        assert row.cached["twitteraudit"] == ta_cached, handle
        assert row.cached["statuspeople"] == sp_cached, handle
        if ta_cached:
            assert row.seconds["twitteraudit"] < 5.0
        else:
            assert 30.0 <= row.seconds["twitteraudit"] <= 70.0, handle
        if sp_cached:
            assert row.seconds["statuspeople"] < 5.0
        else:
            assert 15.0 <= row.seconds["statuspeople"] <= 40.0, handle

    # FC latency grows with the follower base (more id pages to fetch).
    fc_times.sort()
    assert fc_times[-1][1] > fc_times[0][1]
