"""Ablation A3 — rule sets vs trained classifiers on the gold standard.

Reproduces the finding of [12] the paper relies on (Section III):
"algorithms based on classification rules do not succeed in detecting
the fakes in our reference dataset, while better results were achieved
by relying on those features proposed by Academia for spam accounts
detection."
"""

import pytest

from repro.experiments import TextTable
from repro.fc import build_gold_standard, compare_approaches


@pytest.mark.benchmark(group="ablation-a3")
def test_ablation_classifiers(once, save_result):
    gold = build_gold_standard(n_fake=400, n_genuine=400, seed=42)
    results = once(compare_approaches, gold, 42)

    table = TextTable(
        ["approach", "accuracy", "precision", "recall", "F1", "MCC"],
        title="A3: detection quality on the gold standard "
              "(800 a-priori-labelled accounts)",
    )
    for name in sorted(results):
        matrix = results[name]
        table.add_row(name, f"{matrix.accuracy:.3f}",
                      f"{matrix.precision:.3f}", f"{matrix.recall:.3f}",
                      f"{matrix.f1:.3f}", f"{matrix.mcc:.3f}")
    rendered = table.render()
    save_result("ablation_a3_classifiers", rendered)
    print("\n" + rendered)

    rule_mccs = {name: m.mcc for name, m in results.items()
                 if name.startswith("rules:")}
    ml_mccs = {name: m.mcc for name, m in results.items()
               if name.startswith("ml:")}
    # Every learned model beats every rule set.
    assert min(ml_mccs.values()) > max(rule_mccs.values())
    # The learned models are genuinely good, not just relatively better.
    assert min(ml_mccs.values()) > 0.8
    # And at least one rule set performs poorly enough to justify the
    # paper's scepticism about rule-based tools.
    assert min(rule_mccs.values()) < 0.6
