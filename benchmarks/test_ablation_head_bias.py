"""Ablation A2 — head-of-list bias vs frame depth and gradient strength.

The design choice under test: the FC engine samples the *whole*
follower list, the commercial tools the newest-k head.  Over a
population with the paper's recency gradient (long-term followers more
often inactive), the sweep measures the inactive-rate bias of head
frames of increasing depth and compares it against the closed-form
prediction of ``repro.stats.gradient_head_bias``.
"""

import pytest

from repro.core import PAPER_EPOCH
from repro.experiments import TextTable
from repro.stats import gradient_head_bias, head_sampling_bias
from repro.twitter import Label, add_simple_target, build_world

BASE = 50_000
HEADS = (1000, 2000, 5000, 15_000, 35_000, 50_000)
TILT = 0.6
INACTIVE = 0.4


def sweep_head_bias():
    world = build_world(seed=42)
    add_simple_target(world, "tilted", BASE, INACTIVE, 0.1, 0.5,
                      tilt=TILT, pieces=8)
    population = world.population("tilted")
    labels = [population.true_label_at(p) is Label.INACTIVE
              for p in range(population.size_at(PAPER_EPOCH))]

    rows = []
    for head in HEADS:
        report = head_sampling_bias(
            lambda p: labels[p], BASE, head)
        predicted = gradient_head_bias(INACTIVE, TILT, head / BASE)
        rows.append((head, report.whole_rate, report.head_rate,
                     report.absolute_bias, predicted))
    return rows


@pytest.mark.benchmark(group="ablation-a2")
def test_ablation_head_bias(once, save_result):
    rows = once(sweep_head_bias)

    table = TextTable(
        ["head size", "whole inactive", "head inactive",
         "measured bias", "closed-form bias"],
        title=f"A2: head-frame inactive-rate bias "
              f"(base {BASE}, tilt {TILT})",
    )
    for head, whole, head_rate, bias, predicted in rows:
        table.add_row(head, f"{100 * whole:.1f}%", f"{100 * head_rate:.1f}%",
                      f"{100 * bias:+.1f}pp", f"{100 * predicted:+.1f}pp")
    rendered = table.render()
    save_result("ablation_a2_head_bias", rendered)
    print("\n" + rendered)

    # Head frames underestimate inactivity; the full frame doesn't.
    for head, __w, __h, bias, predicted in rows:
        if head < BASE:
            assert bias < -0.02, head
        else:
            assert bias == pytest.approx(0.0, abs=0.005)
        # Discrete cohorts approximate the linear gradient: closed form
        # within a few points.
        assert bias == pytest.approx(predicted, abs=0.06)

    # Bias shrinks monotonically (to ~0) as the frame deepens.
    biases = [bias for __, __w, __h, bias, __p in rows]
    assert biases == sorted(biases)
