"""Micro-benchmarks of the simulation substrate itself.

Unlike the experiment benches (which regenerate paper artefacts once),
these measure the hot paths of the library with real repetition, so
performance regressions in the generative core are caught:

* lazy account materialisation (the cost of every sampled follower);
* follower-id paging (what the FC engine's full-list crawl is made of);
* timeline synthesis (what Socialbakers' content rules pay for);
* decision-tree training (the FC learning loop).
"""

import numpy as np
import pytest

from repro.core import PAPER_EPOCH, SimClock
from repro.api import TwitterApiClient
from repro.fc import DecisionTree, PROFILE_FEATURE_SET, build_gold_standard
from repro.twitter import TimelineGenerator, add_simple_target, build_world


@pytest.fixture(scope="module")
def world():
    w = build_world(seed=8)
    add_simple_target(w, "perf", 200_000, 0.4, 0.1, 0.5)
    return w


@pytest.mark.benchmark(group="micro")
def test_micro_account_materialisation(benchmark, world):
    population = world.population("perf")
    counter = iter(range(10**9))

    def materialise():
        return population.account_at(
            next(counter) % 200_000, PAPER_EPOCH)

    account = benchmark(materialise)
    assert account.user_id is not None


@pytest.mark.benchmark(group="micro")
def test_micro_follower_id_paging(benchmark, world):
    client = TwitterApiClient(world, SimClock(PAPER_EPOCH),
                              request_latency=0.0)

    def page():
        return client.followers_ids(screen_name="perf", cursor=5000)

    result = benchmark(page)
    assert len(result.ids) == 5000


@pytest.mark.benchmark(group="micro")
def test_micro_timeline_synthesis(benchmark, world):
    population = world.population("perf")
    generator = TimelineGenerator(seed=8)
    account = next(
        population.account_at(p, PAPER_EPOCH) for p in range(500)
        if population.account_at(p, PAPER_EPOCH).statuses_count >= 200)

    tweets = benchmark(generator.recent_tweets, account, 200)
    assert len(tweets) == 200


@pytest.mark.benchmark(group="micro")
def test_micro_feature_extraction(benchmark):
    gold = build_gold_standard(n_fake=100, n_genuine=100, seed=8)
    users = gold.users()

    matrix = benchmark(
        PROFILE_FEATURE_SET.extract_matrix, users, None, gold.now)
    assert matrix.shape == (200, len(PROFILE_FEATURE_SET.features))


@pytest.mark.benchmark(group="micro")
def test_micro_tree_training(benchmark):
    gold = build_gold_standard(n_fake=150, n_genuine=150, seed=8)
    X = gold.design_matrix(PROFILE_FEATURE_SET)
    y = gold.labels()

    tree = benchmark(lambda: DecisionTree(max_depth=6).fit(X, y))
    assert (tree.predict(X) == y).mean() > 0.9


@pytest.mark.benchmark(group="micro")
def test_micro_arrival_inverse(benchmark, world):
    population = world.population("perf")
    schedule = population.schedule
    moments = np.linspace(
        schedule.arrival_time(0), schedule.ref_time, 64)
    counter = iter(range(10**9))

    def inverse():
        return schedule.size_at(float(moments[next(counter) % 64]))

    size = benchmark(inverse)
    assert 0 <= size <= 200_000
