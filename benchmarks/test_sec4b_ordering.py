"""Bench E2 — regenerate the Section IV-B follower-ordering experiment.

The paper saved the full follower list of each average-class account
once per day and verified every new follower entered at one fixed end
of the list — establishing that ``followers/ids`` is newest-first and
head samples are therefore newest-only.
"""

import pytest

from repro.core import SimClock
from repro.experiments import (
    AVERAGE,
    average_accounts,
    build_paper_world,
    run_ordering_experiment,
)


@pytest.mark.benchmark(group="sec4b")
def test_sec4b_follower_ordering(once, save_result):
    world = build_paper_world(42, SimClock().now(), tiers=(AVERAGE,))
    handles = [account.handle for account in average_accounts()]

    results, rendered = once(
        run_ordering_experiment, world, handles, days=7)
    save_result("sec4b_ordering", rendered)
    print("\n" + rendered)

    assert len(results) == 13
    for result in results:
        # The paper: "all the new entries in all the lists of followers
        # were always added at the end. This confirmed our thesis."
        assert result.ordering_confirmed, result.handle
        assert result.new_followers_total > 0, result.handle
