"""Wall-clock benchmarks: scalar vs columnar rule-based engines.

The batch-criteria claim, measured per engine at the paper's own
scale: StatusPeople and Twitteraudit classify a 9604-row sample
(Section III's statistically mandated size), Socialbakers its
production newest-2000 frame with timelines.  Each test asserts bit
parity first — a fast wrong answer is worthless — then its speedup
floor, and writes the measured numbers to
``benchmarks/results/BENCH_<engine>_columnar.json``.

The columnar side classifies from a
:class:`~repro.twitter.columnar.schema.UserRowBlock` (the shape
acquisition hands the batch path on a columnar world), with
:class:`~repro.analytics.criteria.SampleBlock` construction timed
inside; the scalar side classifies the user objects materialised from
the same rows.

Floors: the profile-only engines default to the ISSUE's local 5x
(relaxed via ``SP_COLUMNAR_MIN_SPEEDUP`` / ``TA_COLUMNAR_MIN_SPEEDUP``;
CI exports 2).  Socialbakers' floor (``SB_COLUMNAR_MIN_SPEEDUP``,
default 1.0, CI 0.8) is a *non-regression* gate, not a speedup target:
its rules are dominated by per-tweet text analysis (regex + substring
scans) that scalar and columnar paths share one-for-one, so the masks
can only win the rule-arithmetic margin on top.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.analytics import (
    StatusPeopleCriteria,
    TwitterauditCriteria,
    build_sample_block,
)
from repro.analytics.socialbakers import SB_SAMPLE
from repro.fc import FC_SAMPLE_SIZE, build_gold_standard
from repro.fc.rulesets import SocialbakersCriteria
from repro.obs import measure_wallclock
from repro.twitter.columnar.schema import UserRowBlock

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

REPEATS = 3

#: Profile-only engines: local 5x target, CI relaxes to 2x.
SP_MIN_SPEEDUP = float(os.environ.get("SP_COLUMNAR_MIN_SPEEDUP", "5"))
TA_MIN_SPEEDUP = float(os.environ.get("TA_COLUMNAR_MIN_SPEEDUP", "5"))
#: Timeline-bound engine: non-regression floor (see module docstring).
SB_MIN_SPEEDUP = float(os.environ.get("SB_COLUMNAR_MIN_SPEEDUP", "1.0"))


def _bench_criteria(name, criteria, rows, timeline_depth, min_speedup,
                    save_result):
    """Parity then speedup for one engine's criteria; returns the doc."""
    population = build_gold_standard(
        n_fake=rows - rows // 2, n_genuine=rows // 2, seed=17,
        timeline_depth=timeline_depth)
    users = population.users()
    timelines = population.timelines() if criteria.needs_timeline else None
    now = population.now
    assert len(users) == rows
    block_users = UserRowBlock.from_users(users)

    # Parity before speed: identical verdicts, counts and extras.
    scalar = criteria.classify_all(users, timelines, now)
    batch = criteria.classify_block(
        build_sample_block(block_users, timelines), now)
    assert list(batch.codes) == list(scalar.codes)
    assert batch.counts() == scalar.counts()
    assert batch.extras == scalar.extras

    scalar_seconds = measure_wallclock(
        lambda: criteria.classify_all(users, timelines, now), REPEATS)
    batch_seconds = measure_wallclock(
        lambda: criteria.classify_block(
            build_sample_block(block_users, timelines), now), REPEATS)
    speedup = scalar_seconds / batch_seconds

    doc = {
        "rows": rows,
        "timeline_depth": timeline_depth,
        "repeats": REPEATS,
        "criteria": criteria.name,
        "scalar_seconds": round(scalar_seconds, 6),
        "batch_seconds": round(batch_seconds, 6),
        "speedup": round(speedup, 2),
        "scalar_rows_per_s": round(rows / scalar_seconds, 1),
        "batch_rows_per_s": round(rows / batch_seconds, 1),
        "min_speedup": min_speedup,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"BENCH_{name}_columnar.json").write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    save_result(
        f"{name}_columnar",
        "\n".join(f"{key}: {value}" for key, value in sorted(doc.items())))

    assert speedup >= min_speedup, (
        f"{name} columnar speedup {speedup:.2f}x below the "
        f"{min_speedup:g}x floor "
        f"(scalar {scalar_seconds:.4f}s vs batch {batch_seconds:.4f}s)")
    return doc


def test_statuspeople_columnar_speedup(save_result):
    _bench_criteria("statuspeople", StatusPeopleCriteria(), FC_SAMPLE_SIZE,
                    0, SP_MIN_SPEEDUP, save_result)


def test_twitteraudit_columnar_speedup(save_result):
    _bench_criteria("twitteraudit", TwitterauditCriteria(), FC_SAMPLE_SIZE,
                    0, TA_MIN_SPEEDUP, save_result)


def test_socialbakers_columnar_speedup(save_result):
    _bench_criteria("socialbakers", SocialbakersCriteria(), SB_SAMPLE,
                    5, SB_MIN_SPEEDUP, save_result)
