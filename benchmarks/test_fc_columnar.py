"""Wall-clock benchmark: scalar vs columnar FC classification.

The tentpole claim of the columnar fast path, measured at the paper's
own scale: classifying a full 9604-follower sample (Section III's
statistically mandated size) through the production class-A detector.
Asserts bit parity first — a fast wrong answer is worthless — then the
speedup floor, and writes the measured numbers to
``benchmarks/results/BENCH_fc_columnar.json``.

The floor defaults to the ISSUE's local target (5x) and is relaxed via
``FC_COLUMNAR_MIN_SPEEDUP`` on noisy shared runners (CI exports 2).
"""

from __future__ import annotations

import json
import os
import pathlib

import numpy as np

from repro.fc import FC_SAMPLE_SIZE, FeatureCache, batch_classifier, \
    build_gold_standard, extract_feature_matrix
from repro.obs import measure_wallclock

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Local target from the ISSUE; CI relaxes to 2x for noisy runners.
MIN_SPEEDUP = float(os.environ.get("FC_COLUMNAR_MIN_SPEEDUP", "5"))

REPEATS = 3


def test_columnar_speedup_on_a_full_sample(detector, save_result):
    rows = FC_SAMPLE_SIZE
    population = build_gold_standard(
        n_fake=rows - rows // 2, n_genuine=rows // 2, seed=11,
        timeline_depth=1)
    users = population.users()
    now = population.now
    assert len(users) == rows

    classifier = batch_classifier(detector)
    assert classifier is not None

    # Parity before speed: the fast path must be numerically identical.
    scalar_matrix = detector.feature_set.extract_matrix(users, None, now)
    batch_matrix = extract_feature_matrix(
        np, detector.feature_set, users, None, now)
    assert np.array_equal(scalar_matrix, batch_matrix)
    scalar_verdicts = detector.predict(users, None, now)
    batch_verdicts = classifier.predict(users, None, now)
    assert np.array_equal(scalar_verdicts, batch_verdicts)

    scalar_seconds = measure_wallclock(
        lambda: detector.predict(users, None, now), REPEATS)
    batch_seconds = measure_wallclock(
        lambda: classifier.predict(users, None, now), REPEATS)
    speedup = scalar_seconds / batch_seconds

    # Warm-cache pass: every row served from the feature cache.
    cache = FeatureCache()
    cached = batch_classifier(detector, feature_cache=cache)
    cached.predict(users, None, now)
    assert np.array_equal(cached.predict(users, None, now), scalar_verdicts)
    hit_rate = cache.hits / (cache.hits + cache.misses)
    cached_seconds = measure_wallclock(
        lambda: cached.predict(users, None, now), REPEATS)

    doc = {
        "rows": rows,
        "repeats": REPEATS,
        "scalar_seconds": round(scalar_seconds, 6),
        "batch_seconds": round(batch_seconds, 6),
        "warm_cache_seconds": round(cached_seconds, 6),
        "speedup": round(speedup, 2),
        "scalar_rows_per_s": round(rows / scalar_seconds, 1),
        "batch_rows_per_s": round(rows / batch_seconds, 1),
        "cache_hit_rate": round(hit_rate, 4),
        "min_speedup": MIN_SPEEDUP,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_fc_columnar.json").write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    save_result(
        "fc_columnar",
        "\n".join(f"{key}: {value}" for key, value in sorted(doc.items())))

    assert hit_rate >= 0.5  # second pass fully cached
    assert speedup >= MIN_SPEEDUP, (
        f"columnar speedup {speedup:.1f}x below the "
        f"{MIN_SPEEDUP:g}x floor "
        f"(scalar {scalar_seconds:.3f}s vs batch {batch_seconds:.3f}s)")
