"""Bench E5 — the whole-base acquisition-time result.

Paper (Section IV-B): crawling the whole set of Obama's 41 M followers
"required a total time of around 27 days".  The bench regenerates the
prediction for all three high-tier accounts and validates the model
against an actually simulated crawl.
"""

import pytest

from repro.experiments import run_acquisition_experiment


@pytest.mark.benchmark(group="acquisition")
def test_acquisition_time(once, save_result):
    estimates, empirical, rendered = once(run_acquisition_experiment)
    save_result("acquisition_time", rendered)
    print("\n" + rendered)

    obama = max(estimates, key=lambda e: e.followers)
    assert obama.followers == 41_000_000
    # "around 27 days" — our Table I arithmetic gives ~29.4 days.
    assert 25.0 <= obama.days <= 32.0
    assert obama.follower_pages == 8200
    assert obama.lookup_requests == 410_000

    # Cameron/Hollande (~600 K) crawl in well under a day.
    for estimate in estimates:
        if estimate.followers < 1_000_000:
            assert estimate.seconds < 86_400

    # The analytic model matches a real simulated crawl within 5%.
    assert empirical.relative_error < 0.05
