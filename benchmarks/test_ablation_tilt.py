"""Ablation A7 — the recency-gradient assumption, swept.

The Table III reproduction's one calibration knob is the tilt: how much
more often long-term followers are inactive than fresh ones.  The bench
sweeps it and asserts the mechanism the paper describes: head samplers
undercount inactivity *more* the stronger the gradient, on top of a
tilt-independent definitional baseline.
"""

import pytest

from repro.experiments import run_tilt_sensitivity


@pytest.mark.benchmark(group="ablation-a7")
def test_ablation_tilt_sensitivity(once, save_result, detector):
    rows, rendered = once(run_tilt_sensitivity, seed=42, detector=detector)
    save_result("ablation_a7_tilt", rendered)
    print("\n" + rendered)

    by_tilt = {row.tilt: row for row in rows}
    # FC is tilt-blind: it samples uniformly, so its estimate stays on
    # the 45% truth whatever the arrival structure.
    for row in rows:
        assert row.fc_inactive == pytest.approx(45.0, abs=4.0), row.tilt
    # The FC-SB gap grows with the tilt (head bias stacks on top of the
    # definitional gap present at tilt 0).
    gaps = [by_tilt[t].fc_minus_sb for t in sorted(by_tilt)]
    assert gaps == sorted(gaps)
    assert gaps[-1] - gaps[0] > 5.0
    # Even at tilt 0 a gap remains: SB only inactivity-tests suspicious
    # accounts, so its inactive count is definitionally low.
    assert by_tilt[0.0].fc_minus_sb > 5.0
