"""Bench E7 — StatusPeople Fakers vs the Deep Dive configuration.

Paper (Section II-A): on mega accounts, the November 2013 Deep Dive
(33 K assessed across the first 1.25 M followers) reported drastically
lower fake percentages than the standard app — Obama 70 % -> 45 %,
Lady Gaga 71 % -> 39 %, Shakira 79 % -> 49 %.  The shape to reproduce:
the deeper frame reports fewer fakes, and lands closer to the truth.
"""

import pytest

from repro.experiments import run_deepdive_comparison


@pytest.mark.benchmark(group="deepdive")
def test_deepdive_vs_fakers(once, save_result):
    result, rendered = once(run_deepdive_comparison, seed=42)
    save_result("deepdive_vs_fakers", rendered)
    print("\n" + rendered)

    assert result.deep_dive_fake_pct < result.fakers_fake_pct
    assert result.deep_dive_closer
    # The published shifts were sizeable (25-30 points); ours must show
    # a clear gap too, not a rounding artefact.
    assert result.fakers_fake_pct - result.deep_dive_fake_pct > 5.0
