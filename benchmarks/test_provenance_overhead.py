"""Micro-benchmark: provenance recording must stay within 5% of baseline.

Provenance is a pure observation: the columnar paths hand the sink the
very mask arrays their verdict arithmetic already computed, the scalar
paths re-derive per-account predicates, and aggregation packs bitmaps
once per audit.  This bench times the batch Table III slice with and
without a :class:`~repro.obs.provenance.ProvenanceCollector` attached
and asserts the measured overhead stays under
``PROVENANCE_MAX_OVERHEAD_PCT`` percent (default 5; CI relaxes it —
shared runners are noisy).  The measurement is written to
``benchmarks/results/BENCH_provenance_overhead.json``.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.experiments.results import run_table3
from repro.experiments.testbed import average_accounts

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Min-of-N wall-clock repeats (the test_obs_overhead idiom).
REPEATS = 3


def _wall(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for __ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_provenance_overhead_is_bounded(detector, save_result):
    limit_pct = float(os.environ.get("PROVENANCE_MAX_OVERHEAD_PCT", "5"))
    kwargs = dict(seed=42, accounts=average_accounts()[:3],
                  detector=detector, max_followers=2_000,
                  truth_sample=500, mode="batch")

    baseline = _wall(lambda: run_table3(**kwargs))
    enabled = _wall(lambda: run_table3(explain=True, **kwargs))
    overhead_pct = 100.0 * (enabled - baseline) / baseline

    report = "\n".join([
        "Provenance overhead on batch Table III (3 average accounts):",
        f"  baseline wall time    {baseline * 1e3:10.1f} ms",
        f"  provenance wall time  {enabled * 1e3:10.1f} ms",
        f"  overhead              {overhead_pct:10.2f} %"
        f" (limit {limit_pct:g}%)",
    ])
    save_result("provenance_overhead", report)
    doc = {
        "bench": "provenance_overhead",
        "workload": "table3 batch, 3 average accounts, "
                    "max_followers=2000, truth_sample=500",
        "repeats": REPEATS,
        "baseline_ms": round(baseline * 1e3, 3),
        "provenance_ms": round(enabled * 1e3, 3),
        "overhead_pct": round(overhead_pct, 3),
        "limit_pct": limit_pct,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_provenance_overhead.json").write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    assert overhead_pct < limit_pct, report
