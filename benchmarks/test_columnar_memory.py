"""Memory-bound smoke: an Obama-scale audit in a fixed RSS budget.

The columnar substrate's headline claim is that audit memory is a
function of the *sample*, not the population: a 10M-follower FC audit
must complete end-to-end — columnar world, follower-id cursoring,
users/lookup off the columns, detector inference — without ever
materializing the population.  The workload runs in a subprocess so the
peak-RSS reading is the workload's own high-water mark, untouched by
pytest, prior benchmarks, or the parent's caches.

``COLUMNAR_SMOKE_FOLLOWERS`` scales the population down for constrained
runners (CI's ``columnar-smoke`` job exports 1_000_000); the documented
budget stays the same because peak RSS is population-size independent
(measured ~142 MB at 10M followers).  Results land in
``benchmarks/results/BENCH_columnar_memory.json``.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SRC_DIR = pathlib.Path(__file__).resolve().parents[1] / "src"

#: Peak-RSS ceiling for the audit subprocess, in MiB.  Measured peak at
#: 10M followers is ~142 MiB (interpreter + numpy + detector + sample);
#: the budget leaves ~3.5x headroom for allocator and platform noise
#: while still catching any accidental O(population) materialization,
#: which would cost hundreds of MiB at 10M followers.
MEMORY_BUDGET_MB = 512

DEFAULT_FOLLOWERS = 10_000_000

_CHILD = r"""
import json
import resource
import sys
import time

from repro.audit import AuditRequest
from repro.core import PAPER_EPOCH, SimClock
from repro.fc.engine import FakeClassifierEngine, default_detector
from repro.twitter import add_simple_target, build_columnar_world

followers = int(sys.argv[1])

t0 = time.perf_counter()
world = build_columnar_world(seed=99, ref_time=PAPER_EPOCH)
add_simple_target(world, "bigone", followers, 0.35, 0.15, 0.50, tilt=0.5)
detector = default_detector(seed=5)
setup_s = time.perf_counter() - t0

t0 = time.perf_counter()
engine = FakeClassifierEngine(world, SimClock(PAPER_EPOCH), detector)
report = engine.audit(AuditRequest(target="bigone"))
audit_s = time.perf_counter() - t0

peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({
    "followers": followers,
    "setup_seconds": round(setup_s, 3),
    "audit_seconds": round(audit_s, 3),
    "peak_rss_mb": round(peak_kb / 1024.0, 1),
    "fake_pct": round(report.fake_pct, 2),
    "sample_size": report.sample_size,
    "substrate": world.substrate_stats(),
}))
"""


def test_columnar_audit_stays_in_memory_budget(save_result):
    followers = int(
        os.environ.get("COLUMNAR_SMOKE_FOLLOWERS", DEFAULT_FOLLOWERS))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(SRC_DIR), env.get("PYTHONPATH")) if p)
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, str(followers)],
        env=env, capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    doc = json.loads(proc.stdout)

    assert doc["followers"] == followers
    assert doc["sample_size"] > 0
    # The audit must have sampled, not swept: rows generated stay within
    # one chunk-materialization of the sample size, never O(population).
    substrate = doc["substrate"]
    assert substrate["rows_generated"] <= (
        doc["sample_size"] + substrate["chunk_size"])

    doc["budget_mb"] = MEMORY_BUDGET_MB
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_columnar_memory.json").write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    save_result(
        "columnar_memory",
        "\n".join(f"{key}: {doc[key]}" for key in sorted(doc)
                  if key != "substrate")
        + "\n" + "\n".join(f"substrate.{k}: {v}"
                           for k, v in sorted(substrate.items())))

    assert doc["peak_rss_mb"] <= MEMORY_BUDGET_MB, (
        f"audit subprocess peaked at {doc['peak_rss_mb']} MiB, over the "
        f"{MEMORY_BUDGET_MB} MiB budget — the substrate is materializing "
        f"population-sized state")
