"""Bench S1 — batch-scheduler throughput over the Table III testbed.

The headline claim of the ``repro.sched`` subsystem: scheduling the
full 20-account testbed across all four engine lanes achieves at least
a **2x lower simulated makespan** than the paper-faithful serial
methodology, while producing *identical* per-account percentages and
staying byte-for-byte deterministic for a fixed seed.

The run writes a machine-readable summary to
``benchmarks/results/batch_throughput.json`` (the CI smoke job uploads
it as an artifact).
"""

import json
import pathlib

import pytest

from repro.audit import AuditRequest, ENGINE_NAMES
from repro.core import SimClock
from repro.experiments.testbed import PAPER_ACCOUNTS, build_paper_world
from repro.sched import BatchAuditScheduler

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SEED = 42
MAX_FOLLOWERS = 20_000
HANDLES = tuple(account.handle for account in PAPER_ACCOUNTS)


def run_testbed_batch(detector, *, serial: bool, lane_slots: int = 2):
    """One full testbed run (fresh world and clock) in either mode."""
    world = build_paper_world(SEED, SimClock().now(),
                              max_followers=MAX_FOLLOWERS)
    scheduler = BatchAuditScheduler(
        world, SimClock(world.ref_time), detector=detector, seed=SEED,
        lane_slots=lane_slots, serial=serial)
    scheduler.submit_batch([AuditRequest(target=h) for h in HANDLES])
    return scheduler.run()


@pytest.mark.benchmark(group="sched")
def test_batch_throughput(once, save_result, detector):
    serial = run_testbed_batch(detector, serial=True)
    batch = once(run_testbed_batch, detector, serial=False)
    rerun = run_testbed_batch(detector, serial=False)

    speedup = serial.makespan_seconds / batch.makespan_seconds
    summary = {
        "accounts": len(HANDLES),
        "engines": list(ENGINE_NAMES),
        "lane_slots": 2,
        "max_followers": MAX_FOLLOWERS,
        "seed": SEED,
        "serial_makespan_seconds": round(serial.makespan_seconds, 3),
        "batch_makespan_seconds": round(batch.makespan_seconds, 3),
        "speedup": round(speedup, 3),
        "coalesced_hits": batch.coalesced_hits,
        "cache_stats": batch.cache_stats,
        "digest": batch.digest(),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "batch_throughput.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n")
    save_result("batch_throughput",
                batch.render() + "\n\n" + json.dumps(summary, indent=2,
                                                     sort_keys=True))
    print(f"\nserial {serial.makespan_seconds:.0f}s vs "
          f"batch {batch.makespan_seconds:.0f}s -> {speedup:.2f}x")

    # Every audit of every account completed in both modes.
    assert len(serial.completed) == len(HANDLES) * len(ENGINE_NAMES)
    assert len(batch.completed) == len(HANDLES) * len(ENGINE_NAMES)

    # The tentpole claim: at least 2x lower simulated makespan.
    assert speedup >= 2.0, summary

    # Scheduling changes *when* work happens, never *what* it returns:
    # every per-account percentage matches the serial methodology.
    for handle in HANDLES:
        serial_reports = serial.reports_for(handle)
        batch_reports = batch.reports_for(handle)
        assert set(serial_reports) == set(batch_reports) == set(ENGINE_NAMES)
        for lane in ENGINE_NAMES:
            a, b = serial_reports[lane], batch_reports[lane]
            assert (a.fake_pct, a.genuine_pct, a.inactive_pct) == \
                (b.fake_pct, b.genuine_pct, b.inactive_pct), (handle, lane)

    # Byte-for-byte determinism: an identical rerun yields an
    # identical report document.
    assert rerun.digest() == batch.digest()
