"""Bench F1 — regenerate the three Twitteraudit report charts.

The paper's only figure-like artefacts (Section II-C): a Twitteraudit
report shows the audit verdict, the "quality score" per follower, and
the "real points" per follower on a 5-point scale.  The bench renders
all three from a live audit and asserts their structural properties.
"""

import pytest

from repro.experiments import run_ta_charts


@pytest.mark.benchmark(group="figure-ta")
def test_figure_ta_charts(once, save_result):
    report, rendered = once(run_ta_charts, seed=42)
    save_result("figure_ta_charts", rendered)
    print("\n" + rendered)

    # All three charts render, on the documented scales.
    assert "chart 1" in rendered and "chart 3" in rendered
    points = report.details["real_points_histogram"]
    assert set(points) == {0, 1, 2, 3, 4, 5}  # "a maximum scale of 5"
    assert sum(points.values()) == report.sample_size == 5000

    # The demo base (35% inactive / 20% fake / 45% genuine) must show
    # clear mass at both ends of the quality spectrum: dormant+fake
    # accounts at the bottom, engaged humans at the top.
    verdicts = report.details["verdict_counts"]
    assert verdicts["fake"] > 0.15 * report.sample_size
    assert verdicts["real"] > 0.30 * report.sample_size
    quality = report.details["quality_histogram"]
    assert quality[9] > 0  # some followers earn full points
    assert quality[0] > 0  # and some earn none
