"""Micro-benchmark: disabled observability must cost ~nothing.

Every instrumented call site talks to the shared NULL_OBS singletons
when tracing is off, so the overhead of the disabled path is (number
of instrumentation events) x (cost of one null operation).  This bench
measures both factors on a serial Table III slice and asserts their
product stays under 5% of the run's wall time — i.e. NULL_OBS adds no
measurable overhead to the paper's core experiment.

The live-telemetry bench applies the same events-times-cost method to
the enabled streaming path: its hooks fire only when a plane is
attached, so the budget is (stream events the run actually feeds) x
(cost of one windowed observe).
"""

from __future__ import annotations

import time

from repro.core import DAY, SimClock
from repro.experiments.results import run_table3
from repro.experiments.testbed import average_accounts
from repro.obs import NULL_OBS, observed
from repro.obs.live import LiveTelemetry

#: Spans are the rarest instrumentation event; counters and gauges fire
#: a few times per span.  This multiplier turns the observed span count
#: into a deliberately generous estimate of *all* null-path events.
EVENTS_PER_SPAN = 8

#: Iterations for timing the null span + counter hot path.
NULL_OPS = 200_000


def _wall(fn, repeats: int = 2) -> float:
    best = float("inf")
    for __ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _null_op_seconds() -> float:
    """Best-case cost of one null span plus one null counter inc."""
    clock = SimClock()
    counter = NULL_OBS.registry.counter("bench_null_total")
    tracer = NULL_OBS.tracer

    def burn():
        for __ in range(NULL_OPS):
            with tracer.span("audit", clock):
                counter.inc()

    return _wall(burn) / NULL_OPS


#: Iterations for timing one windowed stream observation.
LIVE_OPS = 100_000

#: Each live hook call routes one to four stream observations plus the
#: hook dispatch itself; doubling the measured per-event cost gives a
#: generous upper bound on the non-observe bookkeeping around it.
LIVE_DISPATCH_MULTIPLIER = 2


def _live_event_seconds() -> float:
    """Best-case cost of one windowed observation on an event stream."""
    live = LiveTelemetry(origin=0.0, pane_width=DAY)

    def burn():
        for k in range(LIVE_OPS):
            live.note("bench.live", k * 0.01)

    return _wall(burn) / LIVE_OPS


def test_null_obs_overhead_is_under_5pct_of_serial_table3(
        detector, save_result):
    kwargs = dict(seed=42, accounts=average_accounts()[:3],
                  detector=detector, max_followers=2_000,
                  truth_sample=500, mode="serial")

    # The instrumentation budget of the run: count real spans once...
    with observed() as obs:
        run_table3(**kwargs)
    spans = len(obs.tracer.spans())
    assert spans > 0

    # ...then time the identical run on the disabled (NULL_OBS) path.
    baseline = _wall(lambda: run_table3(**kwargs))

    per_op = _null_op_seconds()
    overhead = per_op * spans * EVENTS_PER_SPAN
    report = "\n".join([
        "NULL_OBS overhead on serial Table III (3 average accounts):",
        f"  run wall time        {baseline * 1e3:10.1f} ms",
        f"  spans recorded       {spans:10d}",
        f"  null op cost         {per_op * 1e9:10.1f} ns",
        f"  est. disabled cost   {overhead * 1e6:10.1f} us "
        f"({100.0 * overhead / baseline:.3f}% of run)",
    ])
    save_result("obs_overhead", report)
    assert overhead < 0.05 * baseline, report


def test_live_telemetry_overhead_is_under_5pct_of_serial_table3(
        detector, save_result):
    kwargs = dict(seed=42, accounts=average_accounts()[:3],
                  detector=detector, max_followers=2_000,
                  truth_sample=500, mode="serial")

    # The live budget of the run: attach a plane, count the stream
    # events the instrumented hot paths actually feed...
    with observed() as obs:
        live = obs.attach_live(LiveTelemetry(origin=0.0, pane_width=DAY))
        run_table3(**kwargs)
        events = sum(stream.total_count
                     for stream in live.streams().values())
    assert events > 0  # the engines fed the plane

    # ...then time the identical run with telemetry fully off.
    baseline = _wall(lambda: run_table3(**kwargs))

    per_event = _live_event_seconds()
    overhead = per_event * events * LIVE_DISPATCH_MULTIPLIER
    report = "\n".join([
        "Live-telemetry overhead on serial Table III (3 average accounts):",
        f"  run wall time        {baseline * 1e3:10.1f} ms",
        f"  stream events fed    {events:10d}",
        f"  observe cost         {per_event * 1e9:10.1f} ns",
        f"  est. live cost       {overhead * 1e6:10.1f} us "
        f"({100.0 * overhead / baseline:.3f}% of run)",
    ])
    save_result("live_overhead", report)
    assert overhead < 0.05 * baseline, report
