"""Micro-benchmark: disabled observability must cost ~nothing.

Every instrumented call site talks to the shared NULL_OBS singletons
when tracing is off, so the overhead of the disabled path is (number
of instrumentation events) x (cost of one null operation).  This bench
measures both factors on a serial Table III slice and asserts their
product stays under 5% of the run's wall time — i.e. NULL_OBS adds no
measurable overhead to the paper's core experiment.
"""

from __future__ import annotations

import time

from repro.core import SimClock
from repro.experiments.results import run_table3
from repro.experiments.testbed import average_accounts
from repro.obs import NULL_OBS, observed

#: Spans are the rarest instrumentation event; counters and gauges fire
#: a few times per span.  This multiplier turns the observed span count
#: into a deliberately generous estimate of *all* null-path events.
EVENTS_PER_SPAN = 8

#: Iterations for timing the null span + counter hot path.
NULL_OPS = 200_000


def _wall(fn, repeats: int = 2) -> float:
    best = float("inf")
    for __ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _null_op_seconds() -> float:
    """Best-case cost of one null span plus one null counter inc."""
    clock = SimClock()
    counter = NULL_OBS.registry.counter("bench_null_total")
    tracer = NULL_OBS.tracer

    def burn():
        for __ in range(NULL_OPS):
            with tracer.span("audit", clock):
                counter.inc()

    return _wall(burn) / NULL_OPS


def test_null_obs_overhead_is_under_5pct_of_serial_table3(
        detector, save_result):
    kwargs = dict(seed=42, accounts=average_accounts()[:3],
                  detector=detector, max_followers=2_000,
                  truth_sample=500, mode="serial")

    # The instrumentation budget of the run: count real spans once...
    with observed() as obs:
        run_table3(**kwargs)
    spans = len(obs.tracer.spans())
    assert spans > 0

    # ...then time the identical run on the disabled (NULL_OBS) path.
    baseline = _wall(lambda: run_table3(**kwargs))

    per_op = _null_op_seconds()
    overhead = per_op * spans * EVENTS_PER_SPAN
    report = "\n".join([
        "NULL_OBS overhead on serial Table III (3 average accounts):",
        f"  run wall time        {baseline * 1e3:10.1f} ms",
        f"  spans recorded       {spans:10d}",
        f"  null op cost         {per_op * 1e9:10.1f} ns",
        f"  est. disabled cost   {overhead * 1e6:10.1f} us "
        f"({100.0 * overhead / baseline:.3f}% of run)",
    ])
    save_result("obs_overhead", report)
    assert overhead < 0.05 * baseline, report
