"""Ablation A5 — seller delivery strategy vs the growth monitor.

The market's answer to follower-count watchdogs is *drip delivery*:
spread the purchased block thinly enough and no single day stands out.
This ablation buys the same quantity from each preset seller on
identical live worlds and measures what a daily-polling monitor sees —
quantifying the detectability/price trade-off and the monitor's blind
spot (which is exactly why the paper's FC engine audits *composition*,
not growth).
"""

import pytest

from repro.core import DAY, HOUR, PAPER_EPOCH, SimClock, YEAR
from repro.experiments import TextTable
from repro.growth import BurstDetector, series_from_observations
from repro.market import Marketplace, PRESET_SELLERS
from repro.twitter import (
    Account,
    LiveSimulation,
    OrganicGrowthProcess,
    SocialGraph,
)

TARGET_ID = 55
QUANTITY = 6000
ORGANIC_PER_DAY = 150.0
WATCH_DAYS = 20
PURCHASE_DAY = 8


def run_scenario(seller, seed=42):
    """Grow organically, buy on day 8, poll daily for 20 days."""
    graph = SocialGraph(seed=1)
    graph.add_account(Account(
        user_id=TARGET_ID, screen_name="watched",
        created_at=PAPER_EPOCH - 2 * YEAR,
        statuses_count=500, last_tweet_at=PAPER_EPOCH - HOUR))
    simulation = LiveSimulation(graph, SimClock(PAPER_EPOCH), seed=seed)
    simulation.add_process(
        OrganicGrowthProcess(TARGET_ID, per_day=ORGANIC_PER_DAY))
    market = Marketplace(simulation, seed=seed)

    observations = []
    order = None
    for day in range(WATCH_DAYS):
        if day == PURCHASE_DAY:
            order = market.place_order(seller, TARGET_ID, QUANTITY)
        observations.append((
            simulation.now(),
            graph.follower_count(TARGET_ID, simulation.now())))
        simulation.run_for(DAY)
    series = series_from_observations(observations)
    events = BurstDetector().detect(series)
    top_z = events[0].z_score if events else 0.0
    return order, events, top_z


@pytest.mark.benchmark(group="ablation-a5")
def test_ablation_seller_evasion(once, save_result):
    def sweep():
        return [(seller, *run_scenario(seller)[1:])
                for seller in PRESET_SELLERS]

    rows = once(sweep)

    table = TextTable(
        ["seller", "$ for 6000", "delivery span", "attrition/day",
         "monitor verdict", "top z-score"],
        title=f"A5: seller strategy vs a daily growth monitor "
              f"(organic baseline {ORGANIC_PER_DAY:.0f}/day)",
    )
    results = {}
    for seller, events, top_z in rows:
        results[seller.name] = (events, top_z)
        table.add_row(
            seller.name,
            f"${seller.price(QUANTITY):.0f}",
            f"{seller.delivery_hours(QUANTITY):.1f}h",
            f"{seller.daily_attrition:.1%}",
            "DETECTED" if events else "evaded",
            f"{top_z:.1f}",
        )
    rendered = table.render()
    save_result("ablation_a5_sellers", rendered)
    print("\n" + rendered)

    # Bulk and standard deliveries concentrate thousands of arrivals in
    # hours: unmissable.
    assert results["cheap-bulk"][0], "bulk purchase must be detected"
    assert results["standard"][0], "standard purchase must be detected"
    # The premium drip (60/hour = 1440/day on a 150/day baseline over
    # ~4 days) still shows, but far less starkly than the bulk spike.
    assert results["cheap-bulk"][1] > 3 * results["premium-drip"][1]
    # Price buys stealth: z-scores fall monotonically with price.
    zs = [results[s.name][1] for s in PRESET_SELLERS]
    assert zs == sorted(zs, reverse=True)
