"""Ablation A6 — Section IV-B's no-churn assumption, stress-tested.

At zero churn, the paper's "new entries always at the end" result
reproduces exactly on the live backend.  With daily unfollow pressure,
the suffix check starts failing — quantifying how sensitive the
published protocol is to the assumption it never states.
"""

import pytest

from repro.experiments import run_churn_sensitivity


@pytest.mark.benchmark(group="ablation-a6")
def test_ablation_churn_sensitivity(once, save_result):
    rows, rendered = once(run_churn_sensitivity, seed=42)
    save_result("ablation_a6_churn", rendered)
    print("\n" + rendered)

    by_level = {row.daily_churn: row for row in rows}
    # The paper's setting: no churn observed, ordering fully confirmed.
    assert by_level[0.0].violations == 0
    assert by_level[0.0].new_followers > 0
    # Any real churn breaks the clean suffix structure on most days.
    assert by_level[0.25].violation_rate >= 0.8
    # Violation rates do not decrease as churn grows.
    rates = [row.violation_rate for row in rows]
    assert rates == sorted(rates)
