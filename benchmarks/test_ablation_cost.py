"""Ablation A4 — crawling cost vs detection quality.

Reproduces [12]'s "optimized classifier" selection (paper, Section
III): feature sets are priced by their API cost, and the production
detector is the best classifier whose crawl fits the audit's time
budget.  With 9604 sampled followers and a 4-minute budget, only
profile-feature (class A) candidates qualify — trading a sliver of MCC
for a 400x cheaper crawl.
"""

import pytest

from repro.core import format_duration
from repro.experiments import TextTable
from repro.fc import (
    FULL_FEATURE_SET,
    PROFILE_FEATURE_SET,
    build_gold_standard,
    rank_by_cost,
    select_under_budget,
    train_detector,
)

ACCOUNTS = 9604
BUDGET_SECONDS = 240.0


def build_candidates():
    train = build_gold_standard(n_fake=400, n_genuine=400, seed=42)
    held_out = build_gold_standard(n_fake=200, n_genuine=200, seed=43)
    candidates = [
        train_detector(train, feature_set=PROFILE_FEATURE_SET,
                       model="tree", seed=1),
        train_detector(train, feature_set=PROFILE_FEATURE_SET,
                       model="forest", seed=1),
        train_detector(train, feature_set=FULL_FEATURE_SET,
                       model="tree", seed=1),
        train_detector(train, feature_set=FULL_FEATURE_SET,
                       model="forest", seed=1),
    ]
    return candidates, held_out


@pytest.mark.benchmark(group="ablation-a4")
def test_ablation_cost(once, save_result):
    candidates, held_out = build_candidates()
    rows = once(rank_by_cost, candidates, held_out, ACCOUNTS)

    table = TextTable(
        ["detector", "MCC", "lookup reqs", "timeline reqs", "crawl time"],
        title=f"A4: quality vs crawl cost for {ACCOUNTS} sampled followers",
    )
    for row in rows:
        table.add_row(row.name, f"{row.mcc:.3f}",
                      row.cost.lookup_requests, row.cost.timeline_requests,
                      format_duration(row.cost.seconds))
    chosen = select_under_budget(
        candidates, held_out, ACCOUNTS, BUDGET_SECONDS)
    rendered = table.render() + (
        f"\n\nselected under a {BUDGET_SECONDS:.0f}s budget: {chosen.name} "
        f"(MCC {chosen.mcc:.3f}, crawl {format_duration(chosen.cost.seconds)})")
    save_result("ablation_a4_cost", rendered)
    print("\n" + rendered)

    by_name = {row.name: row for row in rows}
    class_a = [row for row in rows if row.cost.timeline_requests == 0]
    class_b = [row for row in rows if row.cost.timeline_requests > 0]
    assert class_a and class_b
    # Class B crawls are orders of magnitude slower.
    assert min(row.cost.seconds for row in class_b) > \
        100 * max(row.cost.seconds for row in class_a)
    # The budget forces a class-A detector, and it is still excellent.
    assert chosen.cost.timeline_requests == 0
    assert chosen.mcc > 0.85
    # The quality sacrifice for the cheap crawl is small (< 0.1 MCC).
    best_overall = max(row.mcc for row in rows)
    assert best_overall - chosen.mcc < 0.1
