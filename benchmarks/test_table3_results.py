"""Bench E4 — regenerate Table III (fake-follower analysis results).

All twenty testbed accounts, all four engines.  We do not chase the
paper's absolute percentages for the closed-source tools (they depend
on the live 2014 populations); the asserted claims are the paper's
Section IV-D conclusions:

* FC tracks the ground truth (and hence the paper's FC columns, which
  seed the truth) within its confidence margin;
* the engines generally disagree, and disagreement correlates
  positively with follower count;
* Twitteraudit and Socialbakers report similar genuine percentages;
* Socialbakers and StatusPeople report far fewer inactives than FC;
* StatusPeople is the most genuine-minimising tool.
"""

import pytest

from repro.experiments import analyse_disagreement, run_table3


@pytest.mark.benchmark(group="table3")
def test_table3_results(once, save_result, detector):
    rows, rendered = once(run_table3, seed=42, detector=detector)
    analysis = analyse_disagreement(rows)
    save_result("table3_results", rendered + "\n\n" + repr(analysis))
    print("\n" + rendered)

    assert len(rows) == 20

    # FC vs ground truth: within a few points on every account.
    for row in rows:
        fc = row.reports["fc"]
        truth_inact, truth_fake, truth_good = row.truth
        assert fc.inactive_pct == pytest.approx(truth_inact, abs=5.0), \
            row.account.handle
        assert fc.fake_pct == pytest.approx(truth_fake, abs=4.0), \
            row.account.handle

    # FC vs the paper's FC columns (which seeded the testbed truth):
    # near-verbatim agreement, including the 97%-inactive extreme.
    for row in rows:
        fc = row.reports["fc"]
        paper_inact, paper_fake, __ = row.account.fc
        assert fc.inactive_pct == pytest.approx(paper_inact, abs=6.0), \
            row.account.handle
        assert fc.fake_pct == pytest.approx(paper_fake, abs=4.0), \
            row.account.handle

    # The paper's aggregate claims.
    assert analysis.followers_vs_disagreement > 0.0
    assert analysis.ta_sb_genuine_gap < 25.0
    assert analysis.fc_minus_sb_inactive > 15.0
    assert analysis.fc_minus_sp_inactive > 5.0
    assert analysis.sp_lowest_genuine_fraction >= 0.5

    # General disagreement: most accounts show real spread in fake
    # estimates across the four engines.
    spreads = [row.disagreement() for row in rows]
    assert sum(1 for s in spreads if s > 3.0) >= len(rows) * 0.7
