"""Bench E1 — regenerate Table I (API types and rate limits).

Paper rows: followers/ids and friends/ids serve 5000 elements at 1
request/min; users/lookup serves 100 at 12/min; statuses/user_timeline
serves 200 at 12/min.  The bench measures the limiter empirically and
asserts the sustained rates match the published figures.
"""

import pytest

from repro.api import TABLE_I
from repro.experiments import run_table1


@pytest.mark.benchmark(group="table1")
def test_table1_api_limits(once, save_result):
    measurements, rendered = once(run_table1)
    save_result("table1_api_limits", rendered)
    print("\n" + rendered)

    by_resource = {m.policy.resource: m for m in measurements}
    for policy in TABLE_I:
        measured = by_resource[policy.resource]
        assert measured.sustained_per_minute == pytest.approx(
            policy.requests_per_minute, rel=0.1), policy.resource
    # The paging sizes are the paper's, verbatim.
    assert by_resource["followers/ids"].policy.elements_per_request == 5000
    assert by_resource["users/lookup"].policy.elements_per_request == 100
    assert by_resource["statuses/user_timeline"].policy \
        .elements_per_request == 200
