"""Order placement and fulfilment on the fake-follower market.

A :class:`Marketplace` is bound to a :class:`LiveSimulation`; placing
an order schedules hourly delivery tranches (fresh fake accounts
following the target) and, after delivery, a daily attrition process
that silently unfollows part of the block — the lifecycle observed
around the 2012-2013 purchases the paper's introduction recounts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from ..core.errors import ConfigurationError
from ..core.rng import poisson, weighted_choice
from ..core.timeutil import DAY, HOUR
from ..twitter.account import Account
from ..twitter.live import LiveSimulation, follow_block
from ..twitter.personas import PERSONAS
from .sellers import SellerProfile


@dataclass
class Order:
    """One purchase, tracked through delivery and attrition."""

    seller: SellerProfile
    target_id: int
    quantity: int
    placed_at: float
    price: float
    delivered_ids: List[int] = field(default_factory=list)
    churned_ids: List[int] = field(default_factory=list)

    @property
    def delivered(self) -> int:
        """Followers delivered so far."""
        return len(self.delivered_ids)

    @property
    def fully_delivered(self) -> bool:
        """Whether the whole order has been delivered."""
        return self.delivered >= self.quantity

    @property
    def retained(self) -> int:
        """Delivered followers still following."""
        return self.delivered - len(self.churned_ids)


class Marketplace:
    """Schedules order fulfilment events on a live simulation."""

    def __init__(self, simulation: LiveSimulation, seed: int = 0) -> None:
        self._simulation = simulation
        self._seed = seed
        self._order_counter = 0
        self._orders: List[Order] = []

    @property
    def orders(self) -> List[Order]:
        """Every order placed through this marketplace."""
        return list(self._orders)

    def place_order(self, seller: SellerProfile, target_id: int,
                    quantity: int) -> Order:
        """Buy ``quantity`` followers for ``target_id`` from ``seller``.

        Delivery starts within the hour, in hourly tranches of
        ``seller.delivery_per_hour``; once the block is complete, daily
        attrition begins.  Returns the tracked :class:`Order`.
        """
        if quantity < 1:
            raise ConfigurationError(f"quantity must be >= 1: {quantity!r}")
        self._order_counter += 1
        order = Order(
            seller=seller,
            target_id=target_id,
            quantity=quantity,
            placed_at=self._simulation.now(),
            price=seller.price(quantity),
        )
        self._orders.append(order)
        rng = self._simulation.rng("market", seller.name, self._order_counter)
        self._schedule_tranche(order, rng, delay=1 * HOUR)
        return order

    # -- fulfilment ---------------------------------------------------------------

    def _make_fake(self, rng: random.Random, order: Order,
                   now: float, taken: set) -> Account:
        names = sorted(order.seller.personas)
        persona = PERSONAS[str(weighted_choice(
            rng, names, [order.seller.personas[name] for name in names]))]
        user_id = self._simulation.mint_user_id(now)
        # Stylistic handles collide occasionally — against the graph and
        # against the not-yet-registered rest of this tranche.
        while True:
            account = persona.sample(
                rng, user_id, self._simulation.mint_screen_name("bot"), now)
            handle = account.screen_name.lower()
            if handle not in taken and \
                    not self._simulation.graph.has_screen_name(handle):
                taken.add(handle)
                return account

    def _schedule_tranche(self, order: Order, rng: random.Random,
                          delay: float) -> None:
        def deliver(simulation: LiveSimulation) -> None:
            remaining = order.quantity - order.delivered
            size = min(order.seller.delivery_per_hour, remaining)
            taken: set = set()
            block = [self._make_fake(rng, order, simulation.now(), taken)
                     for __ in range(size)]
            follow_block(simulation, order.target_id, block)
            order.delivered_ids.extend(
                account.user_id for account in block)
            if not order.fully_delivered:
                self._schedule_tranche(order, rng, delay=1 * HOUR)
            elif order.seller.daily_attrition > 0:
                self._schedule_attrition(order, rng, delay=1 * DAY)

        self._simulation.schedule_in(delay, deliver)

    def _schedule_attrition(self, order: Order, rng: random.Random,
                            delay: float) -> None:
        def churn(simulation: LiveSimulation) -> None:
            alive = [uid for uid in order.delivered_ids
                     if uid not in set(order.churned_ids)]
            if not alive:
                return
            quitters = min(
                poisson(rng, order.seller.daily_attrition * len(alive)),
                len(alive))
            for user_id in rng.sample(alive, quitters):
                if simulation.graph.is_following(user_id, order.target_id):
                    simulation.graph.unfollow(user_id, order.target_id)
                    order.churned_ids.append(user_id)
            self._schedule_attrition(order, rng, delay=1 * DAY)

        self._simulation.schedule_in(delay, churn)
