"""Fake-follower seller profiles.

The paper's backdrop is "a growing black market for fake followers"
(its reference [6] is literally titled that).  Reporting from the
2012-2013 episode describes a spectrum of merchandise: bottom-shelf
bulk "eggs" delivered within hours and prone to mass disappearance
(Twitter purges, seller recycling), and pricier "aged" accounts with
filled profiles and drip-fed delivery meant to evade exactly the
growth-anomaly monitors of :mod:`repro.growth`.

A :class:`SellerProfile` captures those dimensions; the presets span
the market's ends and are used by the live-attack example and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.errors import ConfigurationError
from ..twitter.personas import PERSONAS


@dataclass(frozen=True)
class SellerProfile:
    """One merchant on the fake-follower market.

    Attributes
    ----------
    name:
        Marketplace handle of the seller.
    price_per_thousand:
        USD per 1000 followers (2013 street prices ran $1-$20).
    personas:
        Persona mix of the delivered accounts.
    delivery_per_hour:
        Delivery throughput; the whole order arrives in
        ``quantity / delivery_per_hour`` hours.
    daily_attrition:
        Fraction of the delivered block unfollowing per day after
        delivery (purges, recycling, buyer remorse on shared bots).
    """

    name: str
    price_per_thousand: float
    personas: Mapping[str, float]
    delivery_per_hour: int
    daily_attrition: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("seller name must be non-empty")
        if self.price_per_thousand < 0:
            raise ConfigurationError("price must be non-negative")
        if self.delivery_per_hour < 1:
            raise ConfigurationError(
                f"delivery_per_hour must be >= 1: {self.delivery_per_hour!r}")
        if not 0.0 <= self.daily_attrition < 1.0:
            raise ConfigurationError(
                f"daily_attrition must be in [0, 1): {self.daily_attrition!r}")
        unknown = set(self.personas) - set(PERSONAS)
        if unknown:
            raise ConfigurationError(f"unknown personas: {sorted(unknown)!r}")
        if not self.personas or sum(self.personas.values()) <= 0:
            raise ConfigurationError("personas mix must have positive mass")

    def price(self, quantity: int) -> float:
        """USD for an order of ``quantity`` followers."""
        if quantity < 1:
            raise ConfigurationError(f"quantity must be >= 1: {quantity!r}")
        return self.price_per_thousand * quantity / 1000.0

    def delivery_hours(self, quantity: int) -> float:
        """Hours to deliver an order of ``quantity`` followers."""
        if quantity < 1:
            raise ConfigurationError(f"quantity must be >= 1: {quantity!r}")
        return quantity / self.delivery_per_hour


#: Bottom shelf: instant bulk eggs, heavy attrition.
CHEAP_BULK = SellerProfile(
    name="cheap-bulk",
    price_per_thousand=2.0,
    personas={"fake_egg_dormant": 0.7, "fake_classic": 0.3},
    delivery_per_hour=5000,
    daily_attrition=0.04,
)

#: Mid market: mixed inventory, same-day delivery.
STANDARD = SellerProfile(
    name="standard",
    price_per_thousand=8.0,
    personas={"fake_classic": 0.6, "fake_egg_dormant": 0.2,
              "fake_spammer": 0.2},
    delivery_per_hour=1500,
    daily_attrition=0.015,
)

#: Top shelf: "aged, high-quality" accounts, drip-fed to dodge
#: growth-anomaly monitors, near-zero attrition.
PREMIUM_DRIP = SellerProfile(
    name="premium-drip",
    price_per_thousand=20.0,
    personas={"fake_classic": 0.9, "fake_spammer": 0.1},
    delivery_per_hour=60,
    daily_attrition=0.002,
)

PRESET_SELLERS = (CHEAP_BULK, STANDARD, PREMIUM_DRIP)
