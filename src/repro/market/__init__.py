"""The fake-follower black market: sellers, orders, fulfilment."""

from .orders import Marketplace, Order
from .sellers import (
    CHEAP_BULK,
    PREMIUM_DRIP,
    PRESET_SELLERS,
    STANDARD,
    SellerProfile,
)

__all__ = [
    "CHEAP_BULK",
    "Marketplace",
    "Order",
    "PREMIUM_DRIP",
    "PRESET_SELLERS",
    "STANDARD",
    "SellerProfile",
]
