"""The Fake Project classifier engine (paper, Section III).

By contrast to the surveyed commercial tools, the FC engine:

* fetches the target's **whole** follower list and samples **uniformly
  at random** from it — no head-of-list bias;
* uses a fixed sample of **9604** followers, "to guarantee a confidence
  level of 95 %, with a confidence interval of 1 %";
* applies **disclosed** criteria: the rule-based inactivity definition
  (never tweeted, or last tweet older than 90 days) followed by a
  classifier trained on a gold standard of a-priori-known accounts;
* performs no result caching — its response time is always the honest
  acquisition cost (> 180 s in Table II).
"""

from __future__ import annotations

from typing import Optional, Union

from ..api.client import TwitterApiClient
from ..api.crawler import Crawler
from ..audit import AuditReport, AuditRequest, coerce_request, drain_steps
from ..core.clock import SimClock, Stopwatch
from ..core.errors import ConfigurationError, RetryableApiError
from ..core.rng import make_rng
from ..core.timeutil import DAY
from ..faults.plan import FaultPlan
from ..faults.retry import RetryPolicy
from ..obs.runtime import get_observability
from ..stats.estimation import ProportionEstimate
from ..twitter.population import World
from .dataset import build_gold_standard
from .training import TrainedDetector, train_detector

#: The statistically mandated sample size (95 % confidence, ±1 %).
FC_SAMPLE_SIZE = 9604

#: The engine's inactivity horizon (paper, Section III).
FC_INACTIVITY_HORIZON = 90 * DAY


def default_detector(seed: int = 0, *, model: str = "forest",
                     gold_size: int = 400) -> TrainedDetector:
    """Train the production FC detector.

    A profile-feature (class A) model trained on a persona gold
    standard: class-A features are what make the engine's sub-4-minute
    audits possible (see ``repro.fc.cost``).
    """
    gold = build_gold_standard(
        n_fake=gold_size, n_genuine=gold_size, seed=seed + 7919)
    return train_detector(gold, model=model, seed=seed)


class DetectorCriteria:
    """The FC pipeline as batch criteria: inactivity rule + detector.

    The adapter that puts the FC engine on the same
    :class:`~repro.analytics.criteria.Criteria` protocol as the
    rule-based engines.  ``classify_all`` replicates the engine's
    historical flow exactly — partition by the 90-day inactivity
    horizon, then one bulk ``predict`` over the active accounts — with
    the prediction function injectable so the engine can route it
    through its columnar :class:`~repro.fc.columnar.BatchClassifier`.
    Imports of :mod:`repro.analytics.criteria` are deferred: the
    analytics package imports this package at module load.
    """

    labels = ("fake", "inactive", "genuine")
    #: The engine's columnar path lives in the batch classifier rather
    #: than a mask pipeline, but the capability fact is the same.
    batch_capable = True
    #: The pipeline's two decision stages as provenance rules: the
    #: 90-day horizon partition, then the trained classifier's fake
    #: call on the active partition.
    rule_ids = ("fc.inactive_90d", "fc.classifier_fake")

    def __init__(self, detector: TrainedDetector,
                 horizon: float = FC_INACTIVITY_HORIZON) -> None:
        self._detector = detector
        self._horizon = horizon

    @property
    def name(self) -> str:
        """The underlying detector's identifier (the criteria id)."""
        return self._detector.name

    @property
    def needs_timeline(self) -> bool:
        """Whether the detector reads timelines (class-B features)."""
        return self._detector.needs_timeline

    def classify(self, user, timeline, now: float) -> str:
        """Three-way verdict for one account (inactivity rule first)."""
        age = user.last_status_age(now)
        if age is None or age > self._horizon:
            return "inactive"
        verdict = self._detector.predict(
            [user], [timeline] if timeline is not None else None, now)
        return "fake" if int(verdict[0]) else "genuine"

    def explain(self, user, timeline, now: float):
        """One account's verdict plus the decision-stage rules."""
        label = self.classify(user, timeline, now)
        if label == "inactive":
            return label, ("fc.inactive_90d",)
        if label == "fake":
            return label, ("fc.classifier_fake",)
        return label, ()

    def classify_all(self, users, timelines, now: float, *, predict=None,
                     sink=None):
        """Whole-sample verdicts: horizon partition + one bulk predict.

        ``predict`` substitutes the prediction function (the engine
        passes its columnar batch classifier's); ``None`` uses the
        detector's scalar ``predict``.  Both scalar and columnar
        invocations funnel through this one method, so provenance is
        path-invariant by construction: the ``sink`` masks are derived
        from the final ``codes``, after prediction.
        """
        from ..analytics.criteria import VerdictArray  # deferred: cycle

        if predict is None:
            predict = self._detector.predict
        codes = [1] * len(users)
        active_indices = []
        active_users = []
        active_timelines = []
        for index, user in enumerate(users):
            age = user.last_status_age(now)
            if age is None or age > self._horizon:
                continue
            active_indices.append(index)
            active_users.append(user)
            if timelines is not None:
                active_timelines.append(timelines[index])
        verdicts = predict(
            active_users,
            active_timelines if timelines is not None else None,
            now,
        )
        for slot, index in enumerate(active_indices):
            codes[index] = 0 if int(verdicts[slot]) else 2
        if sink is not None:
            sink.add("fc.inactive_90d", [code == 1 for code in codes])
            sink.add("fc.classifier_fake", [code == 0 for code in codes])
        return VerdictArray(labels=self.labels, codes=codes)


class FakeClassifierEngine:
    """The FC engine: sound sampling + disclosed, validated criteria."""

    name = "fc"
    reports_inactive = True

    def __init__(self, world: World, clock: SimClock,
                 detector: Optional[TrainedDetector] = None, *,
                 sample_size: int = FC_SAMPLE_SIZE,
                 request_latency: float = 1.9,
                 processing_seconds: float = 2.0,
                 faults: Optional[FaultPlan] = None,
                 retry: Optional[RetryPolicy] = None,
                 acquisition_cache=None,
                 batch: Union[bool, str] = "auto",
                 provenance=None,
                 seed: int = 0) -> None:
        if sample_size < 1:
            raise ConfigurationError(f"sample_size must be >= 1: {sample_size!r}")
        if batch not in (True, False, "auto"):
            raise ConfigurationError(
                f"batch must be True, False or 'auto': {batch!r}")
        self._clock = clock
        self._client = TwitterApiClient(
            world, clock,
            credentials=1, parallelism=1,
            request_latency=request_latency,
            faults=faults,
            retry=retry,
            acquisition_cache=acquisition_cache,
        )
        self._crawler = Crawler(self._client)
        self._obs = get_observability()
        self._tracer = self._obs.tracer
        self._detector = detector if detector is not None else default_detector(seed)
        self._criteria = DetectorCriteria(self._detector)
        self._sample_size = sample_size
        self._processing_seconds = processing_seconds
        self._seed = seed
        self._audit_counter = 0
        self._acquisition_cache = acquisition_cache
        self._batch_mode = batch
        self._batch_classifier = None
        self._batch_resolved = False
        self._provenance = provenance
        #: Raw verdict counts of the most recent classification (full
        #: audit or ad-hoc :meth:`classify_sample`); the delta auditor
        #: reads these to seed a watermark, since reports only carry
        #: rounded percentages.
        self.last_verdict_counts = None
        self._obs.register_engine(self)

    @property
    def client(self) -> TwitterApiClient:
        """The engine's (single-credential) API client."""
        return self._client

    @property
    def detector(self) -> TrainedDetector:
        """The trained fake-vs-genuine detector in use."""
        return self._detector

    @property
    def sample_size(self) -> int:
        """The fixed uniform sample size (9604 by default)."""
        return self._sample_size

    def _batch(self):
        """The columnar classifier, or ``None`` for the scalar path.

        Resolved lazily on the first classification so a NumPy-less
        host (or ``batch=False``) costs nothing.  ``batch=True`` and
        ``batch="auto"`` both fall back silently to the scalar path
        when the columnar module cannot run — the verdicts are
        identical either way, only the wall clock differs.
        """
        if not self._batch_resolved:
            self._batch_resolved = True
            if self._batch_mode is not False:
                from .columnar import FeatureCache, batch_classifier
                classifier = batch_classifier(
                    self._detector, clock=self._clock)
                if classifier is not None:
                    acq = self._acquisition_cache
                    if acq is not None and hasattr(acq, "feature_cache"):
                        classifier.use_cache(acq.feature_cache(FeatureCache))
                    else:
                        classifier.use_cache(FeatureCache())
                    self._batch_classifier = classifier
        return self._batch_classifier

    def batch_active(self) -> bool:
        """Whether classifications run on the columnar fast path."""
        return self._batch() is not None

    def classify_sample(self, users, timelines, now: float):
        """Classify an ad-hoc sample through the engine's verdict path.

        The delta auditor's entry point: the same criteria, the same
        columnar batch classifier and the same verdict-count
        bookkeeping as a full audit's classification phase, but the
        caller owns acquisition.  Returns the
        :class:`~repro.analytics.criteria.VerdictArray`; the raw
        counts land in :attr:`last_verdict_counts`.
        """
        classifier = self._batch()
        predict = (classifier.predict if classifier is not None
                   else self._detector.predict)
        verdicts = self._criteria.classify_all(
            users, timelines, now, predict=predict)
        counts = verdicts.counts()
        self.last_verdict_counts = dict(counts)
        if self._obs.enabled:
            self._obs.note_verdicts(self.name, counts)
        return verdicts

    @property
    def criteria(self) -> DetectorCriteria:
        """The engine's classification criteria, on the batch protocol."""
        return self._criteria

    def info(self):
        """Structured engine metadata (batch-criteria API)."""
        from ..analytics.criteria import EngineInfo  # deferred: cycle

        return EngineInfo(
            name=self.name,
            frame_policy=(f"uniform sample of {self._sample_size} "
                          "over the full follower list"),
            criteria_id=self._criteria.name,
            reports_inactive=True,
            batch_capable=True,
        )

    def audit(self, request: AuditRequest) -> AuditReport:
        """Audit a target account.  Never served from cache.

        The whole follower id list is paged in first (this, plus the 97
        profile lookups for the 9604-strong sample, is why FC's response
        time is "always greater than 180 seconds", Table II), then the
        uniform sample is classified three ways.
        """
        request = coerce_request(request, engine_name=self.name)
        with self._tracer.span("audit", self._clock, tool=self.name,
                               target=request.target) as span:
            report = drain_steps(self._audit_steps(request))
            span.set_attribute("cached", False)
            span.set_attribute("fake_pct", report.fake_pct)
            span.set_attribute("genuine_pct", report.genuine_pct)
            if report.completeness < 1.0:
                span.set_attribute("completeness", report.completeness)
            return report

    def begin_audit(self, request: AuditRequest):
        """Start an audit and return its resumable step generator.

        Each ``next()`` runs one acquisition phase; the generator's
        ``StopIteration`` value is the finished :class:`AuditReport`.
        No ``audit`` span is opened here — a span held open across
        interleaved steps of many audits would corrupt trace nesting.
        """
        request = coerce_request(request, engine_name=self.name)
        return self._audit_steps(request)

    def _degraded_report(self, screen_name: str, stopwatch: Stopwatch,
                         errors_seen: int, followers_count: int,
                         reason: str) -> AuditReport:
        """The empty, degraded answer for an unrecoverable acquisition."""
        live = self._obs.live
        if live is not None:
            live.on_audit(self.name, self._clock.now(), cached=False,
                          completeness=0.0)
        return AuditReport(
            tool=self.name,
            target=screen_name,
            followers_count=followers_count,
            sample_size=0,
            fake_pct=0.0,
            genuine_pct=0.0,
            inactive_pct=0.0,
            response_seconds=stopwatch.elapsed(),
            cached=False,
            assessed_at=self._clock.now(),
            completeness=0.0,
            errors_seen=errors_seen,
            details={"degraded": reason},
        )

    def _audit_steps(self, request: AuditRequest):
        """The audit pipeline as a generator of acquisition phases."""
        screen_name = request.target
        self._client.pin_observation(request.as_of)
        self._client.reset_budgets()
        if request.audit_index is not None:
            audit_index = request.audit_index
        else:
            self._audit_counter += 1
            audit_index = self._audit_counter
        stopwatch = Stopwatch(self._clock)
        faults_before = self._client.faults_seen

        try:
            target = self._client.users_show(screen_name=screen_name)
        except RetryableApiError as error:
            return self._degraded_report(
                screen_name, stopwatch,
                self._client.faults_seen - faults_before,
                followers_count=0, reason=type(error).__name__)
        yield
        follower_ids = self._crawler.fetch_all_follower_ids(screen_name)
        population = len(follower_ids)
        if population == 0:
            if self._client.faults_seen > faults_before:
                # The crawl degraded to nothing; answer with an empty
                # report instead of a stack trace.
                return self._degraded_report(
                    screen_name, stopwatch,
                    self._client.faults_seen - faults_before,
                    followers_count=target.followers_count,
                    reason="empty follower crawl")
            raise ConfigurationError(
                f"{screen_name!r} has no followers to audit")
        yield

        n = min(self._sample_size, population)
        rng = make_rng(self._seed, "fc-sample", audit_index)
        if n < population:
            indices = rng.sample(range(population), n)
            sampled_ids = [follower_ids[i] for i in sorted(indices)]
        else:
            sampled_ids = list(follower_ids)

        users = self._crawler.lookup_users(sampled_ids)
        timelines = None
        timeline_part = 1.0
        if self._detector.needs_timeline:
            yield
            by_id = self._crawler.fetch_timelines(
                [user.user_id for user in users], per_user=200)
            timelines = [by_id[user.user_id] for user in users]
            if users:
                timeline_part = (
                    1.0 - self._crawler.last_timeline_shortfall / len(users))

        pinned = self._client.observed_at
        now = pinned if pinned is not None else self._clock.now()
        classifier = self._batch()
        predict = (classifier.predict if classifier is not None
                   else self._detector.predict)
        sink = None
        if self._provenance is not None:
            from ..obs.provenance import ProvenanceSink
            sink = ProvenanceSink()
        verdicts = self._criteria.classify_all(
            users, timelines, now, predict=predict, sink=sink)
        provenance_record = None
        if sink is not None:
            provenance_record = self._provenance.record(
                self.name, screen_name, verdicts, sink,
                [user.user_id for user in users], now)
        counts = verdicts.counts()
        self.last_verdict_counts = dict(counts)
        if self._obs.enabled:
            self._obs.note_verdicts(self.name, counts)
        fake = counts["fake"]
        inactive = counts["inactive"]
        genuine = counts["genuine"]

        with self._tracer.span("audit.classify", self._clock,
                               tool=self.name, target=screen_name):
            self._clock.advance(self._processing_seconds)
        total = max(1, len(users))
        fake_pct = round(100.0 * fake / total, 1)
        inactive_pct = round(100.0 * inactive / total, 1)
        genuine_pct = round(100.0 - fake_pct - inactive_pct, 1)

        def interval(positives: int) -> tuple:
            """95% Wald CI for one class share, as percentages."""
            low, high = ProportionEstimate(
                positives, total).wald_interval(0.95)
            return round(100.0 * low, 1), round(100.0 * high, 1)
        # Frame completeness (how much of the follower list was paged
        # in) times sample completeness (how much of the intended
        # uniform sample resolved to profiles) times timeline
        # completeness (how many sampled timelines actually fetched).
        frame_part = (min(1.0, population / target.followers_count)
                      if target.followers_count > 0 else 1.0)
        expected_sample = min(self._sample_size, population)
        sample_part = (min(1.0, len(users) / expected_sample)
                       if expected_sample > 0 else 1.0)
        live = self._obs.live
        if live is not None:
            live.on_audit(self.name, self._clock.now(), cached=False,
                          completeness=frame_part * sample_part
                          * timeline_part)
        return AuditReport(
            tool=self.name,
            target=screen_name,
            followers_count=target.followers_count,
            sample_size=len(users),
            fake_pct=fake_pct,
            genuine_pct=genuine_pct,
            inactive_pct=inactive_pct,
            response_seconds=stopwatch.elapsed(),
            cached=False,
            assessed_at=self._clock.now(),
            completeness=frame_part * sample_part * timeline_part,
            errors_seen=self._client.faults_seen - faults_before,
            details={
                "population": population,
                "detector": self._detector.name,
                "fake_ci95": interval(fake),
                "inactive_ci95": interval(inactive),
                "genuine_ci95": interval(genuine),
                "sampling": "uniform over the whole follower list",
                "confidence": "95% +/- 1%" if n >= FC_SAMPLE_SIZE else
                              f"census of all {population} followers"
                              if n == population else "reduced sample",
                "engine": self.info().as_dict(),
                **({"provenance": provenance_record.stats.as_dict()}
                   if provenance_record is not None else {}),
            },
        )
