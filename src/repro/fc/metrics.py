"""Binary-classification metrics for detector evaluation.

The FC methodology ([12]) selects features and classifiers by their
measured detection quality on a gold standard; this module provides the
standard scores: confusion matrix, accuracy, precision, recall, F1 and
Matthews correlation coefficient (MCC — the score [12] emphasises, as
it stays meaningful under class imbalance).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.errors import ConfigurationError


@dataclass(frozen=True)
class ConfusionMatrix:
    """2x2 confusion matrix; the positive class is "fake"."""

    tp: int
    fp: int
    tn: int
    fn: int

    def __post_init__(self) -> None:
        if min(self.tp, self.fp, self.tn, self.fn) < 0:
            raise ConfigurationError("confusion counts must be non-negative")

    @property
    def total(self) -> int:
        """Total classified examples."""
        return self.tp + self.fp + self.tn + self.fn

    @property
    def accuracy(self) -> float:
        """(TP + TN) / total."""
        if self.total == 0:
            return 0.0
        return (self.tp + self.tn) / self.total

    @property
    def precision(self) -> float:
        """TP / (TP + FP)."""
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN)."""
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def specificity(self) -> float:
        """TN / (TN + FP)."""
        denom = self.tn + self.fp
        return self.tn / denom if denom else 0.0

    @property
    def mcc(self) -> float:
        """Matthews correlation coefficient in [-1, 1]."""
        numerator = self.tp * self.tn - self.fp * self.fn
        denominator = math.sqrt(
            float(self.tp + self.fp) * (self.tp + self.fn)
            * (self.tn + self.fp) * (self.tn + self.fn))
        return numerator / denominator if denominator else 0.0


def confusion(y_true: Sequence[int], y_pred: Sequence[int]) -> ConfusionMatrix:
    """Build the confusion matrix from 0/1 label arrays (1 = fake)."""
    truth = np.asarray(y_true, dtype=np.int64)
    pred = np.asarray(y_pred, dtype=np.int64)
    if truth.shape != pred.shape:
        raise ConfigurationError(
            f"shape mismatch: {truth.shape} vs {pred.shape}")
    bad = set(np.unique(truth)) | set(np.unique(pred))
    if not bad <= {0, 1}:
        raise ConfigurationError(f"labels must be 0/1, got {sorted(bad)!r}")
    return ConfusionMatrix(
        tp=int(np.sum((truth == 1) & (pred == 1))),
        fp=int(np.sum((truth == 0) & (pred == 1))),
        tn=int(np.sum((truth == 0) & (pred == 0))),
        fn=int(np.sum((truth == 1) & (pred == 0))),
    )
