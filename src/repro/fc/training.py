"""Training and evaluation pipeline for fake-follower detectors.

Reproduces the methodology of [12] summarised in the paper's Section
III: train candidate classifiers on the gold standard, evaluate the
literature's rule sets on the same data, and conclude that (1) single
classification rules do not succeed, while (2) spam-detection feature
sets transfer well to fake-follower detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..api.endpoints import UserObject
from ..core.errors import TrainingError
from ..twitter.tweet import Tweet
from .dataset import GoldStandard
from .features import FeatureSet, FULL_FEATURE_SET, PROFILE_FEATURE_SET
from .forest import RandomForest
from .metrics import ConfusionMatrix, confusion
from .rulesets import BASELINE_RULESETS, RuleSet
from .tree import DecisionTree

Model = Union[DecisionTree, RandomForest]


@dataclass(frozen=True)
class TrainingReport:
    """Held-out evaluation of one trained detector."""

    detector_name: str
    feature_names: Sequence[str]
    train_size: int
    test_size: int
    matrix: ConfusionMatrix

    @property
    def accuracy(self) -> float:
        """Held-out accuracy."""
        return self.matrix.accuracy

    @property
    def mcc(self) -> float:
        """Held-out Matthews correlation coefficient."""
        return self.matrix.mcc


class TrainedDetector:
    """A fitted model bound to its feature set.

    This is the unit the FC engine consumes: give it profiles (and
    timelines when the feature set needs them) and it returns 0/1
    fake verdicts.
    """

    def __init__(self, name: str, feature_set: FeatureSet, model: Model) -> None:
        self.name = name
        self.feature_set = feature_set
        self._model = model

    @property
    def needs_timeline(self) -> bool:
        """Whether prediction requires timelines (class-B features)."""
        return self.feature_set.needs_timeline()

    @property
    def model(self) -> Model:
        """The fitted underlying model."""
        return self._model

    def predict(self, users: Sequence[UserObject],
                timelines: Optional[Sequence[Optional[Sequence[Tweet]]]],
                now: float) -> np.ndarray:
        """0/1 fake verdicts for each user."""
        if not users:
            return np.empty(0, dtype=np.int64)
        X = self.feature_set.extract_matrix(users, timelines, now)
        return self._model.predict(X)

    def predict_proba(self, users: Sequence[UserObject],
                      timelines: Optional[Sequence[Optional[Sequence[Tweet]]]],
                      now: float) -> np.ndarray:
        """Fake probability for each user."""
        if not users:
            return np.empty(0, dtype=np.float64)
        X = self.feature_set.extract_matrix(users, timelines, now)
        return self._model.predict_proba(X)


def train_detector(
        gold: GoldStandard,
        *,
        feature_set: FeatureSet = PROFILE_FEATURE_SET,
        model: str = "forest",
        seed: int = 0,
        max_depth: int = 8,
        n_trees: int = 25,
) -> TrainedDetector:
    """Fit a detector on the *whole* gold standard.

    Use :func:`train_and_evaluate` when a held-out score is needed.
    """
    X = gold.design_matrix(feature_set)
    y = gold.labels()
    if model == "tree":
        fitted: Model = DecisionTree(max_depth=max_depth, seed=seed).fit(X, y)
    elif model == "forest":
        fitted = RandomForest(
            n_trees=n_trees, max_depth=max_depth, seed=seed).fit(X, y)
    else:
        raise TrainingError(f"unknown model kind: {model!r}")
    name = f"{model}[{'B' if feature_set.needs_timeline() else 'A'}]"
    return TrainedDetector(name, feature_set, fitted)


def evaluate_detector(detector: TrainedDetector,
                      gold: GoldStandard) -> ConfusionMatrix:
    """Confusion matrix of a trained detector on a gold standard."""
    predictions = detector.predict(
        gold.users(),
        gold.timelines() if detector.needs_timeline else None,
        gold.now,
    )
    return confusion(gold.labels(), predictions)


def evaluate_ruleset(ruleset: RuleSet, gold: GoldStandard) -> ConfusionMatrix:
    """Confusion matrix of a rule-based baseline on a gold standard."""
    predictions = ruleset.predict(
        gold.users(), gold.timelines(), gold.now)
    return confusion(gold.labels(), predictions)


def train_and_evaluate(
        gold: GoldStandard,
        *,
        feature_set: FeatureSet = PROFILE_FEATURE_SET,
        model: str = "forest",
        train_fraction: float = 0.7,
        seed: int = 0,
) -> tuple:
    """Split, fit on train, score on test.  Returns (detector, report)."""
    train, test = gold.split(train_fraction=train_fraction, seed=seed)
    detector = train_detector(
        train, feature_set=feature_set, model=model, seed=seed)
    matrix = evaluate_detector(detector, test)
    report = TrainingReport(
        detector_name=detector.name,
        feature_names=feature_set.names,
        train_size=len(train),
        test_size=len(test),
        matrix=matrix,
    )
    return detector, report


def cross_validate(
        gold: GoldStandard,
        factory: Callable[[GoldStandard], TrainedDetector],
        k: int = 5,
        seed: int = 0,
) -> List[ConfusionMatrix]:
    """k-fold cross-validation of a detector-producing factory."""
    matrices = []
    for train, validation in gold.kfold(k=k, seed=seed):
        detector = factory(train)
        matrices.append(evaluate_detector(detector, validation))
    return matrices


def compare_approaches(gold: GoldStandard,
                       seed: int = 0) -> Dict[str, ConfusionMatrix]:
    """The A3 ablation: rule sets vs trained classifiers, same data.

    Rule sets are scored on the full gold standard (they have no
    training phase); learned models are scored on a held-out split.
    """
    results: Dict[str, ConfusionMatrix] = {}
    for ruleset in BASELINE_RULESETS:
        results[f"rules:{ruleset.name}"] = evaluate_ruleset(ruleset, gold)
    for feature_set, tag in ((PROFILE_FEATURE_SET, "A"),
                             (FULL_FEATURE_SET, "A+B")):
        for model in ("tree", "forest"):
            __, report = train_and_evaluate(
                gold, feature_set=feature_set, model=model, seed=seed)
            results[f"ml:{model}[{tag}]"] = report.matrix
    return results
