"""Gold-standard dataset construction.

The Fake Project trained and validated its classifier on "a gold
standard of Twitter accounts, where fake followers, inactive, and
genuine accounts were a priori known" (paper, Section III) — built from
verified human volunteers and fake followers *actually purchased* from
sellers.  Our substrate equivalent samples accounts straight from the
persona library, so labels are known a priori by construction, and
renders each account's recent timeline exactly as a crawler would
retrieve it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from ..api.endpoints import UserObject
from ..core.errors import ConfigurationError, TrainingError
from ..core.rng import make_rng
from ..core.timeutil import PAPER_EPOCH
from ..twitter.account import Label
from ..twitter.personas import PERSONAS
from ..twitter.timeline import TimelineGenerator
from ..twitter.tweet import Tweet
from .features import FeatureSet

#: Personas whose accounts are *active* (recent tweets), by label.
ACTIVE_FAKE_PERSONAS = ("fake_classic", "fake_spammer")
ACTIVE_GENUINE_PERSONAS = ("genuine_active", "genuine_newbie")
INACTIVE_PERSONAS = ("genuine_abandoned", "fake_egg_dormant")


@dataclass(frozen=True)
class GoldExample:
    """One labelled account with its retrievable timeline."""

    user: UserObject
    timeline: Tuple[Tweet, ...]
    label: Label

    @property
    def is_fake(self) -> int:
        """Binary target for the fake-vs-genuine classifier (1 = fake)."""
        return 1 if self.label is Label.FAKE else 0


class GoldStandard:
    """A labelled collection with feature extraction and splitting."""

    def __init__(self, examples: Sequence[GoldExample], now: float) -> None:
        if not examples:
            raise TrainingError("gold standard must be non-empty")
        self._examples = tuple(examples)
        self._now = now

    @property
    def now(self) -> float:
        """Observation instant all examples were captured at."""
        return self._now

    @property
    def examples(self) -> Tuple[GoldExample, ...]:
        """The labelled examples, in order."""
        return self._examples

    def __len__(self) -> int:
        return len(self._examples)

    def labels(self) -> np.ndarray:
        """Binary labels (1 = fake)."""
        return np.array([e.is_fake for e in self._examples], dtype=np.int64)

    def three_way_labels(self) -> List[Label]:
        """Ground-truth labels in the paper's three-way taxonomy."""
        return [e.label for e in self._examples]

    def users(self) -> List[UserObject]:
        """The examples' public profile objects."""
        return [e.user for e in self._examples]

    def timelines(self) -> List[Tuple[Tweet, ...]]:
        """The examples' retrievable timelines."""
        return [e.timeline for e in self._examples]

    def design_matrix(self, feature_set: FeatureSet) -> np.ndarray:
        """Extract the feature matrix for all examples."""
        return feature_set.extract_matrix(
            self.users(), self.timelines(), self._now)

    def subset(self, indices: Sequence[int]) -> "GoldStandard":
        """A new gold standard containing only the given indices."""
        return GoldStandard(
            [self._examples[i] for i in indices], self._now)

    def split(self, train_fraction: float = 0.7,
              seed: int = 0) -> Tuple["GoldStandard", "GoldStandard"]:
        """Shuffled train/test split."""
        if not 0.0 < train_fraction < 1.0:
            raise ConfigurationError(
                f"train_fraction must be in (0, 1): {train_fraction!r}")
        rng = make_rng(seed, "gold-split")
        indices = list(range(len(self._examples)))
        rng.shuffle(indices)
        cut = max(1, min(len(indices) - 1,
                         int(round(len(indices) * train_fraction))))
        return self.subset(indices[:cut]), self.subset(indices[cut:])

    def kfold(self, k: int = 5,
              seed: int = 0) -> Iterator[Tuple["GoldStandard", "GoldStandard"]]:
        """Yield (train, validation) folds for k-fold cross-validation."""
        if not 2 <= k <= len(self._examples):
            raise ConfigurationError(
                f"k must be in [2, {len(self._examples)}]: {k!r}")
        rng = make_rng(seed, "gold-kfold")
        indices = list(range(len(self._examples)))
        rng.shuffle(indices)
        folds = [indices[i::k] for i in range(k)]
        for held_out in range(k):
            validation = folds[held_out]
            training = [
                index for fold_index, fold in enumerate(folds)
                if fold_index != held_out for index in fold
            ]
            yield self.subset(training), self.subset(validation)


def build_gold_standard(
        *,
        n_fake: int = 500,
        n_genuine: int = 500,
        n_inactive: int = 0,
        seed: int = 1234,
        now: float = PAPER_EPOCH,
        timeline_depth: int = 200,
) -> GoldStandard:
    """Sample a labelled dataset straight from the persona library.

    ``n_inactive > 0`` adds behaviourally inactive accounts, useful for
    evaluating the full three-way pipeline; the binary classifier is
    trained with ``n_inactive = 0`` since the FC engine filters
    inactives by rule before classification.
    """
    if min(n_fake, n_genuine) < 1:
        raise ConfigurationError("need at least one fake and one genuine")
    if n_inactive < 0:
        raise ConfigurationError(f"n_inactive must be >= 0: {n_inactive!r}")
    rng = make_rng(seed, "gold")
    timelines = TimelineGenerator(seed)
    examples: List[GoldExample] = []

    def add(count: int, persona_names: Sequence[str], tag: str) -> None:
        for index in range(count):
            persona = PERSONAS[persona_names[index % len(persona_names)]]
            user_id = (7 << 56) | (len(examples) + 1)
            account = persona.sample(
                rng, user_id, f"gold_{tag}_{index}", now)
            timeline = tuple(
                timelines.recent_tweets(account, timeline_depth))
            examples.append(GoldExample(
                user=UserObject.from_account(account),
                timeline=timeline,
                label=persona.label,
            ))

    add(n_fake, ACTIVE_FAKE_PERSONAS, "fake")
    add(n_genuine, ACTIVE_GENUINE_PERSONAS, "gen")
    if n_inactive:
        add(n_inactive, INACTIVE_PERSONAS, "inact")
    rng.shuffle(examples)
    return GoldStandard(examples, now)
