"""Budgeted feature selection — the "optimized classifiers" of [12].

The paper (Section III): "we have quantified their crawling cost and we
built a set of optimized classifiers that make use of the more
efficient features and rules, in terms both of crawling cost and fake
followers detection capability."

The crawl cost of a feature *set* is not additive per feature: all
class-A features share one batched profile lookup, and all class-B
features share one timeline fetch.  The optimizer therefore explores
the greedy forward-selection path under the true marginal-cost
structure and reports the (cost, quality) Pareto frontier, from which a
production classifier is picked for any audit time budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError, TrainingError
from .cost import feature_crawl_cost
from .dataset import GoldStandard
from .features import FEATURES, Feature, FeatureSet
from .metrics import ConfusionMatrix
from .training import (
    TrainedDetector,
    evaluate_detector,
    train_detector,
)


@dataclass(frozen=True)
class SelectionStep:
    """One step of the greedy forward-selection path."""

    added_feature: str
    feature_names: Tuple[str, ...]
    matrix: ConfusionMatrix
    crawl_seconds: float

    @property
    def mcc(self) -> float:
        """Held-out detection quality after this step."""
        return self.matrix.mcc


class GreedyFeatureSelector:
    """Greedy forward selection scored on a held-out split.

    At each step, the feature whose addition most improves held-out MCC
    is adopted.  Candidates whose MCC lands within ``tolerance`` of the
    step's best are considered equivalent, and among equivalents the
    cheaper cost class wins (A before B) — the [12] stance that a
    timeline fetch must *buy* detection quality, not merely not hurt.
    """

    def __init__(self, *, model: str = "tree", seed: int = 0,
                 accounts: int = 9604, latency: float = 1.9,
                 tolerance: float = 0.01,
                 candidates: Sequence[Feature] = FEATURES) -> None:
        if not candidates:
            raise ConfigurationError("need at least one candidate feature")
        if tolerance < 0:
            raise ConfigurationError(
                f"tolerance must be >= 0: {tolerance!r}")
        self._model = model
        self._seed = seed
        self._accounts = accounts
        self._latency = latency
        self._tolerance = tolerance
        self._candidates = tuple(candidates)

    def _score(self, names: Sequence[str], train: GoldStandard,
               held_out: GoldStandard) -> Tuple[ConfusionMatrix, float]:
        feature_set = FeatureSet.from_names(list(names))
        detector = train_detector(
            train, feature_set=feature_set, model=self._model,
            seed=self._seed)
        matrix = evaluate_detector(detector, held_out)
        cost = feature_crawl_cost(
            feature_set, self._accounts, latency=self._latency)
        return matrix, cost.seconds

    def path(self, gold: GoldStandard, *,
             max_features: Optional[int] = None,
             train_fraction: float = 0.7) -> List[SelectionStep]:
        """Run the full greedy path and return every step taken.

        Selection stops when no remaining feature improves held-out MCC
        (or after ``max_features`` adoptions).
        """
        train, held_out = gold.split(
            train_fraction=train_fraction, seed=self._seed)
        selected: List[str] = []
        steps: List[SelectionStep] = []
        best_mcc = -1.0
        limit = max_features if max_features is not None \
            else len(self._candidates)
        remaining = {feature.name: feature for feature in self._candidates}

        while remaining and len(selected) < limit:
            scored: List[Tuple[float, str, str, ConfusionMatrix, float]] = []
            for name, feature in remaining.items():
                matrix, seconds = self._score(
                    selected + [name], train, held_out)
                scored.append(
                    (matrix.mcc, feature.cost_class, name, matrix, seconds))
            # Among candidates within `tolerance` of the step's best
            # MCC, the cheaper cost class wins; then MCC, then name
            # order for determinism.
            step_best = max(row[0] for row in scored)
            contenders = [row for row in scored
                          if row[0] >= step_best - self._tolerance]
            contenders.sort(key=lambda row: (row[1], -row[0], row[2]))
            mcc, __cls, name, matrix, seconds = contenders[0]
            if mcc <= best_mcc + 1e-9:
                break
            best_mcc = mcc
            selected.append(name)
            del remaining[name]
            steps.append(SelectionStep(
                added_feature=name,
                feature_names=tuple(selected),
                matrix=matrix,
                crawl_seconds=seconds,
            ))
        if not steps:
            raise TrainingError("no feature improved on the empty model")
        return steps

    def pareto_frontier(self, steps: Sequence[SelectionStep]
                        ) -> List[SelectionStep]:
        """Steps not dominated in (cost, MCC) by any other step."""
        frontier: List[SelectionStep] = []
        for step in sorted(steps, key=lambda s: (s.crawl_seconds, -s.mcc)):
            if not frontier or step.mcc > frontier[-1].mcc + 1e-12:
                frontier.append(step)
        return frontier

    def best_under_budget(self, steps: Sequence[SelectionStep],
                          budget_seconds: float) -> SelectionStep:
        """Highest-MCC step whose crawl fits the budget."""
        if budget_seconds <= 0:
            raise ConfigurationError(
                f"budget_seconds must be > 0: {budget_seconds!r}")
        affordable = [step for step in steps
                      if step.crawl_seconds <= budget_seconds]
        if not affordable:
            raise ConfigurationError(
                f"no selection step fits a {budget_seconds:.0f}s budget")
        return max(affordable, key=lambda step: step.mcc)


def affordable_features(budget_seconds: float, accounts: int, *,
                        latency: float = 1.9,
                        candidates: Sequence[Feature] = FEATURES
                        ) -> List[Feature]:
    """Features whose *cost class* fits the audit budget.

    Cost is class-shared (one lookup batch for all class-A features,
    one timeline fetch for all class-B), so a feature is affordable iff
    a set containing just it is.
    """
    if budget_seconds <= 0:
        raise ConfigurationError(
            f"budget_seconds must be > 0: {budget_seconds!r}")
    kept = []
    for feature in candidates:
        cost = feature_crawl_cost(
            FeatureSet([feature]), accounts, latency=latency)
        if cost.seconds <= budget_seconds:
            kept.append(feature)
    return kept


def optimize_detector(gold: GoldStandard, budget_seconds: float, *,
                      model: str = "tree", seed: int = 0,
                      accounts: int = 9604) -> TrainedDetector:
    """End-to-end [12] pipeline: constrain, greedy-select, fit.

    The budget first prunes the candidate pool to the affordable cost
    classes (a 4-minute audit of 9604 followers cannot fetch timelines,
    period), then the greedy path maximises held-out quality within the
    feasible set.  The returned detector is retrained on the *whole*
    gold standard with the selected features.
    """
    candidates = affordable_features(budget_seconds, accounts)
    if not candidates:
        raise ConfigurationError(
            f"no feature's cost class fits a {budget_seconds:.0f}s "
            f"budget for {accounts} accounts")
    selector = GreedyFeatureSelector(
        model=model, seed=seed, accounts=accounts, candidates=candidates)
    steps = selector.path(gold)
    chosen = selector.best_under_budget(steps, budget_seconds)
    feature_set = FeatureSet.from_names(list(chosen.feature_names))
    return train_detector(
        gold, feature_set=feature_set, model=model, seed=seed)
