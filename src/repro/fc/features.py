"""Feature catalogue for fake-follower detection.

The FC engine's methodology ([12], summarised in the paper's Section
III) starts from features proposed in the academic spam-detection
literature — Stringhini et al. [8] and Yang et al. [9] — plus the
profile attributes the single-rule approaches ([13]-[15]) key on, and
annotates each with its *crawling cost*:

* **class A** — computable from a ``users/lookup`` profile alone
  (100 accounts per request);
* **class B** — requires a ``statuses/user_timeline`` fetch
  (one account per request, 12 requests/minute).

The cost classes drive the "optimized classifiers" of [12]: a class-A
classifier audits 9604 sampled followers with ~97 API calls, while a
class-B one would need ~9700 — hours instead of minutes.
"""

from __future__ import annotations

import hashlib
import math
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..api.endpoints import UserObject
from ..core.errors import ConfigurationError
from ..core.timeutil import DAY
from ..twitter.tweet import Tweet

#: Crawling-cost classes.
CLASS_A = "A"
CLASS_B = "B"

Extractor = Callable[[UserObject, Optional[Sequence[Tweet]], float], float]


@dataclass(frozen=True)
class Feature:
    """A named, cost-annotated numeric feature."""

    name: str
    cost_class: str
    extractor: Extractor
    description: str

    def __call__(self, user: UserObject, timeline: Optional[Sequence[Tweet]],
                 now: float) -> float:
        if self.cost_class == CLASS_B and timeline is None:
            raise ConfigurationError(
                f"feature {self.name!r} needs a timeline (cost class B)")
        return float(self.extractor(user, timeline, now))


def _log1p_count(value: float) -> float:
    return math.log1p(max(0.0, value))


# -- class A: profile-only features -----------------------------------------

def _followers(user, timeline, now):
    return _log1p_count(user.followers_count)


def _friends(user, timeline, now):
    return _log1p_count(user.friends_count)


def _statuses(user, timeline, now):
    return _log1p_count(user.statuses_count)


def _ff_ratio(user, timeline, now):
    return _log1p_count(user.friends_followers_ratio())


def _age_days(user, timeline, now):
    return user.age_at(now) / DAY


def _tweets_per_day(user, timeline, now):
    age_days = max(user.age_at(now) / DAY, 1.0)
    return user.statuses_count / age_days


def _has_bio(user, timeline, now):
    return 1.0 if user.has_bio() else 0.0


def _has_location(user, timeline, now):
    return 1.0 if user.has_location() else 0.0


def _has_url(user, timeline, now):
    return 1.0 if user.url.strip() else 0.0


def _default_image(user, timeline, now):
    return 1.0 if user.default_profile_image else 0.0


def _has_name(user, timeline, now):
    return 1.0 if user.name.strip() else 0.0


def _last_status_age_days(user, timeline, now):
    age = user.last_status_age(now)
    if age is None:
        # "Never tweeted" is encoded as an age far beyond any horizon.
        return 10_000.0
    return age / DAY


def _name_digit_fraction(user, timeline, now):
    from ..twitter.names import digit_fraction
    return digit_fraction(user.screen_name)


def _name_length(user, timeline, now):
    return float(len(user.screen_name))


def _followers_per_day(user, timeline, now):
    age_days = max(user.age_at(now) / DAY, 1.0)
    return user.followers_count / age_days


# -- class B: timeline features ----------------------------------------------

def _fraction(timeline: Sequence[Tweet], predicate) -> float:
    if not timeline:
        return 0.0
    return sum(1 for tweet in timeline if predicate(tweet)) / len(timeline)


def _retweet_fraction(user, timeline, now):
    return _fraction(timeline, lambda t: t.is_retweet())


def _link_fraction(user, timeline, now):
    return _fraction(timeline, lambda t: t.has_link())


def _spam_fraction(user, timeline, now):
    return _fraction(timeline, lambda t: t.contains_spam_phrase())


def _mention_fraction(user, timeline, now):
    return _fraction(timeline, lambda t: bool(t.mentions()))


def _hashtag_fraction(user, timeline, now):
    return _fraction(timeline, lambda t: bool(t.hashtags()))


def _automation_fraction(user, timeline, now):
    human = ("web", "Twitter for iPhone", "Twitter for Android")
    return _fraction(timeline, lambda t: t.source not in human)


def _duplicate_fraction(user, timeline, now):
    """Fraction of tweets whose body appears more than three times.

    Mirrors Socialbakers' "same tweets repeated more than three times"
    criterion, applied over the retrieved timeline page.
    """
    if not timeline:
        return 0.0
    counts = Counter(tweet.body() for tweet in timeline)
    duplicated = sum(1 for tweet in timeline if counts[tweet.body()] > 3)
    return duplicated / len(timeline)


FEATURES: Tuple[Feature, ...] = (
    Feature("log_followers", CLASS_A, _followers,
            "log(1 + followers_count)"),
    Feature("log_friends", CLASS_A, _friends,
            "log(1 + friends_count)"),
    Feature("log_statuses", CLASS_A, _statuses,
            "log(1 + statuses_count)"),
    Feature("log_ff_ratio", CLASS_A, _ff_ratio,
            "log(1 + friends/followers) — the StatusPeople founder's "
            "'most meaningful' signal"),
    Feature("age_days", CLASS_A, _age_days,
            "account age in days"),
    Feature("tweets_per_day", CLASS_A, _tweets_per_day,
            "lifetime tweeting rate"),
    Feature("has_bio", CLASS_A, _has_bio,
            "profile description filled in"),
    Feature("has_location", CLASS_A, _has_location,
            "profile location filled in"),
    Feature("has_url", CLASS_A, _has_url,
            "profile URL filled in"),
    Feature("default_image", CLASS_A, _default_image,
            "still uses the default profile image"),
    Feature("has_name", CLASS_A, _has_name,
            "display name filled in (Camisani-Calzolari)"),
    Feature("last_status_age_days", CLASS_A, _last_status_age_days,
            "days since the embedded last status (10000 = never tweeted)"),
    Feature("name_digit_fraction", CLASS_A, _name_digit_fraction,
            "fraction of digits in the handle (registration-farm tails)"),
    Feature("name_length", CLASS_A, _name_length,
            "length of the handle"),
    Feature("followers_per_day", CLASS_A, _followers_per_day,
            "audience accumulation rate (Yang et al.)"),
    Feature("retweet_fraction", CLASS_B, _retweet_fraction,
            "fraction of retweets in the recent timeline"),
    Feature("link_fraction", CLASS_B, _link_fraction,
            "fraction of tweets with URLs (Stringhini et al.)"),
    Feature("spam_fraction", CLASS_B, _spam_fraction,
            "fraction of tweets with spam phrases"),
    Feature("mention_fraction", CLASS_B, _mention_fraction,
            "fraction of tweets with mentions"),
    Feature("hashtag_fraction", CLASS_B, _hashtag_fraction,
            "fraction of tweets with hashtags"),
    Feature("automation_fraction", CLASS_B, _automation_fraction,
            "fraction of tweets from non-official clients (Chu et al.)"),
    Feature("duplicate_fraction", CLASS_B, _duplicate_fraction,
            "fraction of tweets whose body repeats > 3 times"),
)

FEATURES_BY_NAME: Dict[str, Feature] = {f.name: f for f in FEATURES}

#: The two canonical feature sets used by the optimized classifiers.
CLASS_A_FEATURES: Tuple[Feature, ...] = tuple(
    f for f in FEATURES if f.cost_class == CLASS_A)
ALL_FEATURES: Tuple[Feature, ...] = FEATURES


class FeatureSet:
    """An ordered selection of features with vector extraction."""

    def __init__(self, features: Sequence[Feature]) -> None:
        if not features:
            raise ConfigurationError("a feature set must be non-empty")
        names = [f.name for f in features]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate features: {names!r}")
        self._features = tuple(features)

    @classmethod
    def from_names(cls, names: Sequence[str]) -> "FeatureSet":
        missing = [name for name in names if name not in FEATURES_BY_NAME]
        if missing:
            raise ConfigurationError(f"unknown features: {missing!r}")
        return cls([FEATURES_BY_NAME[name] for name in names])

    @property
    def features(self) -> Tuple[Feature, ...]:
        """The selected features, in extraction order."""
        return self._features

    @property
    def names(self) -> List[str]:
        """The selected feature names, in extraction order."""
        return [f.name for f in self._features]

    def needs_timeline(self) -> bool:
        """Whether any feature is cost class B."""
        return any(f.cost_class == CLASS_B for f in self._features)

    def fingerprint(self) -> str:
        """Stable id of this ordered selection (feature-cache keying).

        Two feature sets share a fingerprint iff they extract the same
        features in the same order — exactly when their vectors are
        interchangeable, which is what lets
        :class:`repro.fc.columnar.FeatureCache` key rows by it.
        """
        joined = "|".join(self.names).encode("utf-8")
        return hashlib.sha256(joined).hexdigest()[:16]

    def extract(self, user: UserObject, timeline: Optional[Sequence[Tweet]],
                now: float) -> np.ndarray:
        """Extract one feature vector (float64, length = #features)."""
        return np.array(
            [feature(user, timeline, now) for feature in self._features],
            dtype=np.float64,
        )

    def extract_matrix(self, users: Sequence[UserObject],
                       timelines: Optional[Sequence[Optional[Sequence[Tweet]]]],
                       now: float) -> np.ndarray:
        """Extract a design matrix, one row per user."""
        if timelines is None:
            timelines = [None] * len(users)
        if len(timelines) != len(users):
            raise ConfigurationError("users and timelines length mismatch")
        if not users:
            return np.empty((0, len(self._features)), dtype=np.float64)
        return np.vstack([
            self.extract(user, timeline, now)
            for user, timeline in zip(users, timelines)
        ])


#: Ready-made feature sets.
PROFILE_FEATURE_SET = FeatureSet(CLASS_A_FEATURES)
FULL_FEATURE_SET = FeatureSet(ALL_FEATURES)
