"""Columnar fast path: vectorized features + batch forest inference.

The FC engine classifies a 9604-follower sample per audit (Section
III), and the scalar path pays pure-Python overhead per follower: 15
:class:`~repro.fc.features.Feature` dispatches building one row at a
time, then a per-row recursive descent through 25 trees.  This module
replaces both with columnar work over the whole sample:

* :func:`extract_feature_matrix` materialises the design matrix in one
  pass — class-A profile features as vectorized operations over
  column arrays, class-B timeline features as a single pass per
  timeline computing every fraction at once;
* :class:`FlatTree` / :class:`FlatForest` evaluate a fitted tree or
  forest over the whole matrix with masked array descent (at most
  ``max_depth`` vectorized steps) instead of per-row recursion;
* :class:`FeatureCache` remembers per-account feature rows keyed by
  ``(account_id, as_of epoch, feature-set fingerprint)``, so repeated
  audits of overlapping follower sets under one pinned observation
  never recompute features — shared across engines through the
  scheduler's :class:`~repro.sched.cache.AcquisitionCache`.

**Numerical identity is the contract.**  Every column reproduces its
scalar extractor's float operations in the same order (``math.log1p``
stays a per-element Python call: this NumPy build's SIMD ``np.log1p``
differs by 1 ULP on some inputs), tree descent compares the same
float64 values against the same thresholds, and the forest means the
same per-tree probabilities with the same ``vstack(...).mean(axis=0)``
— so classifications and report digests are byte-identical to the
scalar path (enforced by the parity property tests in
``tests/fc/test_columnar.py``).

NumPy is imported lazily through :func:`_import_numpy`; when it is
unavailable, :func:`batch_classifier` returns ``None`` and the engine
falls back to the scalar path automatically.
"""

from __future__ import annotations

import math
import operator
from collections import Counter, OrderedDict
from typing import List, Optional, Tuple

from ..core.errors import ConfigurationError, TrainingError
from ..core.timeutil import DAY
from ..obs.metrics import CacheInfo
from ..obs.runtime import get_observability
from ..twitter.names import digit_fraction
from ..twitter.tweet import (SPAM_PHRASES, _HASHTAG_RE, _MENTION_RE,
                             _RETWEET_RE, _URL_RE)
from .features import FeatureSet
from .forest import RandomForest
from .training import TrainedDetector
from .tree import DecisionTree


def _import_numpy():
    """Resolve NumPy, or ``None`` when the import fails.

    The single seam the fallback path hangs on: tests monkeypatch this
    to simulate a NumPy-less host, and :func:`batch_classifier` turns
    ``None`` into a silent scalar fallback.
    """
    try:
        import numpy
    except ImportError:  # pragma: no cover - the substrate bundles numpy
        return None
    return numpy


def numpy_available() -> bool:
    """Whether the columnar fast path can run at all."""
    return _import_numpy() is not None


# ---------------------------------------------------------------------------
# Columnar feature extraction
# ---------------------------------------------------------------------------

#: One attribute sweep per user gathers every raw profile column.
_PROFILE_FIELDS = operator.attrgetter(
    "followers_count", "friends_count", "statuses_count", "created_at",
    "last_status_at", "description", "location", "url", "name",
    "default_profile_image", "screen_name")

#: Official clients, as in the scalar ``_automation_fraction``.
_HUMAN_SOURCES = ("web", "Twitter for iPhone", "Twitter for Android")

#: Index of each class-B feature in a :func:`_timeline_fractions` tuple.
_TIMELINE_FRACTION_INDEX = {
    "retweet_fraction": 0,
    "link_fraction": 1,
    "spam_fraction": 2,
    "mention_fraction": 3,
    "hashtag_fraction": 4,
    "automation_fraction": 5,
    "duplicate_fraction": 6,
}


def _timeline_fractions(timeline) -> Tuple[float, ...]:
    """All seven class-B fractions of one timeline, in a single pass.

    Each fraction is ``count / len(timeline)`` on Python ints — the
    same exact division the scalar ``_fraction`` helper performs — so
    the values are bit-identical while the timeline is walked once
    instead of seven times.  The per-tweet predicates are the
    :class:`~repro.twitter.tweet.Tweet` method bodies inlined over one
    ``text`` read; mention/hashtag counting uses regex *presence*
    (``search``), which matches ``frozenset(findall)`` truthiness
    exactly because every match captures at least one ``\\w``, behind
    an exact C-level prefilter (a match requires the literal ``@``
    or ``#``).
    """
    n = len(timeline)
    if n == 0:
        return (0.0,) * 7
    retweets = links = spam = mentions = hashtags = automation = 0
    body_list: List[str] = []
    append_body = body_list.append
    is_retweet = _RETWEET_RE.match
    has_link = _URL_RE.search
    has_mention = _MENTION_RE.search
    has_hashtag = _HASHTAG_RE.search
    strip_retweet = _RETWEET_RE.sub
    for tweet in timeline:
        text = tweet.text
        if is_retweet(text):
            retweets += 1
        if has_link(text):
            links += 1
        lowered = text.lower()
        for phrase in SPAM_PHRASES:
            if phrase in lowered:
                spam += 1
                break
        if "@" in text and has_mention(text) is not None:
            mentions += 1
        if "#" in text and has_hashtag(text) is not None:
            hashtags += 1
        if tweet.source not in _HUMAN_SOURCES:
            automation += 1
        append_body(strip_retweet("", text).strip())
    bodies: Counter = Counter(body_list)
    duplicated = sum(1 for body in body_list if bodies[body] > 3)
    return (retweets / n, links / n, spam / n, mentions / n,
            hashtags / n, automation / n, duplicated / n)


class _ExtractContext:
    """Raw profile columns plus lazily-derived shared arrays."""

    def __init__(self, np, users, timelines, now: float) -> None:
        self.np = np
        self.users = users
        self.timelines = timelines
        self.now = now
        profile_columns = getattr(users, "profile_columns", None)
        if profile_columns is not None:
            # Columnar-substrate batches (e.g. UserRowBlock) hand over
            # ready-made attribute columns; values equal what the
            # per-object sweep below would have read, so downstream
            # feature math is unchanged.
            columns = profile_columns()
        else:
            rows = [_PROFILE_FIELDS(user) for user in users]
            columns = tuple(list(column) for column in zip(*rows))
        (self.followers, self.friends, self.statuses, self.created_at,
         self.last_status_at, self.descriptions, self.locations, self.urls,
         self.names, self.default_images, self.screen_names) = columns
        self._age_days = None
        self._fractions = None

    @property
    def age_days(self):
        """``max(0, now - created_at) / DAY`` — shared by three columns."""
        if self._age_days is None:
            np = self.np
            created = np.array(self.created_at, dtype=np.float64)
            self._age_days = np.maximum(0.0, self.now - created) / DAY
        return self._age_days

    @property
    def fractions(self) -> List[Tuple[float, ...]]:
        """Per-user class-B fraction tuples (computed once, lazily)."""
        if self._fractions is None:
            if self.timelines is None:
                raise ConfigurationError(
                    "class-B features need timelines (cost class B)")
            fractions = []
            for timeline in self.timelines:
                if timeline is None:
                    raise ConfigurationError(
                        "class-B features need timelines (cost class B)")
                fractions.append(_timeline_fractions(timeline))
            self._fractions = fractions
        return self._fractions

    def fraction_column(self, index: int):
        np = self.np
        return np.array([row[index] for row in self.fractions],
                        dtype=np.float64)


# Log-count columns stay per-element ``math.log1p`` calls: the scalar
# extractors use ``math.log1p`` and this NumPy build's ``np.log1p``
# differs by 1 ULP on some inputs, which would break bit-parity.

def _col_log_followers(ctx):
    # ``v if v > 0.0 else 0.0`` is ``max(0.0, v)`` without the builtin
    # call — identical result, measurably faster over 10k rows.
    return ctx.np.array([math.log1p(value if value > 0.0 else 0.0)
                         for value in ctx.followers], dtype=ctx.np.float64)


def _col_log_friends(ctx):
    return ctx.np.array([math.log1p(value if value > 0.0 else 0.0)
                         for value in ctx.friends], dtype=ctx.np.float64)


def _col_log_statuses(ctx):
    return ctx.np.array([math.log1p(value if value > 0.0 else 0.0)
                         for value in ctx.statuses], dtype=ctx.np.float64)


def _col_log_ff_ratio(ctx):
    # Mirrors UserObject.friends_followers_ratio() then _log1p_count.
    return ctx.np.array(
        [math.log1p(ratio if ratio > 0.0 else 0.0)
         for ratio in (float(friends) if followers == 0
                       else friends / followers
                       for friends, followers in zip(ctx.friends,
                                                     ctx.followers))],
        dtype=ctx.np.float64)


def _col_age_days(ctx):
    return ctx.age_days


def _col_tweets_per_day(ctx):
    np = ctx.np
    statuses = np.array(ctx.statuses, dtype=np.float64)
    return statuses / np.maximum(ctx.age_days, 1.0)


def _col_followers_per_day(ctx):
    np = ctx.np
    followers = np.array(ctx.followers, dtype=np.float64)
    return followers / np.maximum(ctx.age_days, 1.0)


def _col_has_bio(ctx):
    return ctx.np.array([1.0 if text.strip() else 0.0
                         for text in ctx.descriptions], dtype=ctx.np.float64)


def _col_has_location(ctx):
    return ctx.np.array([1.0 if text.strip() else 0.0
                         for text in ctx.locations], dtype=ctx.np.float64)


def _col_has_url(ctx):
    return ctx.np.array([1.0 if text.strip() else 0.0
                         for text in ctx.urls], dtype=ctx.np.float64)


def _col_has_name(ctx):
    return ctx.np.array([1.0 if text.strip() else 0.0
                         for text in ctx.names], dtype=ctx.np.float64)


def _col_default_image(ctx):
    return ctx.np.array([1.0 if flag else 0.0
                         for flag in ctx.default_images],
                        dtype=ctx.np.float64)


def _col_last_status_age_days(ctx):
    np = ctx.np
    last = np.array([np.nan if value is None else value
                     for value in ctx.last_status_at], dtype=np.float64)
    age = np.maximum(0.0, ctx.now - last) / DAY
    return np.where(np.isnan(last), 10_000.0, age)


def _col_name_digit_fraction(ctx):
    # For ASCII strings ``str.isdigit`` is true exactly for '0'-'9', so
    # the whole column reduces to one byte-level sweep: join the names,
    # mark digit bytes, and difference a running count at the name
    # boundaries.  ``int64 / int64`` division is correctly rounded just
    # like Python's ``count / len``, so the fractions stay bit-identical
    # to the scalar ``digit_fraction``.  Unicode digit classes differ
    # from ASCII, so any non-ASCII name sends the column down the
    # scalar path untouched.
    np = ctx.np
    names = ctx.screen_names
    joined = "".join(names)
    if not joined.isascii():
        return np.array([digit_fraction(name) for name in names],
                        dtype=np.float64)
    lengths = np.array([len(name) for name in names], dtype=np.int64)
    data = np.frombuffer(joined.encode("ascii"), dtype=np.uint8)
    running = np.zeros(len(data) + 1, dtype=np.int64)
    np.cumsum((data >= 48) & (data <= 57), out=running[1:])
    bounds = np.zeros(len(names) + 1, dtype=np.int64)
    np.cumsum(lengths, out=bounds[1:])
    counts = running[bounds[1:]] - running[bounds[:-1]]
    # max(len, 1) only shields the empty-name division: its count is 0,
    # reproducing the scalar's explicit 0.0.
    return counts / np.maximum(lengths, 1)


def _col_name_length(ctx):
    return ctx.np.array([float(len(name)) for name in ctx.screen_names],
                        dtype=ctx.np.float64)


_COLUMN_BUILDERS = {
    "log_followers": _col_log_followers,
    "log_friends": _col_log_friends,
    "log_statuses": _col_log_statuses,
    "log_ff_ratio": _col_log_ff_ratio,
    "age_days": _col_age_days,
    "tweets_per_day": _col_tweets_per_day,
    "followers_per_day": _col_followers_per_day,
    "has_bio": _col_has_bio,
    "has_location": _col_has_location,
    "has_url": _col_has_url,
    "has_name": _col_has_name,
    "default_image": _col_default_image,
    "last_status_age_days": _col_last_status_age_days,
    "name_digit_fraction": _col_name_digit_fraction,
    "name_length": _col_name_length,
}


def _build_column(ctx, feature):
    """One feature's column: vectorized builder, timeline fraction, or
    — for features this module has never heard of — the scalar
    extractor applied row by row (slow but always semantically right).
    """
    builder = _COLUMN_BUILDERS.get(feature.name)
    if builder is not None:
        return builder(ctx)
    index = _TIMELINE_FRACTION_INDEX.get(feature.name)
    if index is not None:
        return ctx.fraction_column(index)
    timelines = (ctx.timelines if ctx.timelines is not None
                 else [None] * len(ctx.users))
    return ctx.np.array(
        [feature(user, timeline, ctx.now)
         for user, timeline in zip(ctx.users, timelines)],
        dtype=ctx.np.float64)


def extract_feature_matrix(np, feature_set: FeatureSet, users,
                           timelines, now: float):
    """Columnar twin of :meth:`FeatureSet.extract_matrix`, bit-identical.

    Builds the whole design matrix column by column over one attribute
    sweep of the profiles (and one pass per timeline for class-B
    features) instead of dispatching every feature per row.
    """
    if timelines is not None and len(timelines) != len(users):
        raise ConfigurationError("users and timelines length mismatch")
    features = feature_set.features
    if not users:
        return np.empty((0, len(features)), dtype=np.float64)
    ctx = _ExtractContext(np, users, timelines, now)
    matrix = np.empty((len(users), len(features)), dtype=np.float64)
    for column, feature in enumerate(features):
        matrix[:, column] = _build_column(ctx, feature)
    return matrix


# ---------------------------------------------------------------------------
# Batch tree / forest inference
# ---------------------------------------------------------------------------

class FlatTree:
    """A fitted :class:`DecisionTree` as arrays, descended level-wise.

    Every row starts at the root and every step advances *all* rows by
    one level at once (``X[rows, feature] <= threshold`` picks
    left/right), so a depth-8 tree classifies any number of rows in
    exactly 8 vectorized steps.  Rows that reach a leaf early simply
    self-loop: leaves are rewritten at construction to compare feature
    0 against ``+inf`` and route both branches back to themselves,
    which removes all per-level masking from the hot loop.  The
    comparisons at internal nodes are the same float64 values against
    the same thresholds as the scalar ``_descend``, so every row lands
    on the same leaf.
    """

    def __init__(self, np, tree: DecisionTree) -> None:
        flat = tree.flatten()
        self._np = np
        self.n_features = tree.n_features
        self.feature = np.array(flat["feature"], dtype=np.int64)
        self.threshold = np.array(flat["threshold"], dtype=np.float64)
        self.probability = np.array(flat["probability"], dtype=np.float64)
        self.prediction = np.array(flat["prediction"], dtype=np.int64)
        self.left = np.array(flat["left"], dtype=np.int64)
        self.right = np.array(flat["right"], dtype=np.int64)
        is_leaf = self.feature < 0
        nodes = np.arange(len(self.feature), dtype=np.int64)
        self._step_feature = np.where(is_leaf, 0, self.feature)
        self._step_threshold = np.where(is_leaf, np.inf, self.threshold)
        self._step_left = np.where(is_leaf, nodes, self.left)
        self._step_right = np.where(is_leaf, nodes, self.right)
        self._depth = self._max_depth(flat["feature"], flat["left"],
                                      flat["right"])

    @staticmethod
    def _max_depth(feature, left, right) -> int:
        """Longest root-to-leaf path — the step count ``leaves`` needs."""
        depth = 0
        stack = [(0, 0)]
        while stack:
            node, level = stack.pop()
            if feature[node] < 0:
                depth = max(depth, level)
            else:
                stack.append((left[node], level + 1))
                stack.append((right[node], level + 1))
        return depth

    def leaves(self, X):
        """The leaf index each row of ``X`` lands on."""
        np = self._np
        nodes = np.zeros(X.shape[0], dtype=np.int64)
        rows = np.arange(X.shape[0])
        for _ in range(self._depth):
            go_left = (X[rows, self._step_feature[nodes]]
                       <= self._step_threshold[nodes])
            nodes = np.where(go_left, self._step_left[nodes],
                             self._step_right[nodes])
        return nodes

    def predict_proba(self, X):
        """Leaf-frequency fake probability per row."""
        return self.probability[self.leaves(X)]

    def predict(self, X):
        """0/1 fake verdict per row."""
        return self.prediction[self.leaves(X)]


class FlatForest:
    """Every member tree flattened; the same bagged mean as the scalar.

    ``vstack(per-tree probabilities).mean(axis=0)`` reproduces
    :meth:`RandomForest.predict_proba` operation for operation, so the
    ensemble probability (and the ``>= 0.5`` verdict) is bit-identical.
    """

    def __init__(self, np, forest: RandomForest) -> None:
        self._np = np
        trees = forest.trees
        if not trees:
            raise TrainingError("forest is not fitted")
        self._trees = [FlatTree(np, tree) for tree in trees]
        self.n_features = forest.n_features

    def predict_proba(self, X):
        """Mean fake probability across trees, per row."""
        np = self._np
        votes = np.vstack([tree.predict_proba(X) for tree in self._trees])
        return votes.mean(axis=0)

    def predict(self, X):
        """Majority-vote 0/1 verdict per row."""
        return (self.predict_proba(X) >= 0.5).astype(self._np.int64)


# ---------------------------------------------------------------------------
# Feature cache
# ---------------------------------------------------------------------------

class FeatureCache:
    """Per-account feature rows, keyed ``(account_id, as_of, fingerprint)``.

    The observation epoch in the key is what makes sharing sound: a
    batch pins every audit to one ``as_of``, so a cached row equals a
    recomputed one exactly.  Rows are stored as read-only float64
    arrays, safe to hand to many matrices.  ``max_entries`` bounds
    engine-local caches LRU-style (the scheduler-shared instance is
    cleared per batch instead); the ``fc_feature_cache_hits_total``
    counter is created lazily on the first hit so runs that never hit
    keep their metric expositions byte-identical.
    """

    def __init__(self, name: str = "fc-features",
                 max_entries: Optional[int] = 50_000) -> None:
        if max_entries is not None and max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1 or None: {max_entries!r}")
        self._name = name
        self._max_entries = max_entries
        self._entries: "OrderedDict[Tuple[int, float, str], object]" = \
            OrderedDict()
        #: Lookup outcomes since construction, as plain ints so
        #: ``cache_info()`` works with observability off.
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        obs = get_observability()
        self._registry = obs.registry
        self._hit_counter = None
        obs.register_cache(self)

    def get(self, account_id: int, as_of: float, fingerprint: str):
        """The cached feature row, or ``None``."""
        key = (account_id, as_of, fingerprint)
        row = self._entries.get(key)
        if row is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if self._hit_counter is None:
            self._hit_counter = self._registry.counter(
                "fc_feature_cache_hits_total",
                help="feature rows served from the FC feature cache",
                cache=self._name)
        self._hit_counter.inc()
        return row

    def put(self, account_id: int, as_of: float, fingerprint: str,
            row) -> None:
        """Store one feature row (kept read-only)."""
        key = (account_id, as_of, fingerprint)
        self._entries[key] = row
        self._entries.move_to_end(key)
        while (self._max_entries is not None
               and len(self._entries) > self._max_entries):
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every row (a new batch pins a new observation epoch)."""
        self._entries.clear()

    def size(self) -> int:
        """Live row count."""
        return len(self._entries)

    def cache_info(self) -> CacheInfo:
        """The uniform snapshot shape shared with the result caches."""
        return CacheInfo(name=self._name, hits=self.hits,
                         misses=self.misses, evictions=self.evictions,
                         size=len(self._entries))


# ---------------------------------------------------------------------------
# The batch classifier the engine plugs in
# ---------------------------------------------------------------------------

class BatchClassifier:
    """Columnar drop-in for :meth:`TrainedDetector.predict`.

    Same signature, same verdicts, a fraction of the wall clock:
    features come from :func:`extract_feature_matrix` (through the
    :class:`FeatureCache` when one is attached), inference from a
    :class:`FlatTree`/:class:`FlatForest`.  Both stages are wrapped in
    obs spans (``fc.batch_extract`` / ``fc.batch_infer``) — zero
    simulated duration, but they carry row counts and land in traces.
    """

    def __init__(self, np, detector: TrainedDetector, model, *,
                 feature_cache: Optional[FeatureCache] = None,
                 clock=None) -> None:
        self._np = np
        self._detector = detector
        self._feature_set = detector.feature_set
        self._fingerprint = detector.feature_set.fingerprint()
        self._model = model
        self._cache = feature_cache
        self._clock = clock
        self._tracer = get_observability().tracer

    @property
    def feature_cache(self) -> Optional[FeatureCache]:
        """The attached feature cache (``None`` = caching off)."""
        return self._cache

    def use_cache(self, cache: Optional[FeatureCache]) -> None:
        """Attach (or detach, with ``None``) a feature cache."""
        self._cache = cache

    def matrix(self, users, timelines, now: float):
        """The design matrix for ``users``, cached rows included."""
        with self._tracer.span("fc.batch_extract", self._clock,
                               rows=len(users)):
            return self._matrix(users, timelines, now)

    def _matrix(self, users, timelines, now: float):
        np = self._np
        if self._cache is None:
            return extract_feature_matrix(
                np, self._feature_set, users, timelines, now)
        rows: List[object] = [None] * len(users)
        missing: List[int] = []
        for index, user in enumerate(users):
            row = self._cache.get(user.user_id, now, self._fingerprint)
            if row is None:
                missing.append(index)
            else:
                rows[index] = row
        if missing:
            sub_users = [users[index] for index in missing]
            sub_timelines = ([timelines[index] for index in missing]
                             if timelines is not None else None)
            fresh = extract_feature_matrix(
                np, self._feature_set, sub_users, sub_timelines, now)
            for position, index in enumerate(missing):
                row = fresh[position].copy()
                row.flags.writeable = False
                self._cache.put(users[index].user_id, now,
                                self._fingerprint, row)
                rows[index] = row
        if not rows:
            return np.empty((0, len(self._feature_set.features)),
                            dtype=np.float64)
        return np.vstack(rows)

    def predict(self, users, timelines, now: float):
        """0/1 fake verdicts for each user (scalar-identical)."""
        if not users:
            return self._np.empty(0, dtype=self._np.int64)
        X = self.matrix(users, timelines, now)
        with self._tracer.span("fc.batch_infer", self._clock,
                               rows=len(users)):
            return self._model.predict(X)

    def predict_proba(self, users, timelines, now: float):
        """Fake probability for each user (scalar-identical)."""
        if not users:
            return self._np.empty(0, dtype=self._np.float64)
        X = self.matrix(users, timelines, now)
        with self._tracer.span("fc.batch_infer", self._clock,
                               rows=len(users)):
            return self._model.predict_proba(X)


def batch_classifier(detector: TrainedDetector, *,
                     feature_cache: Optional[FeatureCache] = None,
                     clock=None) -> Optional[BatchClassifier]:
    """Build the columnar classifier for ``detector``, or ``None``.

    ``None`` means "use the scalar path": NumPy failed to import, the
    underlying model is not a known tree/forest, or the model is
    unfitted.  Callers treat it as an automatic, silent fallback.
    """
    np = _import_numpy()
    if np is None:
        return None
    model = detector.model
    try:
        if isinstance(model, RandomForest):
            flat = FlatForest(np, model)
        elif isinstance(model, DecisionTree):
            flat = FlatTree(np, model)
        else:
            return None
    except TrainingError:
        return None
    return BatchClassifier(np, detector, flat,
                           feature_cache=feature_cache, clock=clock)
