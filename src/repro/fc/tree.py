"""Decision-tree classifier, implemented from scratch on numpy.

scikit-learn is not part of the offline substrate, so the learners the
FC methodology relies on are built here: a CART-style binary decision
tree (Gini impurity, exhaustive threshold search) and, on top of it in
``repro.fc.forest``, a bagged random forest.  Both are deterministic
given their seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.errors import TrainingError


@dataclass
class _Node:
    """One tree node; a leaf iff ``feature`` is None."""

    prediction: int
    probability: float
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    def is_leaf(self) -> bool:
        return self.feature is None


def _gini(counts: np.ndarray) -> float:
    """Gini impurity of a class-count vector."""
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


class DecisionTree:
    """CART binary classifier (labels 0/1, 1 = fake).

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_samples_split:
        Minimum samples required to attempt a split.
    min_samples_leaf:
        Minimum samples each child must retain.
    max_features:
        Features considered per split; ``None`` = all (plain CART),
        an int enables the random-subspace behaviour used by forests.
    seed:
        RNG seed for feature subsampling (unused when ``max_features``
        is ``None``).
    """

    def __init__(self, max_depth: int = 8, min_samples_split: int = 2,
                 min_samples_leaf: int = 1,
                 max_features: Optional[int] = None, seed: int = 0) -> None:
        if max_depth < 1:
            raise TrainingError(f"max_depth must be >= 1: {max_depth!r}")
        if min_samples_split < 2:
            raise TrainingError(
                f"min_samples_split must be >= 2: {min_samples_split!r}")
        if min_samples_leaf < 1:
            raise TrainingError(
                f"min_samples_leaf must be >= 1: {min_samples_leaf!r}")
        self._max_depth = max_depth
        self._min_samples_split = min_samples_split
        self._min_samples_leaf = min_samples_leaf
        self._max_features = max_features
        self._rng = np.random.default_rng(seed)
        self._root: Optional[_Node] = None
        self._n_features = 0

    # -- training -----------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTree":
        """Grow the tree on a design matrix and 0/1 labels."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2:
            raise TrainingError(f"X must be 2-D, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise TrainingError("y length must match X rows")
        if X.shape[0] == 0:
            raise TrainingError("cannot fit on an empty dataset")
        if not set(np.unique(y)) <= {0, 1}:
            raise TrainingError("labels must be 0/1")
        self._n_features = X.shape[1]
        self._root = self._grow(X, y, depth=0)
        return self

    def _leaf(self, y: np.ndarray) -> _Node:
        positives = int(y.sum())
        total = len(y)
        probability = positives / total if total else 0.0
        return _Node(prediction=int(probability >= 0.5), probability=probability)

    def _candidate_features(self) -> np.ndarray:
        if self._max_features is None or self._max_features >= self._n_features:
            return np.arange(self._n_features)
        return self._rng.choice(
            self._n_features, size=self._max_features, replace=False)

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        if (depth >= self._max_depth
                or len(y) < self._min_samples_split
                or len(np.unique(y)) == 1):
            return self._leaf(y)
        split = self._best_split(X, y)
        if split is None:
            return self._leaf(y)
        feature, threshold = split
        mask = X[:, feature] <= threshold
        node = self._leaf(y)
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray):
        """Exhaustive Gini search over candidate features and thresholds."""
        parent_counts = np.bincount(y, minlength=2).astype(np.float64)
        parent_impurity = _gini(parent_counts)
        best_gain = 1e-12
        best = None
        n = len(y)
        for feature in self._candidate_features():
            order = np.argsort(X[:, feature], kind="mergesort")
            values = X[order, feature]
            labels = y[order]
            # Prefix class counts: left split = first i samples.
            ones = np.cumsum(labels)
            total_ones = ones[-1]
            for i in range(self._min_samples_leaf,
                           n - self._min_samples_leaf + 1):
                if i < n and values[i - 1] == values[i]:
                    continue  # cannot cut between equal values
                if i == n:
                    continue
                left_ones = ones[i - 1]
                left_counts = np.array(
                    [i - left_ones, left_ones], dtype=np.float64)
                right_counts = np.array(
                    [(n - i) - (total_ones - left_ones),
                     total_ones - left_ones], dtype=np.float64)
                weighted = (i * _gini(left_counts)
                            + (n - i) * _gini(right_counts)) / n
                gain = parent_impurity - weighted
                if gain > best_gain:
                    best_gain = gain
                    best = (int(feature),
                            float((values[i - 1] + values[i]) / 2.0))
        return best

    # -- inference -----------------------------------------------------------

    def _descend(self, row: np.ndarray) -> _Node:
        if self._root is None:
            raise TrainingError("tree is not fitted")
        node = self._root
        while not node.is_leaf():
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict 0/1 labels for each row."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self._n_features:
            raise TrainingError(
                f"X must have shape (*, {self._n_features}), got {X.shape}")
        return np.array(
            [self._descend(row).prediction for row in X], dtype=np.int64)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Leaf-frequency probability of the positive (fake) class."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self._n_features:
            raise TrainingError(
                f"X must have shape (*, {self._n_features}), got {X.shape}")
        return np.array(
            [self._descend(row).probability for row in X], dtype=np.float64)

    # -- introspection --------------------------------------------------------

    @property
    def n_features(self) -> int:
        """Design-matrix width the tree was fitted on (0 if unfitted)."""
        return self._n_features

    def flatten(self) -> Dict[str, List]:
        """The fitted tree as parallel node lists, in preorder.

        ``feature`` holds ``-1`` at leaves; ``left``/``right`` are node
        indices into the same lists (``-1`` at leaves).  This is the
        shape the columnar fast path (:mod:`repro.fc.columnar`)
        evaluates with masked array descent instead of per-row
        recursion — the flattened values are exactly the fitted node
        fields, so both traversals take identical branches.
        """
        if self._root is None:
            raise TrainingError("tree is not fitted")
        feature: List[int] = []
        threshold: List[float] = []
        probability: List[float] = []
        prediction: List[int] = []
        left: List[int] = []
        right: List[int] = []

        def add(node: _Node) -> int:
            index = len(feature)
            feature.append(-1 if node.feature is None else int(node.feature))
            threshold.append(float(node.threshold))
            probability.append(float(node.probability))
            prediction.append(int(node.prediction))
            left.append(-1)
            right.append(-1)
            if node.feature is not None:
                left[index] = add(node.left)
                right[index] = add(node.right)
            return index

        add(self._root)
        return {"feature": feature, "threshold": threshold,
                "probability": probability, "prediction": prediction,
                "left": left, "right": right}

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf():
                return 0
            return 1 + max(walk(node.left), walk(node.right))
        if self._root is None:
            raise TrainingError("tree is not fitted")
        return walk(self._root)

    def feature_importances(self) -> np.ndarray:
        """Split-count importance per feature (normalised to sum 1)."""
        if self._root is None:
            raise TrainingError("tree is not fitted")
        counts = np.zeros(self._n_features, dtype=np.float64)

        def walk(node: Optional[_Node]) -> None:
            if node is None or node.is_leaf():
                return
            counts[node.feature] += 1
            walk(node.left)
            walk(node.right)

        walk(self._root)
        total = counts.sum()
        return counts / total if total else counts

    def rules(self) -> List[str]:
        """Human-readable decision paths (for documentation and debugging)."""
        if self._root is None:
            raise TrainingError("tree is not fitted")
        lines: List[str] = []

        def walk(node: _Node, prefix: str) -> None:
            if node.is_leaf():
                lines.append(
                    f"{prefix} => {'fake' if node.prediction else 'genuine'} "
                    f"(p={node.probability:.2f})")
                return
            walk(node.left, f"{prefix} [f{node.feature} <= {node.threshold:.3g}]")
            walk(node.right, f"{prefix} [f{node.feature} > {node.threshold:.3g}]")

        walk(self._root, "")
        return lines
