"""Bagged random forest over :class:`~repro.fc.tree.DecisionTree`.

Bootstrap sampling plus random feature subspaces per split; prediction
is the majority vote (probability = mean of tree probabilities).
Deterministic for a fixed seed.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from ..core.errors import TrainingError
from .tree import DecisionTree


class RandomForest:
    """An ensemble of CART trees trained on bootstrap resamples."""

    def __init__(self, n_trees: int = 25, max_depth: int = 8,
                 min_samples_leaf: int = 1,
                 max_features: Optional[int] = None, seed: int = 0) -> None:
        if n_trees < 1:
            raise TrainingError(f"n_trees must be >= 1: {n_trees!r}")
        self._n_trees = n_trees
        self._max_depth = max_depth
        self._min_samples_leaf = min_samples_leaf
        self._max_features = max_features
        self._seed = seed
        self._trees: List[DecisionTree] = []
        self._n_features = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForest":
        """Train all trees; each sees a bootstrap resample of (X, y)."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2 or X.shape[0] == 0:
            raise TrainingError(f"X must be non-empty 2-D, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise TrainingError("y length must match X rows")
        self._n_features = X.shape[1]
        max_features = self._max_features
        if max_features is None:
            # The classic sqrt(d) heuristic.
            max_features = max(1, int(math.sqrt(self._n_features)))
        rng = np.random.default_rng(self._seed)
        n = X.shape[0]
        self._trees = []
        for index in range(self._n_trees):
            rows = rng.integers(0, n, size=n)
            tree = DecisionTree(
                max_depth=self._max_depth,
                min_samples_leaf=self._min_samples_leaf,
                max_features=max_features,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[rows], y[rows])
            self._trees.append(tree)
        return self

    @property
    def trees(self) -> List[DecisionTree]:
        """The fitted member trees."""
        return list(self._trees)

    @property
    def n_features(self) -> int:
        """Design-matrix width the forest was fitted on (0 if unfitted)."""
        return self._n_features

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Mean positive-class probability across trees."""
        if not self._trees:
            raise TrainingError("forest is not fitted")
        votes = np.vstack([tree.predict_proba(X) for tree in self._trees])
        return votes.mean(axis=0)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority-vote 0/1 labels."""
        return (self.predict_proba(X) >= 0.5).astype(np.int64)

    def feature_importances(self) -> np.ndarray:
        """Mean split-count importance across trees."""
        if not self._trees:
            raise TrainingError("forest is not fitted")
        stacked = np.vstack([
            tree.feature_importances() for tree in self._trees])
        return stacked.mean(axis=0)
