"""Rule-based baseline detectors from the (pre-2014) grey literature.

The FC methodology ([12], recounted in the paper's Section III) began by
testing the era's published single-rule approaches on a gold standard:

* Camisani-Calzolari's human/bot scoring used for the 2012 US-election
  follower audits [13];
* Socialbakers' Fake Follower Check criteria [14] (also re-used by the
  commercial engine in ``repro.analytics.socialbakers``);
* Stateofsearch.com's "7 signals to recognise Twitterbots" [15].

Their published criteria are qualitative; point weights and thresholds
were never disclosed.  The values below are documented choices that
respect every published statement, and the ablation bench (A3) shows —
as [12] found — that *no* weighting of these rules matches a trained
classifier on the gold standard.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..api.endpoints import UserObject
from ..core.errors import ConfigurationError
from ..core.timeutil import DAY
from ..twitter.tweet import Tweet


def _link_fraction(timeline: Sequence[Tweet]) -> float:
    if not timeline:
        return 0.0
    return sum(1 for t in timeline if t.has_link()) / len(timeline)


def _retweet_fraction(timeline: Sequence[Tweet]) -> float:
    if not timeline:
        return 0.0
    return sum(1 for t in timeline if t.is_retweet()) / len(timeline)


def _spam_fraction(timeline: Sequence[Tweet]) -> float:
    if not timeline:
        return 0.0
    return sum(1 for t in timeline if t.contains_spam_phrase()) / len(timeline)


def _has_repeated_tweets(timeline: Sequence[Tweet], more_than: int = 3) -> bool:
    counts = Counter(t.body() for t in timeline)
    return any(count > more_than for count in counts.values())


def _mention_fraction(timeline: Sequence[Tweet]) -> float:
    if not timeline:
        return 0.0
    return sum(1 for t in timeline if t.mentions()) / len(timeline)


@dataclass(frozen=True)
class RuleVerdict:
    """Outcome of one rule set on one account."""

    score: float
    is_fake: bool
    fired: Tuple[str, ...]


class RuleSet:
    """Interface of a rule-based fake detector."""

    name: str = "ruleset"
    needs_timeline: bool = False

    def evaluate(self, user: UserObject, timeline: Optional[Sequence[Tweet]],
                 now: float) -> RuleVerdict:
        """Apply the rules to one account; returns the verdict."""
        raise NotImplementedError

    def is_fake(self, user: UserObject, timeline: Optional[Sequence[Tweet]],
                now: float) -> bool:
        """Whether the rule set declares the account fake."""
        return self.evaluate(user, timeline, now).is_fake

    def predict(self, users: Sequence[UserObject],
                timelines: Optional[Sequence[Optional[Sequence[Tweet]]]],
                now: float) -> np.ndarray:
        """Vectorised 0/1 (1 = fake) predictions, classifier-compatible."""
        if timelines is None:
            timelines = [None] * len(users)
        if len(timelines) != len(users):
            raise ConfigurationError("users and timelines length mismatch")
        return np.array(
            [1 if self.is_fake(u, t, now) else 0
             for u, t in zip(users, timelines)],
            dtype=np.int64,
        )


class CamisaniCalzolariRules(RuleSet):
    """Human-score rules from the 2012 election-followers analysis [13].

    Each satisfied *human* criterion earns points; accounts scoring
    below ``threshold`` are declared fake.  Criteria relying on data our
    substrate does not model (list membership, geo-enablement,
    punctuation habits) are omitted and the threshold is set against the
    remaining maximum of 12 points.
    """

    name = "camisani-calzolari"
    needs_timeline = True

    def __init__(self, threshold: float = 6.0) -> None:
        self._threshold = threshold

    def evaluate(self, user: UserObject, timeline: Optional[Sequence[Tweet]],
                 now: float) -> RuleVerdict:
        timeline = timeline or []
        score = 0.0
        fired: List[str] = []
        checks = (
            ("has_name", 2.0, bool(user.name.strip())),
            ("has_image", 2.0, not user.default_profile_image),
            ("has_address", 1.0, user.has_location()),
            ("has_bio", 2.0, user.has_bio()),
            ("followers_30", 2.0, user.followers_count >= 30),
            ("tweets_50", 2.0, user.statuses_count >= 50),
            ("has_url", 1.0, bool(user.url.strip())),
        )
        for label, points, satisfied in checks:
            if satisfied:
                score += points
                fired.append(label)
        return RuleVerdict(
            score=score, is_fake=score < self._threshold, fired=tuple(fired))


class SocialbakersCriteria(RuleSet):
    """The published Fake Follower Check criteria [14] (paper, Sec. II-B).

    Every criterion is quoted from the methodology page; the point
    weights and the suspicion threshold are the undisclosed part, fixed
    here at documented values.  ``evaluate`` returns the *suspicion*
    verdict; the three-way fake/inactive/genuine decision including the
    two inactivity rules lives in :meth:`classify`.
    """

    name = "socialbakers"
    needs_timeline = True
    #: Batch-criteria protocol: verdict vocabulary of :meth:`classify`
    #: (the engine maps ``genuine`` onto its report's ``good`` class)
    #: and the static columnar-capability fact.
    labels = ("fake", "inactive", "genuine")
    batch_capable = True
    #: Stable rule registry: the eight published suspicion criteria
    #: (the ``sb.``-prefixed WEIGHTS keys) plus the two inactivity
    #: rules.  Renaming one breaks goldens — see docs/observability.md.
    rule_ids = (
        "sb.ff_ratio_50",
        "sb.spam_phrases_30pct",
        "sb.repeated_tweets_3x",
        "sb.retweets_90pct",
        "sb.links_90pct",
        "sb.never_tweeted",
        "sb.old_default_image",
        "sb.empty_profile_following_100",
        "sb.under_3_tweets",
        "sb.stale_90d",
    )

    #: (label, points) — one entry per published criterion.
    WEIGHTS = {
        "ff_ratio_50": 3.0,
        "spam_phrases_30pct": 2.0,
        "repeated_tweets_3x": 2.0,
        "retweets_90pct": 1.5,
        "links_90pct": 1.5,
        "never_tweeted": 1.0,
        "old_default_image": 2.0,
        "empty_profile_following_100": 2.0,
    }

    def __init__(self, threshold: float = 3.0) -> None:
        self._threshold = threshold

    def evaluate(self, user: UserObject, timeline: Optional[Sequence[Tweet]],
                 now: float) -> RuleVerdict:
        timeline = timeline or []
        fired: List[str] = []
        if user.friends_followers_ratio() >= 50.0:
            fired.append("ff_ratio_50")
        if _spam_fraction(timeline) > 0.30:
            fired.append("spam_phrases_30pct")
        if _has_repeated_tweets(timeline):
            fired.append("repeated_tweets_3x")
        if timeline and _retweet_fraction(timeline) > 0.90:
            fired.append("retweets_90pct")
        if timeline and _link_fraction(timeline) > 0.90:
            fired.append("links_90pct")
        if not user.has_ever_tweeted():
            fired.append("never_tweeted")
        if user.age_at(now) > 60 * DAY and user.default_profile_image:
            fired.append("old_default_image")
        if (not user.has_bio() and not user.has_location()
                and user.friends_count > 100):
            fired.append("empty_profile_following_100")
        score = sum(self.WEIGHTS[label] for label in fired)
        return RuleVerdict(
            score=score, is_fake=score >= self._threshold, fired=tuple(fired))

    # -- the engine's published inactivity rules -------------------------------

    @staticmethod
    def is_inactive(user: UserObject, now: float) -> bool:
        """"less than 3 tweets" or "last tweet more than 90 days old"."""
        if user.statuses_count < 3:
            return True
        age = user.last_status_age(now)
        return age is not None and age > 90 * DAY

    def classify(self, user: UserObject, timeline: Optional[Sequence[Tweet]],
                 now: float) -> str:
        """Three-way decision: ``"fake"`` / ``"inactive"`` / ``"genuine"``.

        Per the published flow, only accounts first marked *suspicious*
        are tested against the inactivity rules; accounts that are
        neither suspicious nor (suspicious and) inactive are genuine.
        """
        verdict = self.evaluate(user, timeline, now)
        if not verdict.is_fake:
            return "genuine"
        if self.is_inactive(user, now):
            return "inactive"
        return "fake"

    def explain(self, user: UserObject, timeline: Optional[Sequence[Tweet]],
                now: float):
        """Classify one account and name the fired rules (``sb.`` ids).

        Raw predicate firings: the inactivity rules report even on
        non-suspicious accounts (the published flow only *consults*
        them after suspicion; provenance records what held).
        """
        verdict = self.evaluate(user, timeline, now)
        fired = ["sb." + label for label in verdict.fired]
        if user.statuses_count < 3:
            fired.append("sb.under_3_tweets")
        age = user.last_status_age(now)
        if age is not None and age > 90 * DAY:
            fired.append("sb.stale_90d")
        if not verdict.is_fake:
            label = "genuine"
        elif self.is_inactive(user, now):
            label = "inactive"
        else:
            label = "fake"
        return label, tuple(fired)

    # -- the batch-criteria protocol -------------------------------------------

    def classify_all(self, users, timelines, now: float, sink=None):
        """Scalar classification of a whole sample, as a verdict array."""
        from ..analytics.criteria import scalar_classify  # deferred: cycle

        return scalar_classify(self, users, timelines, now, sink=sink)

    def classify_block(self, block, now: float, sink=None):
        """Columnar three-way classification over a sample block.

        The eight published criteria become weighted boolean masks;
        the one-pass timeline fraction columns replace the five
        per-rule timeline walks of the scalar path.  All weights are
        exact multiples of 0.25 and skipped rules contribute an exact
        ``0.0``, so the mask-weighted score equals the scalar
        ``sum(WEIGHTS[label] for label in fired)`` bit for bit — both
        paths then compare it against the same ``threshold`` constant.
        """
        from ..analytics.criteria import VerdictArray  # deferred: cycle

        np = block.np
        stats = block.timeline_stats()
        weights = self.WEIGHTS
        masks = {
            "ff_ratio_50": block.ff_ratio >= 50.0,
            "spam_phrases_30pct": stats.spam > 0.30,
            "repeated_tweets_3x": stats.duplicate > 0.0,
            "retweets_90pct": stats.nonempty & (stats.retweet > 0.90),
            "links_90pct": stats.nonempty & (stats.link > 0.90),
            "never_tweeted": block.statuses <= 0,
            "old_default_image":
                (block.age_at(now) > 60 * DAY) & block.default_image,
            "empty_profile_following_100":
                ~block.has_bio & ~block.has_location & (block.friends > 100),
        }
        score = (masks["ff_ratio_50"] * weights["ff_ratio_50"]
                 + masks["spam_phrases_30pct"] * weights["spam_phrases_30pct"]
                 + masks["repeated_tweets_3x"] * weights["repeated_tweets_3x"]
                 + masks["retweets_90pct"] * weights["retweets_90pct"]
                 + masks["links_90pct"] * weights["links_90pct"]
                 + masks["never_tweeted"] * weights["never_tweeted"]
                 + masks["old_default_image"] * weights["old_default_image"]
                 + masks["empty_profile_following_100"]
                 * weights["empty_profile_following_100"])
        suspicious = score >= self._threshold
        under_3 = block.statuses < 3
        stale = (~block.never_tweeted
                 & (block.last_status_age(now) > 90 * DAY))
        inactive = under_3 | stale
        if sink is not None:
            for label, mask in masks.items():
                sink.add("sb." + label, mask)
            sink.add("sb.under_3_tweets", under_3)
            sink.add("sb.stale_90d", stale)
        codes = np.where(~suspicious, 2,
                         np.where(inactive, 1, 0)).astype(np.int64)
        return VerdictArray(labels=self.labels, codes=codes)


class StateOfSearchSignals(RuleSet):
    """"How to recognize Twitterbots: 7 signals to look out for" [15].

    An account showing at least ``min_signals`` of the seven published
    bot signals is declared fake.
    """

    name = "stateofsearch"
    needs_timeline = True

    def __init__(self, min_signals: int = 4) -> None:
        if not 1 <= min_signals <= 7:
            raise ConfigurationError(
                f"min_signals must be in [1, 7]: {min_signals!r}")
        self._min_signals = min_signals

    def evaluate(self, user: UserObject, timeline: Optional[Sequence[Tweet]],
                 now: float) -> RuleVerdict:
        timeline = timeline or []
        fired: List[str] = []
        if (user.friends_followers_ratio() >= 10.0
                and user.followers_count < 50):
            fired.append("follows_many_few_followers")
        if user.default_profile_image:
            fired.append("default_image")
        if not user.has_bio():
            fired.append("no_bio")
        if _has_repeated_tweets(timeline, more_than=2):
            fired.append("repeated_tweets")
        if timeline and _link_fraction(timeline) > 0.60:
            fired.append("mostly_links")
        if user.age_at(now) < 60 * DAY and user.friends_count > 300:
            fired.append("young_mass_follower")
        if _mention_fraction(timeline) < 0.05:
            fired.append("never_interacts")
        return RuleVerdict(
            score=float(len(fired)),
            is_fake=len(fired) >= self._min_signals,
            fired=tuple(fired),
        )


#: All baselines, in the order [12] evaluated them.
BASELINE_RULESETS: Tuple[RuleSet, ...] = (
    CamisaniCalzolariRules(),
    SocialbakersCriteria(),
    StateOfSearchSignals(),
)
