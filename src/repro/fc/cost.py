"""Crawling-cost model and cost-aware classifier selection.

[12] quantifies each feature's *crawling cost* and builds "optimized
classifiers that make use of the more efficient features and rules, in
terms both of crawling cost and fake followers detection capability"
(paper, Section III).  The arithmetic is stark:

* class-A (profile) features: 100 accounts per ``users/lookup`` call at
  12 calls/min — 9604 sampled followers cost 97 requests (~8 minutes of
  budget, seconds of burst);
* class-B (timeline) features: 1 account per ``statuses/user_timeline``
  call at 12 calls/min — the same sample costs 9604 requests, over 13
  *hours* of budget.

This is why the FC engine's sub-4-minute response times in Table II are
only achievable with a class-A classifier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..api.ratelimit import DEFAULT_POLICIES, RateLimitPolicy
from ..core.errors import ConfigurationError
from .dataset import GoldStandard
from .features import CLASS_B, FeatureSet
from .metrics import ConfusionMatrix
from .training import TrainedDetector, evaluate_detector


@dataclass(frozen=True)
class CrawlCost:
    """API cost of feature extraction for a batch of accounts."""

    accounts: int
    lookup_requests: int
    timeline_requests: int
    seconds: float

    @property
    def total_requests(self) -> int:
        """Lookup plus timeline requests."""
        return self.lookup_requests + self.timeline_requests


def _phase_seconds(requests: int, policy: RateLimitPolicy, latency: float,
                   credentials: int = 1) -> float:
    """Completion time of serial requests against one fresh bucket."""
    if requests <= 0:
        return 0.0
    capacity = policy.window_budget * credentials
    rate = policy.requests_per_minute * credentials / 60.0
    return max(requests * latency,
               max(0.0, requests - capacity) / rate + latency)


def feature_crawl_cost(feature_set: FeatureSet, accounts: int,
                       *, latency: float = 1.9,
                       credentials: int = 1,
                       policies=DEFAULT_POLICIES) -> CrawlCost:
    """API cost of extracting ``feature_set`` for ``accounts`` accounts.

    Every set needs profiles (batched lookups); sets containing any
    class-B feature additionally need one timeline request per account.
    """
    if accounts < 0:
        raise ConfigurationError(f"accounts must be >= 0: {accounts!r}")
    lookup_policy = policies["users/lookup"]
    timeline_policy = policies["statuses/user_timeline"]
    lookups = math.ceil(accounts / lookup_policy.elements_per_request)
    timelines = accounts if feature_set.needs_timeline() else 0
    seconds = (_phase_seconds(lookups, lookup_policy, latency, credentials)
               + _phase_seconds(timelines, timeline_policy, latency, credentials))
    return CrawlCost(
        accounts=accounts,
        lookup_requests=lookups,
        timeline_requests=timelines,
        seconds=seconds,
    )


@dataclass(frozen=True)
class CandidateCost:
    """One detector's quality/cost trade-off point (the A4 ablation rows)."""

    name: str
    matrix: ConfusionMatrix
    cost: CrawlCost

    @property
    def mcc(self) -> float:
        """The candidate's detection quality (MCC)."""
        return self.matrix.mcc


def rank_by_cost(candidates: Sequence[TrainedDetector],
                 gold: GoldStandard,
                 accounts: int,
                 *,
                 latency: float = 1.9,
                 credentials: int = 1) -> List[CandidateCost]:
    """Score each candidate on ``gold`` and cost it for ``accounts``.

    Returns rows sorted by descending detection quality (MCC).
    """
    rows = []
    for detector in candidates:
        matrix = evaluate_detector(detector, gold)
        cost = feature_crawl_cost(
            detector.feature_set, accounts,
            latency=latency, credentials=credentials)
        rows.append(CandidateCost(detector.name, matrix, cost))
    return sorted(rows, key=lambda row: row.mcc, reverse=True)


def select_under_budget(candidates: Sequence[TrainedDetector],
                        gold: GoldStandard,
                        accounts: int,
                        budget_seconds: float,
                        *,
                        latency: float = 1.9,
                        credentials: int = 1) -> CandidateCost:
    """Best-MCC candidate whose crawl finishes within ``budget_seconds``.

    This is the "optimized classifier" selection of [12]: with a
    4-minute budget and 9604 accounts, only class-A candidates qualify,
    and the best of them becomes the production FC detector.
    """
    if budget_seconds <= 0:
        raise ConfigurationError(
            f"budget_seconds must be > 0: {budget_seconds!r}")
    ranked = rank_by_cost(
        candidates, gold, accounts, latency=latency, credentials=credentials)
    for row in ranked:
        if row.cost.seconds <= budget_seconds:
            return row
    raise ConfigurationError(
        f"no candidate fits a {budget_seconds:.0f}s budget for "
        f"{accounts} accounts")


def class_b_features_present(feature_set: FeatureSet) -> List[str]:
    """Names of the timeline-cost features in a set (for reporting)."""
    return [f.name for f in feature_set.features if f.cost_class == CLASS_B]
