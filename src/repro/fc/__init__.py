"""The Fake Project classifier: features, learners, baselines, engine."""

from .columnar import (
    BatchClassifier,
    FeatureCache,
    FlatForest,
    FlatTree,
    batch_classifier,
    extract_feature_matrix,
    numpy_available,
)
from .cost import (
    CandidateCost,
    CrawlCost,
    feature_crawl_cost,
    rank_by_cost,
    select_under_budget,
)
from .dataset import GoldExample, GoldStandard, build_gold_standard
from .engine import (
    FC_INACTIVITY_HORIZON,
    FC_SAMPLE_SIZE,
    FakeClassifierEngine,
    default_detector,
)
from .features import (
    CLASS_A,
    CLASS_B,
    FEATURES,
    FEATURES_BY_NAME,
    Feature,
    FeatureSet,
    FULL_FEATURE_SET,
    PROFILE_FEATURE_SET,
)
from .forest import RandomForest
from .metrics import ConfusionMatrix, confusion
from .optimizer import (
    GreedyFeatureSelector,
    SelectionStep,
    affordable_features,
    optimize_detector,
)
from .rulesets import (
    BASELINE_RULESETS,
    CamisaniCalzolariRules,
    RuleSet,
    RuleVerdict,
    SocialbakersCriteria,
    StateOfSearchSignals,
)
from .training import (
    TrainedDetector,
    TrainingReport,
    compare_approaches,
    cross_validate,
    evaluate_detector,
    evaluate_ruleset,
    train_and_evaluate,
    train_detector,
)
from .tree import DecisionTree

__all__ = [
    "BASELINE_RULESETS",
    "BatchClassifier",
    "CLASS_A",
    "CLASS_B",
    "CamisaniCalzolariRules",
    "CandidateCost",
    "ConfusionMatrix",
    "CrawlCost",
    "DecisionTree",
    "FC_INACTIVITY_HORIZON",
    "FC_SAMPLE_SIZE",
    "FEATURES",
    "FEATURES_BY_NAME",
    "FakeClassifierEngine",
    "Feature",
    "FeatureCache",
    "FeatureSet",
    "FlatForest",
    "FlatTree",
    "FULL_FEATURE_SET",
    "GoldExample",
    "GoldStandard",
    "GreedyFeatureSelector",
    "SelectionStep",
    "PROFILE_FEATURE_SET",
    "RandomForest",
    "RuleSet",
    "RuleVerdict",
    "SocialbakersCriteria",
    "StateOfSearchSignals",
    "TrainedDetector",
    "TrainingReport",
    "affordable_features",
    "batch_classifier",
    "build_gold_standard",
    "compare_approaches",
    "confusion",
    "cross_validate",
    "default_detector",
    "evaluate_detector",
    "evaluate_ruleset",
    "extract_feature_matrix",
    "feature_crawl_cost",
    "numpy_available",
    "optimize_detector",
    "rank_by_cost",
    "select_under_budget",
    "train_and_evaluate",
    "train_detector",
]
