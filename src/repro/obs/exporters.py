"""Exporters: JSON-lines traces, Prometheus text, console summaries.

All three renderings are pure functions of the observability state and
are deterministic: series iterate in sorted order, JSON keys are
sorted, and numbers are formatted with ``repr``-stable rules — so a
fixed seed yields byte-identical artifacts, which makes trace/metrics
dumps usable as regression fixtures under ``benchmarks/``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterator, List, Tuple

from ..core.errors import ConfigurationError
from .metrics import Counter, Gauge, Histogram
from .trace import Span


def _num(value: float) -> str:
    """Render a number the Prometheus way, stably across runs."""
    if isinstance(value, bool):  # bools are ints; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape(value: str) -> str:
    """Escape a label value per the Prometheus exposition format."""
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _labels_text(labels: Tuple[Tuple[str, str], ...],
                 extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    body = ",".join(f'{key}="{_escape(value)}"' for key, value in pairs)
    return "{" + body + "}"


# ---------------------------------------------------------------------------
# Traces → JSON lines
# ---------------------------------------------------------------------------

def span_to_dict(span: Span) -> Dict[str, object]:
    """The JSON shape of one span."""
    return {
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "start": span.start,
        "end": span.end,
        "duration": span.duration,
        "attributes": dict(span.attributes),
    }


def iter_trace_jsonl(tracer) -> Iterator[str]:
    """Yield the JSONL trace dump one ``\\n``-terminated line at a time.

    The incremental form: consumers (file writers, sockets) stream spans
    without the exporter ever materialising the whole document.
    """
    for span in tracer.spans():
        yield json.dumps(span_to_dict(span), sort_keys=True,
                         separators=(",", ":"), default=str) + "\n"


def trace_to_jsonl(tracer) -> str:
    """Render every recorded span as one JSON object per line."""
    return "".join(iter_trace_jsonl(tracer))


def write_trace_jsonl(tracer, path) -> "pathlib.Path":
    """Stream the JSONL trace dump to ``path`` and return it.

    Spans are written line by line as they are serialised — a long
    run's trace never exists in memory as one string.
    """
    target = pathlib.Path(path)
    with target.open("w", encoding="utf-8") as handle:
        for line in iter_trace_jsonl(tracer):
            handle.write(line)
    return target


def load_trace_jsonl(path, *, tolerate_truncation: bool = True
                     ) -> Tuple[List[Dict[str, object]], bool]:
    """Load a JSONL trace dump, tolerating a truncated final line.

    A trace file copied out of a *running* experiment usually ends in a
    partial line (the writer was mid-record).  With
    ``tolerate_truncation`` (the default) a final line that fails to
    parse is dropped and reported via the returned flag; malformed
    lines anywhere *else* still raise — those indicate corruption, not
    an in-flight write.

    Returns ``(spans, truncated)`` where ``spans`` is a list of span
    dicts (the :func:`span_to_dict` shape) and ``truncated`` says
    whether a partial final line was dropped.
    """
    target = pathlib.Path(path)
    spans: List[Dict[str, object]] = []
    truncated = False
    with target.open("r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            spans.append(json.loads(line))
        except json.JSONDecodeError as error:
            if tolerate_truncation and number == len(lines):
                truncated = True
                break
            raise ConfigurationError(
                f"{target}:{number}: malformed trace line: {error}")
    return spans, truncated


# ---------------------------------------------------------------------------
# Metrics → Prometheus text exposition
# ---------------------------------------------------------------------------

def prometheus_text(obs) -> str:
    """Render the registry (plus call-log aggregates) as Prometheus text.

    The per-resource API aggregates come from
    :meth:`repro.api.endpoints.CallLog.summary` via
    :meth:`~repro.obs.runtime.Observability.call_log_summary`, so the
    exposition stays authoritative even for code paths that only log
    calls without touching the registry.
    """
    out: List[str] = []
    for name, kind, help_text in obs.registry.families():
        if help_text:
            out.append(f"# HELP {name} {help_text}")
        out.append(f"# TYPE {name} {kind}")
        for series_name, series_kind, labels, instrument in obs.registry.series():
            if series_name != name:
                continue
            if isinstance(instrument, (Counter, Gauge)):
                out.append(
                    f"{name}{_labels_text(labels)} {_num(instrument.value)}")
            elif isinstance(instrument, Histogram):
                edges = [_num(edge) for edge in instrument.buckets] + ["+Inf"]
                cumulative_counts = instrument.cumulative_counts()
                if len(cumulative_counts) != len(edges) \
                        or cumulative_counts[-1] != instrument.count:
                    raise ConfigurationError(
                        f"histogram {name!r}{_labels_text(labels)} lost "
                        f"observations: +Inf cumulative "
                        f"{cumulative_counts[-1] if cumulative_counts else 0}"
                        f" != count {instrument.count}")
                for edge, cumulative in zip(edges, cumulative_counts):
                    out.append(
                        f"{name}_bucket"
                        f"{_labels_text(labels, (('le', edge),))} "
                        f"{cumulative}")
                out.append(
                    f"{name}_sum{_labels_text(labels)} {_num(instrument.sum)}")
                out.append(
                    f"{name}_count{_labels_text(labels)} {instrument.count}")
    summary = obs.call_log_summary()
    if summary:
        calllog_series = (
            ("api_calllog_calls", "counter",
             "API requests per resource, from CallLog.summary()", "calls"),
            ("api_calllog_items", "counter",
             "elements returned per resource", "items"),
            ("api_calllog_waited_seconds", "counter",
             "rate-limit wait per resource", "waited"),
            ("api_calllog_latency_seconds", "counter",
             "total request wall time per resource", "total_latency"),
        )
        # The failures series appears only once a failure was logged,
        # so fault-free expositions stay byte-identical to pre-fault
        # builds (the golden-file contract).
        if any(stats.get("failures") for stats in summary.values()):
            calllog_series += (
                ("api_calllog_failures", "counter",
                 "failed request attempts per resource", "failures"),
            )
        for name, kind, help_text, field in calllog_series:
            out.append(f"# HELP {name} {help_text}")
            out.append(f"# TYPE {name} {kind}")
            for resource, stats in summary.items():
                out.append(
                    f"{name}{{resource=\"{_escape(resource)}\"}} "
                    f"{_num(stats.get(field, 0))}")
    return "\n".join(out) + ("\n" if out else "")


def write_metrics_prom(obs, path) -> "pathlib.Path":
    """Write the Prometheus exposition to ``path`` and return it."""
    target = pathlib.Path(path)
    target.write_text(prometheus_text(obs), encoding="utf-8")
    return target


# ---------------------------------------------------------------------------
# Console summary
# ---------------------------------------------------------------------------

def _table(headers: Tuple[str, ...], rows: List[Tuple[str, ...]]) -> List[str]:
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(cells: Tuple[str, ...]) -> str:
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()
    lines = [fmt(headers), fmt(tuple("-" * width for width in widths))]
    lines.extend(fmt(row) for row in rows)
    return lines


def console_summary(obs) -> str:
    """A human-readable digest: spans by name, API usage by resource."""
    spans = obs.tracer.spans()
    by_name: Dict[str, List[float]] = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span.duration)
    span_rows = [
        (name, str(len(durations)), f"{sum(durations):.1f}",
         f"{max(durations):.1f}")
        for name, durations in sorted(by_name.items())
    ]
    parts: List[str] = ["observability summary", "====================="]
    if span_rows:
        parts.append("")
        parts.extend(_table(("span", "count", "total s", "max s"), span_rows))
    summary = obs.call_log_summary()
    if summary:
        api_rows = [
            (resource,
             str(int(stats["calls"])),
             str(int(stats["items"])),
             f"{stats['waited']:.1f}",
             f"{stats['total_latency']:.1f}")
            for resource, stats in summary.items()
        ]
        parts.append("")
        parts.extend(_table(
            ("API resource", "calls", "items", "waited s", "latency s"),
            api_rows))
    infos = obs.cache_info() if hasattr(obs, "cache_info") else []
    if infos:
        cache_rows = [
            (info.name, str(info.hits), str(info.misses),
             str(info.evictions), str(info.size))
            for info in infos
        ]
        parts.append("")
        parts.extend(_table(
            ("cache", "hits", "misses", "evicted", "size"), cache_rows))
    engine_rows = _engine_rows(obs)
    if engine_rows:
        parts.append("")
        parts.extend(_table(
            ("engine", "criteria", "frame", "verdicts"), engine_rows))
    parts.append("")
    parts.append(stats_line(obs))
    return "\n".join(parts)


def _verdict_tallies(obs) -> Dict[str, Dict[str, int]]:
    """Per-engine verdict counts from the ``verdicts_total`` family."""
    tallies: Dict[str, Dict[str, int]] = {}
    for name, _kind, labels, instrument in obs.registry.series():
        if name != "verdicts_total":
            continue
        pairs = dict(labels)
        engine = pairs.get("engine", "")
        verdict = pairs.get("verdict", "")
        tallies.setdefault(engine, {})[verdict] = int(instrument.value)
    return tallies


def _engine_rows(obs) -> List[Tuple[str, ...]]:
    """One summary row per registered engine *kind*, with verdicts.

    Schedulers construct one engine instance per lane slot; rows
    dedupe by name (the first registered instance's metadata wins —
    slots of one lane are configured identically).
    """
    engines = getattr(obs, "engines", [])
    if not engines:
        return []
    tallies = _verdict_tallies(obs)
    seen: Dict[str, object] = {}
    for engine in engines:
        name = getattr(engine, "name", "")
        if name not in seen:
            seen[name] = engine
    rows: List[Tuple[str, ...]] = []
    for name in sorted(seen):
        info = seen[name].info()
        verdicts = tallies.get(name, {})
        breakdown = " ".join(f"{label}={count}"
                             for label, count in sorted(verdicts.items()))
        rows.append((name, info.criteria_id, info.frame_policy,
                     breakdown or "-"))
    return rows


def _family_total(obs, name: str) -> float:
    """Sum one metric family across all its label sets (0.0 if absent).

    Histograms contribute their ``sum``; counters and gauges their
    ``value`` — the natural "total" of each instrument kind.
    """
    total = 0.0
    for series_name, _kind, _labels, instrument in obs.registry.series():
        if series_name != name:
            continue
        if isinstance(instrument, Histogram):
            total += instrument.sum
        else:
            total += instrument.value  # type: ignore[union-attr]
    return total


def _has_family(obs, name: str) -> bool:
    return any(family == name for family, _kind, _help in
               obs.registry.families())


def stats_line(obs) -> str:
    """The one-line ``repro stats`` digest printed after a run.

    The scheduler, fault and cache segments appear only when their
    metric families (or registered caches) exist, so runs that never
    touched `repro.sched`, `repro.faults` or a cache keep the original
    (golden-tested) line verbatim.
    """
    spans = obs.tracer.spans()
    summary = obs.call_log_summary()
    calls = int(sum(stats["calls"] for stats in summary.values()))
    items = int(sum(stats["items"] for stats in summary.values()))
    waited = sum(stats["waited"] for stats in summary.values())
    line = (f"repro stats: {len(spans)} spans "
            f"({len(obs.tracer.span_names())} names), "
            f"{obs.registry.series_count()} metric series, "
            f"{calls} API calls, {items} items, "
            f"{waited:.0f}s rate-limit wait")
    if _has_family(obs, "sched_requests_total"):
        executed = int(_family_total(obs, "sched_requests_total"))
        coalesced = int(_family_total(obs, "sched_coalesced_hits_total"))
        line += f", {executed} sched audits ({coalesced} coalesced)"
    if _has_family(obs, "faults_injected_total") \
            or _has_family(obs, "api_retries_total"):
        faults = int(_family_total(obs, "faults_injected_total"))
        retries = int(_family_total(obs, "api_retries_total"))
        backoff = _family_total(obs, "api_backoff_wait_seconds")
        line += (f", {faults} faults injected, {retries} retries "
                 f"({backoff:.0f}s backoff)")
    infos = obs.cache_info() if hasattr(obs, "cache_info") else []
    if infos:
        hits = sum(info.hits for info in infos)
        lookups = hits + sum(info.misses for info in infos)
        evicted = sum(info.evictions for info in infos)
        line += (f", {len(infos)} caches ({hits}/{lookups} hits, "
                 f"{evicted} evicted)")
    if _has_family(obs, "verdicts_total"):
        tallies = _verdict_tallies(obs)
        total = sum(sum(counts.values()) for counts in tallies.values())
        fake = sum(counts.get("fake", 0) for counts in tallies.values())
        line += (f", {total} verdicts across {len(tallies)} engines "
                 f"({fake} fake)")
    if _has_family(obs, "rule_fired_total"):
        fires = int(_family_total(obs, "rule_fired_total"))
        rules = sum(1 for name, _k, _l, _i in obs.registry.series()
                    if name == "rule_fired_total")
        line += f", {fires} rule fires ({rules} rules)"
    return line
