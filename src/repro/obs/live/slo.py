"""SLO specifications, error-budget burn rates, and the alert log.

A service-level objective here is a *good-events over total-events*
ratio target evaluated on window streams (``audit success >= 99 %``,
``poll success >= 99 %``, ``cache hit ratio >= 80 %``).  Alerting uses
the standard dual-window burn-rate recipe: the burn rate is the
observed bad-event ratio divided by the error budget ``1 - objective``
(burn 1.0 = spending the budget exactly on schedule), and an alert
fires only when **both** a fast window (catches the spike quickly) and
a slow window (confirms it is sustained) burn above the threshold —
the fast window alone would page on noise, the slow window alone would
page late.

Everything is driven by simulated time and the deterministic window
streams, so a replayed run produces a byte-identical
:class:`AlertLog`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ...core.errors import ConfigurationError
from .windows import WindowStream

#: Decimal places alert detail floats are rounded to before export —
#: the same canonicalisation discipline as ``repro.obs.perf``.
_ROUND = 6


def _round_value(value: object) -> object:
    """Round floats for stable JSON; leave other scalars alone."""
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return round(value, _ROUND)
    return value


@dataclass(frozen=True)
class AlertEvent:
    """One fire or resolve transition, stamped with simulated time."""

    time: float
    name: str
    kind: str  # "fire" | "resolve"
    severity: str
    details: Tuple[Tuple[str, object], ...] = ()

    def to_dict(self) -> Dict[str, object]:
        """The canonical JSON shape of the event (floats rounded)."""
        return {
            "time": _round_value(float(self.time)),
            "name": self.name,
            "kind": self.kind,
            "severity": self.severity,
            "details": {key: _round_value(value)
                        for key, value in self.details},
        }


class AlertLog:
    """Ordered record of alert fire/resolve events.

    The log is append-only and tracks the active set, so a dashboard
    can render "what is paging right now" while the JSONL export stays
    a faithful, replayable history.
    """

    def __init__(self) -> None:
        self._events: List[AlertEvent] = []
        self._active: Dict[str, AlertEvent] = {}

    def fire(self, time: float, name: str, severity: str = "page",
             **details: object) -> Optional[AlertEvent]:
        """Record a fire transition; no-op if ``name`` is already active."""
        if name in self._active:
            return None
        event = AlertEvent(time=float(time), name=name, kind="fire",
                           severity=severity,
                           details=tuple(sorted(details.items())))
        self._events.append(event)
        self._active[name] = event
        return event

    def resolve(self, time: float, name: str,
                **details: object) -> Optional[AlertEvent]:
        """Record a resolve transition; no-op if ``name`` is not active."""
        fired = self._active.pop(name, None)
        if fired is None:
            return None
        event = AlertEvent(time=float(time), name=name, kind="resolve",
                           severity=fired.severity,
                           details=tuple(sorted(details.items())))
        self._events.append(event)
        return event

    @property
    def events(self) -> Tuple[AlertEvent, ...]:
        """Every transition recorded so far, in order."""
        return tuple(self._events)

    def active(self) -> Tuple[str, ...]:
        """Names of currently firing alerts, sorted."""
        return tuple(sorted(self._active))

    def is_active(self, name: str) -> bool:
        """Whether ``name`` is currently firing."""
        return name in self._active

    def counts(self) -> Tuple[int, int]:
        """``(fired, resolved)`` totals over the log's lifetime."""
        fired = sum(1 for event in self._events if event.kind == "fire")
        return fired, len(self._events) - fired

    def to_jsonl(self) -> str:
        """The log as deterministic JSON lines (sorted keys)."""
        return "".join(
            json.dumps(event.to_dict(), sort_keys=True,
                       separators=(",", ":")) + "\n"
            for event in self._events)

    def write(self, path) -> None:
        """Write :meth:`to_jsonl` to ``path``."""
        import pathlib
        pathlib.Path(path).write_text(self.to_jsonl(), encoding="utf-8")


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective over a pair of window streams.

    ``good_stream``/``total_stream`` name :class:`WindowStream`\\ s
    whose pane sums count good and total events; ``objective`` is the
    target good/total ratio.  ``fast_horizon``/``slow_horizon`` are the
    dual burn-rate windows (seconds) and ``burn_threshold`` the rate at
    which both must burn to page.  ``min_events`` suppresses evaluation
    until the fast window holds enough total events to be meaningful.
    """

    name: str
    good_stream: str
    total_stream: str
    objective: float
    fast_horizon: float
    slow_horizon: float
    burn_threshold: float = 6.0
    min_events: int = 1
    severity: str = "page"

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ConfigurationError(
                f"objective must be in (0, 1): {self.objective!r}")
        if self.fast_horizon <= 0 or self.slow_horizon < self.fast_horizon:
            raise ConfigurationError(
                "need 0 < fast_horizon <= slow_horizon: "
                f"{self.fast_horizon!r}, {self.slow_horizon!r}")
        if self.burn_threshold <= 0:
            raise ConfigurationError(
                f"burn_threshold must be > 0: {self.burn_threshold!r}")
        if self.min_events < 1:
            raise ConfigurationError(
                f"min_events must be >= 1: {self.min_events!r}")

    @property
    def error_budget(self) -> float:
        """The tolerated bad-event ratio, ``1 - objective``."""
        return 1.0 - self.objective


@dataclass
class SloStatus:
    """The last evaluation of one SLO (what the dashboard shows)."""

    spec: SloSpec
    fast_burn: float = 0.0
    slow_burn: float = 0.0
    fast_ratio: float = 1.0
    events: int = 0
    firing: bool = False


class SloEvaluator:
    """Evaluates a set of :class:`SloSpec` rules against streams.

    On every clock tick the evaluator computes each rule's fast and
    slow burn rates from the streams' trailing aggregates and records
    fire/resolve transitions in the shared :class:`AlertLog`.
    """

    def __init__(self, alerts: AlertLog) -> None:
        self._alerts = alerts
        self._rules: List[SloStatus] = []
        self._names: Dict[str, SloStatus] = {}

    def add(self, spec: SloSpec) -> SloStatus:
        """Register one objective; returns its live status record."""
        if spec.name in self._names:
            raise ConfigurationError(f"duplicate SLO name: {spec.name!r}")
        status = SloStatus(spec=spec)
        self._rules.append(status)
        self._names[spec.name] = status
        return status

    def statuses(self) -> Tuple[SloStatus, ...]:
        """Every registered rule's latest status, in registration order."""
        return tuple(self._rules)

    @staticmethod
    def _burn(good: float, total: float, budget: float) -> Tuple[float, float]:
        """``(burn_rate, good_ratio)`` of one window."""
        if total <= 0:
            return 0.0, 1.0
        ratio = good / total
        bad = max(0.0, 1.0 - ratio)
        return bad / budget, ratio

    def evaluate(self, now: float,
                 streams: Mapping[str, WindowStream]) -> None:
        """Re-evaluate every rule at instant ``now``."""
        for status in self._rules:
            spec = status.spec
            good = streams.get(spec.good_stream)
            total = streams.get(spec.total_stream)
            if good is None or total is None:
                raise ConfigurationError(
                    f"SLO {spec.name!r} references unknown streams "
                    f"{spec.good_stream!r}/{spec.total_stream!r}")
            fast_total = total.trailing(now, spec.fast_horizon)
            slow_total = total.trailing(now, spec.slow_horizon)
            fast_good = good.trailing(now, spec.fast_horizon)
            slow_good = good.trailing(now, spec.slow_horizon)
            status.events = int(fast_total.sum)
            if fast_total.sum < spec.min_events:
                status.fast_burn, status.fast_ratio = 0.0, 1.0
                status.slow_burn = 0.0
            else:
                status.fast_burn, status.fast_ratio = self._burn(
                    fast_good.sum, fast_total.sum, spec.error_budget)
                status.slow_burn, __ = self._burn(
                    slow_good.sum, slow_total.sum, spec.error_budget)
            should_fire = (status.fast_burn >= spec.burn_threshold
                           and status.slow_burn >= spec.burn_threshold)
            if should_fire and not status.firing:
                status.firing = True
                self._alerts.fire(
                    now, f"slo:{spec.name}", severity=spec.severity,
                    fast_burn=status.fast_burn, slow_burn=status.slow_burn,
                    objective=spec.objective)
            elif status.firing and not should_fire:
                status.firing = False
                self._alerts.resolve(
                    now, f"slo:{spec.name}",
                    fast_burn=status.fast_burn, slow_burn=status.slow_burn)
