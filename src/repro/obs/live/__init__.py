"""Streaming telemetry on the sim clock: windows, SLOs, dashboards.

The live counterpart to the post-hoc exporters: deterministic windowed
metric streams (:mod:`.windows`), dual-window error-budget burn-rate
alerting (:mod:`.slo`), a burst-detector bridge (:mod:`.bridge`), and
the fleet health dashboard (:mod:`.dashboard`) — all coordinated by
one :class:`~repro.obs.live.telemetry.LiveTelemetry` plane attached to
the active observability context.  See ``docs/observability.md``.
"""

from .bridge import DetectorBridge
from .dashboard import FleetDashboard, snapshot_to_json
from .slo import AlertEvent, AlertLog, SloEvaluator, SloSpec, SloStatus
from .telemetry import LiveTelemetry
from .windows import (
    CounterRateStream,
    GaugeStream,
    WindowAggregate,
    WindowPoint,
    WindowSpec,
    WindowStream,
)

__all__ = [
    "AlertEvent",
    "AlertLog",
    "CounterRateStream",
    "DetectorBridge",
    "FleetDashboard",
    "GaugeStream",
    "LiveTelemetry",
    "SloEvaluator",
    "SloSpec",
    "SloStatus",
    "WindowAggregate",
    "WindowPoint",
    "WindowSpec",
    "WindowStream",
    "snapshot_to_json",
]
