"""Windowed metric streams on the simulated clock.

The post-hoc exporters in :mod:`repro.obs.exporters` answer "what
happened over the whole run"; a monitor needs "what is happening *right
now*".  This module provides the streaming half: tumbling windows
(panes) with deterministic boundaries derived purely from the
:class:`~repro.core.clock.SimClock` timeline, incremental aggregation,
and bounded memory.  Sliding-window questions ("error ratio over the
last three days") are answered by aggregating the trailing run of
panes, so one pane ring serves every horizon.

Determinism contract: pane ``k`` of a :class:`WindowSpec` covers
``[origin + k*width, origin + (k+1)*width)`` — boundaries depend only
on the spec, never on when observations happen to arrive.  Two replays
that feed the same ``(time, value)`` sequence produce byte-identical
:class:`WindowPoint` sequences.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional, Tuple

from ...core.errors import ConfigurationError

#: Upper bound on closed panes a stream may retain.
MAX_RETAIN = 4096


@dataclass(frozen=True)
class WindowSpec:
    """Deterministic tumbling-window geometry.

    ``width`` is the pane width in simulated seconds; ``origin`` anchors
    pane 0's left edge (pane boundaries are ``origin + k*width``);
    ``retain`` bounds how many *closed* panes a stream keeps — memory is
    O(retain) no matter how long the run is.
    """

    width: float
    origin: float = 0.0
    retain: int = 256

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ConfigurationError(f"width must be > 0: {self.width!r}")
        if not 1 <= self.retain <= MAX_RETAIN:
            raise ConfigurationError(
                f"retain must be in [1, {MAX_RETAIN}]: {self.retain!r}")

    def index_of(self, t: float) -> int:
        """The pane index whose window contains instant ``t``."""
        return int(math.floor((t - self.origin) / self.width))

    def bounds(self, index: int) -> Tuple[float, float]:
        """The ``[start, end)`` window of pane ``index``."""
        start = self.origin + index * self.width
        return start, start + self.width


@dataclass(frozen=True)
class WindowPoint:
    """One closed (or in-flight) pane's aggregate.

    ``count``/``sum``/``min``/``max``/``last`` summarise the values the
    pane absorbed; an empty pane has ``count == 0`` and ``None`` for
    the extrema.
    """

    index: int
    start: float
    end: float
    count: int
    sum: float
    min: Optional[float]
    max: Optional[float]
    last: Optional[float]

    @property
    def mean(self) -> float:
        """Mean value of the pane (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0


@dataclass(frozen=True)
class WindowAggregate:
    """Aggregate of a trailing run of panes (a sliding-window answer)."""

    start: float
    end: float
    panes: int
    count: int
    sum: float
    min: Optional[float]
    max: Optional[float]
    last: Optional[float]

    @property
    def mean(self) -> float:
        """Mean over every value in the horizon (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0


class _PaneAccumulator:
    """Mutable running aggregate of the currently open pane."""

    __slots__ = ("index", "count", "sum", "min", "max", "last")

    def __init__(self, index: int) -> None:
        self.index = index
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.last: Optional[float] = None

    def add(self, value: float) -> None:
        """Fold one observation into the pane."""
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.last = value

    def freeze(self, spec: WindowSpec) -> WindowPoint:
        """The immutable snapshot of this pane."""
        start, end = spec.bounds(self.index)
        return WindowPoint(index=self.index, start=start, end=end,
                           count=self.count, sum=self.sum,
                           min=self.min, max=self.max, last=self.last)


class WindowStream:
    """A named stream of values aggregated into tumbling panes.

    Feed it with :meth:`observe`; panes close as simulated time crosses
    their right edge (empty panes are skipped entirely, so a sparse
    stream stays cheap).  Observations are clamped forward onto the
    open pane when their timestamp falls in an already-closed pane —
    interleaved schedules (the batch scheduler's per-slot clocks) are
    not monotone, and silently re-opening history would break the
    bounded-memory and determinism contracts.
    """

    def __init__(self, name: str, spec: WindowSpec) -> None:
        if not name:
            raise ConfigurationError("a window stream needs a name")
        self.name = name
        self.spec = spec
        self._closed: Deque[WindowPoint] = deque(maxlen=spec.retain)
        self._open: Optional[_PaneAccumulator] = None
        self._total_count = 0
        self._total_sum = 0.0

    # -- feeding ------------------------------------------------------------

    def observe(self, t: float, value: float) -> None:
        """Record ``value`` at simulated instant ``t``."""
        index = self.spec.index_of(t)
        pane = self._roll_to(index)
        pane.add(float(value))
        self._total_count += 1
        self._total_sum += float(value)

    def close_until(self, t: float) -> None:
        """Close every pane that ends at or before instant ``t``.

        Called on clock ticks so trailing queries see up-to-date pane
        boundaries even when no values arrived recently.
        """
        index = self.spec.index_of(t)
        if self._open is not None and self._open.index < index:
            self._closed.append(self._open.freeze(self.spec))
            self._open = None

    def _roll_to(self, index: int) -> _PaneAccumulator:
        if self._open is None:
            self._open = _PaneAccumulator(index)
        elif index > self._open.index:
            self._closed.append(self._open.freeze(self.spec))
            self._open = _PaneAccumulator(index)
        # index <= open.index: clamp into the open pane (see class doc).
        return self._open

    # -- queries ------------------------------------------------------------

    @property
    def total_count(self) -> int:
        """Observations absorbed over the stream's whole lifetime."""
        return self._total_count

    @property
    def total_sum(self) -> float:
        """Sum of every value absorbed over the stream's lifetime."""
        return self._total_sum

    def points(self) -> Tuple[WindowPoint, ...]:
        """Closed panes (oldest first) plus the open pane, if any."""
        out = tuple(self._closed)
        if self._open is not None:
            out += (self._open.freeze(self.spec),)
        return out

    def latest(self) -> Optional[WindowPoint]:
        """The most recent pane holding data, or ``None``."""
        points = self.points()
        return points[-1] if points else None

    def trailing(self, now: float, horizon: float) -> WindowAggregate:
        """Aggregate every pane overlapping ``(now - horizon, now]``.

        The sliding-window query: sums/counts over the trailing run of
        panes whose window ends after the cutoff.  Panes older than the
        retention ring contribute nothing (documented memory bound).
        """
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be > 0: {horizon!r}")
        cutoff = now - horizon
        count = 0
        total = 0.0
        low: Optional[float] = None
        high: Optional[float] = None
        last: Optional[float] = None
        for point in self.points():
            if point.end <= cutoff:
                continue
            count += point.count
            total += point.sum
            if point.min is not None:
                low = point.min if low is None else min(low, point.min)
            if point.max is not None:
                high = point.max if high is None else max(high, point.max)
            if point.last is not None:
                last = point.last
        return WindowAggregate(start=cutoff, end=now, panes=len(self.points()),
                               count=count, sum=total,
                               min=low, max=high, last=last)


class GaugeStream(WindowStream):
    """A window stream fed by sampling a level on every tick.

    ``probe`` returns the current level (queue depth, follower count,
    tokens left); :meth:`sample` records it into the pane containing
    the tick instant.
    """

    def __init__(self, name: str, spec: WindowSpec,
                 probe: Callable[[], float]) -> None:
        super().__init__(name, spec)
        self._probe = probe

    def sample(self, t: float) -> None:
        """Sample the probe at instant ``t``."""
        self.observe(t, float(self._probe()))


class CounterRateStream(WindowStream):
    """A window stream of *deltas* of a cumulative counter.

    ``probe`` returns a monotone cumulative total (e.g. a registry
    counter's value); each :meth:`sample` attributes the increase since
    the previous sample to the pane containing the tick instant, so a
    pane's ``sum`` is the event count landing in that window.
    """

    def __init__(self, name: str, spec: WindowSpec,
                 probe: Callable[[], float]) -> None:
        super().__init__(name, spec)
        self._probe = probe
        self._last_total: Optional[float] = None

    def sample(self, t: float) -> None:
        """Sample the cumulative probe and record the delta at ``t``."""
        total = float(self._probe())
        previous = self._last_total
        self._last_total = total
        if previous is None:
            # First sample establishes the baseline; rates start at the
            # second tick, as with any counter scrape.
            self.close_until(t)
            return
        delta = total - previous
        if delta < 0:
            raise ConfigurationError(
                f"counter stream {self.name!r} went backwards: "
                f"{previous!r} -> {total!r}")
        if delta > 0:
            self.observe(t, delta)
        else:
            self.close_until(t)
