"""The fleet health dashboard: incremental ASCII frames + JSONL snapshots.

A dashboard is a *view* over one :class:`~repro.obs.live.telemetry.
LiveTelemetry` plane: each :meth:`FleetDashboard.snapshot` captures the
selected streams' trailing aggregates, every SLO's burn status, and the
active alert set into one canonical dict (floats rounded, keys sorted
on export) — so two deterministic runs produce byte-identical snapshot
files, which is what lets the CI smoke job diff them as goldens.

The ASCII renderer turns a snapshot into a compact console frame; the
JSONL exporter appends one snapshot per line.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ...core.timeutil import isoformat
from .telemetry import LiveTelemetry

#: Decimal places snapshot floats are rounded to (canonical export).
_ROUND = 6


def _canonical(value):
    """Recursively round floats so snapshots serialise byte-stably."""
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return round(value, _ROUND)
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    return value


def snapshot_to_json(snapshot: Mapping[str, object]) -> str:
    """One snapshot as a canonical single-line JSON document."""
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":"))


class FleetDashboard:
    """Renders and exports the health of a monitored fleet.

    Parameters
    ----------
    live:
        The telemetry plane to read.
    panels:
        Stream names to include in snapshots, in display order.  When
        omitted every registered stream is shown — fleet runs that must
        stay byte-identical across scheduling modes pass an explicit,
        mode-invariant panel list instead.
    horizon:
        Trailing window (seconds) the per-stream panel aggregates
        cover.
    title:
        Frame heading.
    """

    def __init__(self, live: LiveTelemetry, *,
                 panels: Optional[Sequence[str]] = None,
                 horizon: float = 86400.0,
                 title: str = "fleet health") -> None:
        self._live = live
        self._panels = tuple(panels) if panels is not None else None
        self._horizon = horizon
        self._title = title
        self._frames = 0

    @property
    def frames(self) -> int:
        """Snapshots taken so far."""
        return self._frames

    def _panel_streams(self) -> List[Tuple[str, object]]:
        streams = self._live.streams()
        if self._live.bridge is not None:
            streams.update((s.name, s)
                           for s in self._live.bridge.streams().values())
        if self._panels is None:
            return sorted(streams.items())
        return [(name, streams[name]) for name in self._panels
                if name in streams]

    def snapshot(self, now: float,
                 fleet: Optional[Mapping[str, object]] = None
                 ) -> Dict[str, object]:
        """Capture one canonical dashboard snapshot at instant ``now``.

        ``fleet`` is workload-supplied state (per-handle counters,
        audit verdicts) merged in under the ``"fleet"`` key.
        """
        self._frames += 1
        streams: Dict[str, object] = {}
        for name, stream in self._panel_streams():
            window = stream.trailing(now, self._horizon)
            streams[name] = {
                "count": window.count,
                "sum": window.sum,
                "last": window.last,
                "total": stream.total_sum,
            }
        slos = [{
            "name": status.spec.name,
            "fast_burn": status.fast_burn,
            "slow_burn": status.slow_burn,
            "fast_ratio": status.fast_ratio,
            "firing": status.firing,
        } for status in self._live.slos.statuses()]
        fired, resolved = self._live.alerts.counts()
        snapshot: Dict[str, object] = {
            "frame": self._frames,
            "time": now,
            "iso": isoformat(now),
            "streams": streams,
            "slos": slos,
            "alerts": {
                "active": list(self._live.alerts.active()),
                "fired": fired,
                "resolved": resolved,
            },
        }
        if fleet is not None:
            snapshot["fleet"] = dict(fleet)
        return _canonical(snapshot)  # type: ignore[return-value]

    # -- rendering ----------------------------------------------------------

    def render(self, snapshot: Mapping[str, object]) -> str:
        """One ASCII console frame of a snapshot."""
        lines = [f"=== {self._title} · frame {snapshot['frame']} "
                 f"· {snapshot['iso']} ==="]
        slos = snapshot.get("slos") or []
        for slo in slos:
            flag = "FIRING" if slo["firing"] else "ok"
            lines.append(
                f"  slo {slo['name']:<24} burn fast {slo['fast_burn']:6.2f} "
                f"slow {slo['slow_burn']:6.2f}  ratio {slo['fast_ratio']:.4f} "
                f" [{flag}]")
        alerts = snapshot.get("alerts") or {}
        active = alerts.get("active") or []
        lines.append(
            f"  alerts: {len(active)} active "
            f"({alerts.get('fired', 0)} fired / "
            f"{alerts.get('resolved', 0)} resolved)"
            + (": " + ", ".join(active) if active else ""))
        for name, panel in (snapshot.get("streams") or {}).items():
            last = panel.get("last")
            last_text = "-" if last is None else f"{last:g}"
            lines.append(
                f"  {name:<28} window n={panel['count']:<5} "
                f"sum={panel['sum']:<10g} last={last_text:<8} "
                f"total={panel['total']:g}")
        fleet = snapshot.get("fleet")
        if fleet:
            for key in sorted(fleet):
                lines.append(f"  fleet.{key}: {self._fleet_cell(fleet[key])}")
        return "\n".join(lines)

    @staticmethod
    def _fleet_cell(value: object) -> str:
        """Render one workload-supplied value compactly."""
        if isinstance(value, dict):
            return ", ".join(f"{key}={value[key]}" for key in sorted(value))
        return str(value)

    def write_snapshot(self, handle, snapshot: Mapping[str, object]) -> None:
        """Append one snapshot as a JSON line to an open file handle."""
        handle.write(snapshot_to_json(snapshot) + "\n")
