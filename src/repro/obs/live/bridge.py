"""Detector bridge: follower-count streams into burst alerts.

The :class:`~repro.growth.detector.BurstDetector` was built for
post-campaign analysis (hand it a finished series, read the verdict).
A live monitor wants the same robust statistics evaluated *as each
daily reading lands*, with findings surfacing through the same alert
pipeline as SLO burn-rate pages.  The bridge keeps a bounded per-handle
observation history, mirrors each reading into a follower-count
:class:`~repro.obs.live.windows.GaugeStream`-style window stream, and
re-runs the detector incrementally:

* a **new** burst day (one not previously reported for the handle)
  fires ``burst:<handle>``;
* a subsequent burst-free day resolves it — the account has returned
  to its organic baseline.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Optional, Set, Tuple

from ...core.errors import ConfigurationError
from ...core.timeutil import DAY
from .slo import AlertLog
from .windows import WindowSpec, WindowStream

if TYPE_CHECKING:  # pragma: no cover
    from ...growth.detector import BurstDetector

# repro.growth sits above the API client, which itself imports
# repro.obs — so the bridge resolves the detector machinery lazily
# (first use) rather than at import time.


class DetectorBridge:
    """Feeds follower-count readings through burst detection into alerts.

    Parameters
    ----------
    alerts:
        The shared :class:`AlertLog` fire/resolve transitions land in.
    detector:
        The :class:`BurstDetector` to run (default thresholds when
        omitted).  Threshold configuration flows straight through —
        a stricter detector simply fires fewer alerts.
    min_history:
        Observations required before detection runs.  N readings yield
        N-1 daily arrivals and the detector needs >= 4 days, so the
        floor is 5; more history stabilises the baseline.
    max_history:
        Bounded per-handle memory: older readings roll off, exactly as
        a windowed monitor forgets the distant past.
    origin:
        Anchor for the per-handle follower window streams' panes
        (normally the fleet's start instant).
    """

    def __init__(self, alerts: AlertLog,
                 detector: Optional["BurstDetector"] = None, *,
                 min_history: int = 8, max_history: int = 256,
                 origin: float = 0.0) -> None:
        if min_history < 5:
            raise ConfigurationError(
                f"min_history must be >= 5 (N readings give N-1 daily "
                f"arrivals; the detector needs 4): {min_history!r}")
        if max_history < min_history:
            raise ConfigurationError(
                f"max_history must be >= min_history: {max_history!r}")
        if detector is None:
            from ...growth.detector import BurstDetector
            detector = BurstDetector()
        self._alerts = alerts
        self._detector = detector
        self._min_history = min_history
        self._max_history = max_history
        self._origin = origin
        self._observations: Dict[str, Deque[Tuple[float, int]]] = {}
        self._reported: Dict[str, Set[float]] = {}
        self._streams: Dict[str, WindowStream] = {}

    @property
    def detector(self) -> "BurstDetector":
        """The detector instance evaluating each handle's series."""
        return self._detector

    def stream(self, handle: str) -> Optional[WindowStream]:
        """The follower-count window stream of ``handle``, if any."""
        return self._streams.get(handle)

    def streams(self) -> Dict[str, WindowStream]:
        """Every per-handle follower stream, keyed by handle."""
        return dict(self._streams)

    def observe(self, handle: str, t: float, followers_count: int) -> bool:
        """Record one daily reading; returns whether a new alert fired.

        Readings must be strictly chronological per handle (the series
        builder enforces it).  Detection runs once ``min_history``
        readings have accumulated.
        """
        history = self._observations.get(handle)
        if history is None:
            history = deque(maxlen=self._max_history)
            self._observations[handle] = history
            self._reported[handle] = set()
            self._streams[handle] = WindowStream(
                f"followers:{handle}",
                WindowSpec(width=DAY, origin=self._origin))
        history.append((t, int(followers_count)))
        self._streams[handle].observe(t, float(followers_count))
        if len(history) < self._min_history:
            return False
        return self._evaluate(handle, t)

    def _evaluate(self, handle: str, now: float) -> bool:
        from ...growth.series import series_from_observations
        series = series_from_observations(list(self._observations[handle]))
        bursts = self._detector.detect(series)
        burst_starts = {event.start_time for event in bursts}
        reported = self._reported[handle]
        # History rolls off the deque; forget reported days with it so
        # the set stays bounded too.
        reported &= {series.day_start(day) for day in range(len(series))} \
            | burst_starts
        fresh = [event for event in bursts
                 if event.start_time not in reported]
        name = f"burst:{handle}"
        if fresh:
            strongest = fresh[0]  # detect() sorts strongest first
            reported.update(event.start_time for event in fresh)
            self._alerts.fire(
                now, name, severity="page",
                day=strongest.day, arrivals=strongest.arrivals,
                baseline=strongest.baseline, z_score=strongest.z_score,
                excess=strongest.excess)
            return True
        # The latest completed day is burst-free: the spike is over.
        latest_start = series.day_start(len(series) - 1)
        if self._alerts.is_active(name) and latest_start not in burst_starts:
            self._alerts.resolve(now, name, day=len(series) - 1)
        return False
