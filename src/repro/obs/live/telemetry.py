"""The live-telemetry hub: streams + SLOs + alerts behind one tick.

:class:`LiveTelemetry` is the object instrumented components talk to
when streaming telemetry is switched on.  It is attached to the active
:class:`~repro.obs.runtime.Observability` context
(``obs.attach_live(...)``); when detached, every hook in the hot paths
is a single ``is None`` check — the same zero-overhead discipline as
the null registry/tracer.

The tick is the only engine: :meth:`tick` samples every probe-backed
stream, closes elapsed panes, and re-evaluates every SLO rule.  Tick
times are clamped to a high watermark because interleaved schedules
(the batch scheduler's per-slot clocks) report completion instants out
of order; clamping keeps window accounting monotone and deterministic.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ...core.errors import ConfigurationError
from .bridge import DetectorBridge
from .slo import AlertLog, SloEvaluator, SloSpec, SloStatus
from .windows import CounterRateStream, GaugeStream, WindowSpec, WindowStream


class LiveTelemetry:
    """One run's streaming telemetry plane.

    Holds the window streams (keyed by name), the SLO evaluator, the
    alert log, and an optional detector bridge.  Everything advances on
    :meth:`tick`; event-shaped hooks (:meth:`on_request`,
    :meth:`on_audit`, :meth:`on_batch_run`) feed streams between ticks.
    """

    def __init__(self, *, origin: float = 0.0,
                 pane_width: float = 3600.0) -> None:
        if pane_width <= 0:
            raise ConfigurationError(
                f"pane_width must be > 0: {pane_width!r}")
        self.origin = origin
        self.pane_width = pane_width
        self.alerts = AlertLog()
        self.slos = SloEvaluator(self.alerts)
        self.bridge: Optional[DetectorBridge] = None
        self._streams: Dict[str, WindowStream] = {}
        self._watermark = float("-inf")
        self._ticks = 0

    # -- stream registry ----------------------------------------------------

    def default_spec(self, width: Optional[float] = None) -> WindowSpec:
        """A :class:`WindowSpec` anchored at this plane's origin."""
        return WindowSpec(width=width if width is not None
                          else self.pane_width, origin=self.origin)

    def add_stream(self, stream: WindowStream) -> WindowStream:
        """Register a stream under its name (names must be unique)."""
        if stream.name in self._streams:
            raise ConfigurationError(
                f"duplicate stream name: {stream.name!r}")
        self._streams[stream.name] = stream
        return stream

    def value_stream(self, name: str,
                     width: Optional[float] = None) -> WindowStream:
        """Get or create a plain event stream fed via :meth:`note`."""
        stream = self._streams.get(name)
        if stream is None:
            stream = self.add_stream(
                WindowStream(name, self.default_spec(width)))
        return stream

    def gauge_stream(self, name: str, probe: Callable[[], float],
                     width: Optional[float] = None) -> GaugeStream:
        """Register a probe-sampled level stream (queue depth, counts)."""
        stream = GaugeStream(name, self.default_spec(width), probe)
        self.add_stream(stream)
        return stream

    def counter_stream(self, name: str, probe: Callable[[], float],
                       width: Optional[float] = None) -> CounterRateStream:
        """Register a cumulative-counter delta stream (rates)."""
        stream = CounterRateStream(name, self.default_spec(width), probe)
        self.add_stream(stream)
        return stream

    def stream(self, name: str) -> WindowStream:
        """Look up a registered stream by name."""
        stream = self._streams.get(name)
        if stream is None:
            raise ConfigurationError(f"unknown stream: {name!r}")
        return stream

    def streams(self) -> Dict[str, WindowStream]:
        """Every registered stream, keyed by name."""
        return dict(self._streams)

    def attach_bridge(self, bridge: DetectorBridge) -> DetectorBridge:
        """Install the detector bridge feeding burst alerts."""
        self.bridge = bridge
        return bridge

    def add_slo(self, spec: SloSpec) -> SloStatus:
        """Register one SLO rule (evaluated on every tick)."""
        return self.slos.add(spec)

    # -- time ---------------------------------------------------------------

    @property
    def ticks(self) -> int:
        """Ticks processed so far."""
        return self._ticks

    @property
    def watermark(self) -> float:
        """The furthest simulated instant ticked past so far."""
        return self._watermark

    def clamp(self, t: float) -> float:
        """``t`` clamped forward to the tick high watermark."""
        return t if t >= self._watermark else self._watermark

    def tick(self, now: float) -> float:
        """Advance the plane to instant ``now`` (clamped monotone).

        Samples every probe-backed stream, closes elapsed panes of the
        event streams, and re-evaluates the SLO rules.  Returns the
        effective (clamped) tick time.
        """
        now = self.clamp(float(now))
        self._watermark = now
        self._ticks += 1
        for stream in self._streams.values():
            sample = getattr(stream, "sample", None)
            if sample is not None:
                sample(now)
            else:
                stream.close_until(now)
        if self.bridge is not None:
            for stream in self.bridge.streams().values():
                stream.close_until(now)
        self.slos.evaluate(now, self._all_streams())
        return now

    def _all_streams(self) -> Dict[str, WindowStream]:
        merged = dict(self._streams)
        if self.bridge is not None:
            merged.update(
                (stream.name, stream)
                for stream in self.bridge.streams().values())
        return merged

    # -- event hooks (instrumented components) ------------------------------

    def note(self, name: str, t: float, value: float = 1.0) -> None:
        """Record one event into the named stream (created on demand)."""
        self.value_stream(name).observe(self.clamp(t), value)

    def on_request(self, resource: str, t: float, ok: bool) -> None:
        """API-client hook: one request attempt finished at ``t``."""
        t = self.clamp(t)
        self.value_stream("api.requests").observe(t, 1.0)
        if not ok:
            self.value_stream("api.errors").observe(t, 1.0)

    def on_audit(self, engine: str, t: float, *, cached: bool,
                 completeness: float) -> None:
        """Engine hook: one audit finished on engine ``engine``."""
        t = self.clamp(t)
        self.value_stream(f"audits.{engine}").observe(t, 1.0)
        self.value_stream("audits.completed").observe(t, 1.0)
        if cached:
            self.value_stream("audits.cached").observe(t, 1.0)
        if completeness > 0.0:
            self.value_stream("audits.ok").observe(t, 1.0)

    def on_rules(self, engine: str, t: float, fired: Dict[str, int],
                 sample_size: int) -> None:
        """Provenance hook: one classification's rule-fire tallies.

        Feeds the per-engine drift stream ``rules.<engine>`` with the
        classified sample size, and one ``rules.<engine>.<rule>``
        stream per rule that fired — the fleet dashboard picks them up
        automatically, so a purchased block landing shows up as a
        step-change in which rules fire.
        """
        t = self.clamp(t)
        self.value_stream(f"rules.{engine}").observe(
            t, float(sample_size))
        for rule, count in fired.items():
            if count:
                self.value_stream(f"rules.{engine}.{rule}").observe(
                    t, float(count))

    def on_batch_run(self, epoch: float, makespan: float,
                     executed: int) -> None:
        """Scheduler hook: one batch run finished (admitted at ``epoch``)."""
        t = self.clamp(epoch)
        if executed > 0:
            self.value_stream("sched.batch_audits").observe(
                t, float(executed))
        self.value_stream("sched.batch_runs").observe(t, 1.0)

    def observe_followers(self, handle: str, t: float,
                          followers_count: int) -> bool:
        """Bridge hook: one follower-count reading; True if it paged."""
        if self.bridge is None:
            return False
        return self.bridge.observe(handle, self.clamp(t), followers_count)
