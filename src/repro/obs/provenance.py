"""Decision-level provenance: which criteria rules fired, per account.

The paper's central finding (Table III) is that the surveyed engines
*disagree*; the reproduction's engines can finally say **why**.  Every
rule in the rule-based criteria (and the FC pipeline's two decision
stages) carries a stable :data:`RuleId`; classification optionally
emits one boolean fire mask per rule into a :class:`ProvenanceSink`,
and the per-audit masks aggregate into :class:`RuleStats` (fire
counts, co-fire matrix, per-verdict attribution) attached to
``AuditReport.details["provenance"]``.

Design constraints, in order:

* **Bit identity.**  Provenance is a *pure observation*: enabling it
  changes no verdict bytes.  The columnar paths record the very mask
  arrays their verdict arithmetic consumes; the scalar paths re-derive
  the same predicates per account.  Both pack to identical bitmaps
  (:func:`pack_mask` is ``np.packbits``-compatible bit for bit on a
  NumPy-less host).
* **RuleId stability.**  Rule ids are part of the observable surface:
  goldens, dashboards and the ``rule_fired_total`` metric series key
  on them.  Renaming a rule is a breaking change — treat the registry
  like a wire format (see docs/observability.md).
* **Zero overhead when off.**  No collector, no sink, no masks: the
  hot paths pass ``sink=None`` and skip every recording branch.

The cross-engine view is :class:`DisagreementReport`: per-account
verdicts of 2+ engines joined on user id, each disagreement cell
attributed to the rules that separated the engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError

#: A stable rule identifier, ``<engine-prefix>.<rule>`` (wire format).
RuleId = str

#: Canonical verdict vocabulary the cross-engine join maps onto.  Each
#: engine's own labels ("good", "real", "genuine"; "not sure") collapse
#: to one of these so disagreement cells compare like with like.
CANONICAL_VERDICTS: Tuple[str, ...] = ("fake", "inactive", "unsure", "genuine")

_CANONICAL = {
    "fake": "fake",
    "inactive": "inactive",
    "not sure": "unsure",
    "good": "genuine",
    "real": "genuine",
    "genuine": "genuine",
}


def canonical_verdict(label: str) -> str:
    """Map an engine's verdict label onto the canonical vocabulary."""
    try:
        return _CANONICAL[label]
    except KeyError:
        raise ConfigurationError(f"unknown verdict label: {label!r}")


def pack_mask(mask) -> bytes:
    """Pack a boolean mask into an MSB-first bitmap (``np.packbits``).

    Accepts a NumPy boolean array or any sequence of truthy values;
    both pack to byte-identical bitmaps, which is what lets scalar and
    columnar provenance records compare with ``==``.
    """
    np = _numpy_of(mask)
    if np is not None:
        return np.packbits(mask.astype(np.uint8)).tobytes()
    bits = [1 if value else 0 for value in mask]
    out = bytearray()
    for start in range(0, len(bits), 8):
        byte = 0
        for offset, bit in enumerate(bits[start:start + 8]):
            byte |= bit << (7 - offset)
        out.append(byte)
    return bytes(out)


def unpack_mask(data: bytes, size: int) -> List[bool]:
    """Unpack an MSB-first bitmap back into ``size`` booleans."""
    bits: List[bool] = []
    for byte in data:
        for offset in range(8):
            bits.append(bool((byte >> (7 - offset)) & 1))
    return bits[:size]


def _numpy_of(mask):
    """The NumPy module behind ``mask`` when it is an ndarray, else None."""
    cls = type(mask)
    if cls.__module__.split(".")[0] == "numpy":
        import numpy
        return numpy
    return None


class ProvenanceSink:
    """Per-rule fire masks of **one** classification, in rule order.

    The criteria call :meth:`add` once per rule; columnar paths hand
    over the very boolean mask arrays their verdict arithmetic uses,
    scalar paths a plain list of booleans.  Order of :meth:`add` calls
    fixes the rule order of the resulting record.
    """

    def __init__(self) -> None:
        self._masks: "Dict[RuleId, object]" = {}

    def add(self, rule_id: RuleId, mask) -> None:
        """Record one rule's boolean fire mask."""
        if rule_id in self._masks:
            raise ConfigurationError(f"duplicate rule id: {rule_id!r}")
        self._masks[rule_id] = mask

    @property
    def rule_ids(self) -> Tuple[RuleId, ...]:
        """Rules recorded so far, in :meth:`add` order."""
        return tuple(self._masks)

    def mask(self, rule_id: RuleId):
        """The raw mask recorded for one rule."""
        return self._masks[rule_id]

    def masks(self) -> "Dict[RuleId, object]":
        """All recorded masks, keyed by rule id, in add order."""
        return dict(self._masks)

    def packed(self) -> "Dict[RuleId, bytes]":
        """Every mask packed to its canonical bitmap."""
        return {rule: pack_mask(mask) for rule, mask in self._masks.items()}

    def __len__(self) -> int:
        return len(self._masks)


@dataclass(frozen=True)
class RuleStats:
    """Aggregates of one audit's rule fires.

    ``fired`` counts accounts each rule fired on; ``co_fired`` is the
    symmetric co-fire matrix (diagonal == ``fired``); ``by_verdict``
    attributes fires to the verdict each account received — the
    "decisive rule" view (e.g. how many *fake* verdicts had
    ``sp.ratio_20`` fired).
    """

    rules: Tuple[RuleId, ...]
    sample_size: int
    fired: Mapping[RuleId, int]
    co_fired: Mapping[RuleId, Mapping[RuleId, int]]
    by_verdict: Mapping[str, Mapping[RuleId, int]]

    def as_dict(self) -> Dict[str, object]:
        """A compact JSON-safe mapping for ``AuditReport.details``.

        Zero entries are dropped so the payload stays proportional to
        what actually fired, and keys iterate deterministically (rule
        order for rules, label order for verdicts).
        """
        co = {a: {b: count for b, count in row.items() if count and a != b}
              for a, row in self.co_fired.items()}
        return {
            "rules": list(self.rules),
            "sample_size": self.sample_size,
            "fired": {rule: count for rule, count in self.fired.items()
                      if count},
            "co_fired": {a: row for a, row in co.items() if row},
            "by_verdict": {
                label: {rule: count for rule, count in row.items() if count}
                for label, row in self.by_verdict.items()
                if any(row.values())
            },
        }


@dataclass(frozen=True)
class AuditProvenance:
    """The full provenance record of one audit's classification.

    ``bitmaps`` hold one packed fire mask per rule over the sampled
    accounts (``user_ids`` order == ``codes`` order), so any account's
    fired set is recoverable exactly; ``stats`` is the aggregate view
    that rides in the report details.
    """

    engine: str
    target: str
    labels: Tuple[str, ...]
    rules: Tuple[RuleId, ...]
    user_ids: Tuple[int, ...]
    codes: Tuple[int, ...]
    bitmaps: Mapping[RuleId, bytes]
    stats: RuleStats

    @property
    def sample_size(self) -> int:
        """Accounts classified in this audit."""
        return len(self.user_ids)

    def verdicts_by_user(self) -> Dict[int, str]:
        """``{user_id: verdict label}`` of the whole sample."""
        return {uid: self.labels[code]
                for uid, code in zip(self.user_ids, self.codes)}

    def fired_by_user(self) -> Dict[int, Tuple[RuleId, ...]]:
        """``{user_id: rules fired}`` recovered from the bitmaps."""
        size = len(self.user_ids)
        unpacked = {rule: unpack_mask(self.bitmaps[rule], size)
                    for rule in self.rules}
        return {
            uid: tuple(rule for rule in self.rules if unpacked[rule][index])
            for index, uid in enumerate(self.user_ids)
        }


def build_stats(labels: Sequence[str], codes, sink: ProvenanceSink,
                sample_size: int) -> RuleStats:
    """Aggregate one sink's masks into :class:`RuleStats`.

    Runs vectorised when the masks are NumPy arrays and in plain Python
    otherwise; the resulting integers are identical either way.
    """
    rules = sink.rule_ids
    masks = sink.masks()
    np = None
    for mask in masks.values():
        np = _numpy_of(mask)
        break
    code_list = codes.tolist() if hasattr(codes, "tolist") else list(codes)
    if np is not None and all(_numpy_of(m) is not None
                              for m in masks.values()):
        bool_masks = {rule: masks[rule].astype(bool) for rule in rules}
        fired = {rule: int(bool_masks[rule].sum()) for rule in rules}
        co = {a: {b: (int((bool_masks[a] & bool_masks[b]).sum()))
                  for b in rules} for a in rules}
        by_verdict = {}
        codes_arr = np.asarray(code_list)
        for code, label in enumerate(labels):
            verdict_mask = codes_arr == code
            by_verdict[label] = {
                rule: int((bool_masks[rule] & verdict_mask).sum())
                for rule in rules}
    else:
        bit_lists = {rule: [bool(v) for v in masks[rule]] for rule in rules}
        fired = {rule: sum(bit_lists[rule]) for rule in rules}
        co = {a: {b: sum(1 for x, y in zip(bit_lists[a], bit_lists[b])
                         if x and y) for b in rules} for a in rules}
        by_verdict = {
            label: {rule: sum(1 for bit, code in
                              zip(bit_lists[rule], code_list)
                              if bit and code == code_index)
                    for rule in rules}
            for code_index, label in enumerate(labels)}
    return RuleStats(rules=rules, sample_size=sample_size, fired=fired,
                     co_fired=co, by_verdict=by_verdict)


class ProvenanceCollector:
    """One run's provenance records, plus the metric/stream fan-out.

    Hand one collector to :func:`repro.audit.build_engines` (or the
    batch scheduler) and every fresh classification appends an
    :class:`AuditProvenance` here.  Each record also increments the
    lazy ``rule_fired_total{engine,rule}`` counters of the active
    observability context (series exist only for rules that actually
    fired, keeping unused exports byte-identical) and feeds the
    ``rules.<engine>`` drift streams of an attached live-telemetry
    plane.
    """

    def __init__(self) -> None:
        self._records: List[AuditProvenance] = []

    @property
    def records(self) -> Tuple[AuditProvenance, ...]:
        """Every record, in classification order."""
        return tuple(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def record(self, engine: str, target: str, verdicts,
               sink: ProvenanceSink, user_ids: Sequence[int],
               t: float) -> AuditProvenance:
        """Aggregate one classification's sink into a record.

        ``verdicts`` is the :class:`~repro.analytics.criteria.
        VerdictArray` the classification produced; ``t`` is the
        simulated instant the rules evaluated at (feeds drift streams).
        """
        codes = verdicts.codes
        code_tuple = tuple(
            int(code) for code in
            (codes.tolist() if hasattr(codes, "tolist") else codes))
        stats = build_stats(verdicts.labels, code_tuple, sink,
                            len(code_tuple))
        provenance = AuditProvenance(
            engine=engine,
            target=target,
            labels=tuple(verdicts.labels),
            rules=sink.rule_ids,
            user_ids=tuple(int(uid) for uid in user_ids),
            codes=code_tuple,
            bitmaps=sink.packed(),
            stats=stats,
        )
        self._records.append(provenance)
        self._export(provenance, t)
        return provenance

    def _export(self, provenance: AuditProvenance, t: float) -> None:
        """Fan one record out to the metric registry and live streams."""
        from .runtime import get_observability  # deferred: cycle

        obs = get_observability()
        if obs.enabled:
            registry = obs.registry
            for rule, count in provenance.stats.fired.items():
                if count:
                    registry.counter(
                        "rule_fired_total",
                        help="criteria rule fires by engine and rule",
                        engine=provenance.engine, rule=rule).inc(count)
        live = obs.live
        if live is not None:
            live.on_rules(provenance.engine, t,
                          dict(provenance.stats.fired),
                          provenance.sample_size)

    def for_target(self, target: str) -> Dict[str, AuditProvenance]:
        """Latest record per engine for one target (case-insensitive)."""
        wanted = target.lower()
        latest: Dict[str, AuditProvenance] = {}
        for record in self._records:
            if record.target.lower() == wanted:
                latest[record.engine] = record
        return latest


# ---------------------------------------------------------------------------
# Cross-engine disagreement drill-down
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DisagreementCell:
    """One cross-engine disagreement class for one target.

    ``count`` accounts (present in both engines' samples) received
    canonical verdict ``verdict_a`` from ``engine_a`` but ``verdict_b``
    from ``engine_b``; ``rules_a``/``rules_b`` are the rules that fired
    on those accounts in each engine, with fire counts, most-fired
    first — the rules that *separated* the two engines.
    """

    engine_a: str
    engine_b: str
    verdict_a: str
    verdict_b: str
    count: int
    rules_a: Tuple[Tuple[RuleId, int], ...]
    rules_b: Tuple[Tuple[RuleId, int], ...]

    @property
    def separating_rules(self) -> Tuple[RuleId, ...]:
        """Every rule implicated on either side, most-fired first."""
        merged: Dict[RuleId, int] = {}
        for rule, count in self.rules_a + self.rules_b:
            merged[rule] = merged.get(rule, 0) + count
        return tuple(sorted(merged, key=lambda r: (-merged[r], r)))


@dataclass(frozen=True)
class DisagreementReport:
    """All pairwise disagreement cells of one target's audits."""

    target: str
    engines: Tuple[str, ...]
    overlap: Mapping[Tuple[str, str], int]
    cells: Tuple[DisagreementCell, ...]

    def render(self) -> str:
        """The ASCII drill-down table of every disagreement cell."""
        lines = [f"disagreement drill-down @{self.target} "
                 f"(engines: {', '.join(self.engines)})"]
        if not self.cells:
            lines.append("  no cross-engine disagreement on shared accounts")
            return "\n".join(lines)
        for cell in self.cells:
            overlap = self.overlap[(cell.engine_a, cell.engine_b)]
            lines.append(
                f"  {cell.engine_a}={cell.verdict_a} vs "
                f"{cell.engine_b}={cell.verdict_b}: {cell.count}"
                f"/{overlap} shared accounts")
            for engine, rules in ((cell.engine_a, cell.rules_a),
                                  (cell.engine_b, cell.rules_b)):
                if rules:
                    fired = ", ".join(f"{rule} x{count}"
                                      for rule, count in rules[:4])
                    lines.append(f"    {engine} rules: {fired}")
        return "\n".join(lines)


def build_disagreement(target: str,
                       records: Mapping[str, AuditProvenance]
                       ) -> DisagreementReport:
    """Join 2+ engines' provenance records into a disagreement report.

    Accounts are joined on user id (engines sample different frames, so
    only the shared accounts compare); verdicts compare on the
    canonical vocabulary.  Cells are emitted in (engine_a, engine_b,
    verdict_a, verdict_b) sorted order with deterministic rule
    rankings, so renderings are golden-stable.
    """
    engines = tuple(sorted(records))
    if len(engines) < 2:
        raise ConfigurationError(
            f"need records from >= 2 engines, got {list(engines)!r}")
    verdicts = {engine: {
        uid: canonical_verdict(label)
        for uid, label in records[engine].verdicts_by_user().items()
    } for engine in engines}
    fired = {engine: records[engine].fired_by_user() for engine in engines}
    cells: List[DisagreementCell] = []
    overlap: Dict[Tuple[str, str], int] = {}
    for index, engine_a in enumerate(engines):
        for engine_b in engines[index + 1:]:
            shared = sorted(set(verdicts[engine_a]) & set(verdicts[engine_b]))
            overlap[(engine_a, engine_b)] = len(shared)
            buckets: Dict[Tuple[str, str], List[int]] = {}
            for uid in shared:
                pair = (verdicts[engine_a][uid], verdicts[engine_b][uid])
                if pair[0] != pair[1]:
                    buckets.setdefault(pair, []).append(uid)
            for (verdict_a, verdict_b) in sorted(buckets):
                uids = buckets[(verdict_a, verdict_b)]
                cells.append(DisagreementCell(
                    engine_a=engine_a, engine_b=engine_b,
                    verdict_a=verdict_a, verdict_b=verdict_b,
                    count=len(uids),
                    rules_a=_rule_tally(fired[engine_a], uids),
                    rules_b=_rule_tally(fired[engine_b], uids),
                ))
    return DisagreementReport(target=target, engines=engines,
                              overlap=overlap, cells=tuple(cells))


def _rule_tally(fired_by_user: Mapping[int, Tuple[RuleId, ...]],
                uids: Sequence[int]) -> Tuple[Tuple[RuleId, int], ...]:
    """Fire counts of every rule over ``uids``, most-fired first."""
    tally: Dict[RuleId, int] = {}
    for uid in uids:
        for rule in fired_by_user[uid]:
            tally[rule] = tally.get(rule, 0) + 1
    return tuple(sorted(tally.items(), key=lambda item: (-item[1], item[0])))


def render_rule_table(records: Mapping[str, AuditProvenance]) -> str:
    """The per-engine ASCII rule table of ``repro explain``.

    One row per (engine, rule) with the fire count, the fired share of
    the engine's sample, and the per-verdict attribution of the fires.
    """
    lines = ["rule fires by engine",
             f"{'engine':<14} {'rule':<32} {'fired':>6} {'share':>7}  "
             f"verdict attribution"]
    for engine in sorted(records):
        record = records[engine]
        stats = record.stats
        total = max(1, stats.sample_size)
        for rule in stats.rules:
            count = stats.fired[rule]
            if not count:
                continue
            attribution = ", ".join(
                f"{label}={stats.by_verdict[label][rule]}"
                for label in record.labels
                if stats.by_verdict[label][rule])
            lines.append(
                f"{engine:<14} {rule:<32} {count:>6} "
                f"{100.0 * count / total:>6.1f}%  {attribution}")
    return "\n".join(lines)
