"""Metrics registry: counters, gauges, fixed-bucket histograms.

The paper's evaluation is *measurement*: Table I counts API budgets,
Table II times responses, the crawl-time model prices acquisitions.
This module gives the reproduction a first-class place to put those
numbers while they are being produced, instead of re-deriving them from
clock reads after the fact.

Design constraints, in order:

* **Determinism.**  Labels are canonicalised to sorted frozen tuples,
  instruments are stored in insertion order, and exports iterate in
  sorted ``(name, labels)`` order — so two runs with the same seed
  produce byte-identical expositions.
* **Zero overhead when off.**  :data:`NULL_REGISTRY` hands out shared
  no-op instrument singletons; the hot path never allocates an obs
  object when observability is disabled.
* **No wall clock.**  Nothing here reads time at all; durations are
  observed by callers against the simulated clock.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, NamedTuple, Optional, Tuple

from ..core.errors import ConfigurationError


class CacheInfo(NamedTuple):
    """Uniform cache snapshot (hits/misses/evictions/size).

    Every cache in the reproduction — the analytics
    :class:`~repro.analytics.base.ResultCache`, the scheduler's
    :class:`~repro.sched.cache.AcquisitionCache`, the columnar
    :class:`~repro.fc.columnar.FeatureCache` — reports through this one
    shape, so ``repro stats`` can aggregate them without knowing which
    kind it is looking at.
    """

    name: str
    hits: int
    misses: int
    evictions: int
    size: int

#: Canonical label form: ``(("resource", "users/lookup"), ...)`` sorted
#: by key.
Labels = Tuple[Tuple[str, str], ...]

#: Default latency buckets (seconds).  Spans the 2-5 s cached answers,
#: the ~10-55 s commercial audits and the >180 s FC runs of Table II.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 900.0)

#: Default rate-limit wait buckets (seconds): zero-wait fast path up to
#: a full 15-minute window and beyond.
WAIT_BUCKETS: Tuple[float, ...] = (
    0.0, 1.0, 5.0, 15.0, 60.0, 300.0, 900.0, 3600.0)


def canonical_labels(labels: Mapping[str, object]) -> Labels:
    """Sort and stringify a label mapping into its canonical tuple."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ConfigurationError(
                f"counters only go up; cannot add {amount!r}")
        self._value += amount

    @property
    def value(self) -> float:
        """The current count."""
        return self._value


class Gauge:
    """A value that can go up and down (tokens remaining, queue depth)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self._value = float(value)

    def add(self, delta: float) -> None:
        """Shift the gauge by ``delta`` (may be negative)."""
        self._value += delta

    @property
    def value(self) -> float:
        """The current level."""
        return self._value


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` (≤) semantics.

    ``buckets`` are the finite upper edges; an implicit ``+Inf`` bucket
    always exists.  A value equal to an edge falls into that edge's
    bucket.
    """

    __slots__ = ("buckets", "_counts", "_sum", "_count")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        if not buckets:
            raise ConfigurationError("histogram needs at least one bucket")
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ConfigurationError(
                f"bucket edges must be strictly increasing: {buckets!r}")
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # +Inf last
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._sum += value
        self._count += 1
        for index, edge in enumerate(self.buckets):
            if value <= edge:
                self._counts[index] += 1
                return
        self._counts[-1] += 1

    @property
    def count(self) -> int:
        """Total number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def bucket_counts(self) -> Tuple[int, ...]:
        """Per-bucket counts (non-cumulative), ``+Inf`` last."""
        return tuple(self._counts)

    def cumulative_counts(self) -> Tuple[int, ...]:
        """Cumulative ``le`` counts, as Prometheus exposes them."""
        out: List[int] = []
        running = 0
        for count in self._counts:
            running += count
            out.append(running)
        return tuple(out)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by bucket interpolation.

        The ``histogram_quantile`` estimate: find the bucket the rank
        falls into and interpolate linearly inside it (the first bucket
        interpolates from zero).  Documented edge-case sentinels, so no
        input produces an index error:

        * **empty histogram** — returns ``0.0``;
        * **q = 0** — the lower edge of the lowest occupied bucket
          (``0.0`` for the first bucket);
        * **q = 1** — the upper edge of the highest occupied *finite*
          bucket;
        * ranks landing in the ``+Inf`` bucket (including ``q = 1``
          when only ``+Inf`` holds data) clamp to the highest finite
          edge — the estimate cannot exceed what the buckets resolve;
        * a **single-bucket** histogram degenerates to interpolating
          inside ``[0, edge]`` and clamping at ``edge``.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1]: {q!r}")
        if self._count == 0:
            return 0.0
        if q == 0.0:
            lower = 0.0
            for edge, count in zip(self.buckets, self._counts[:-1]):
                if count:
                    return lower
                lower = edge
            return self.buckets[-1]
        if q == 1.0:
            highest = None
            for edge, count in zip(self.buckets, self._counts[:-1]):
                if count:
                    highest = edge
            return highest if highest is not None else self.buckets[-1]
        rank = q * self._count
        cumulative = 0
        lower = 0.0
        for edge, count in zip(self.buckets, self._counts[:-1]):
            if count and cumulative + count >= rank:
                fraction = (rank - cumulative) / count
                return lower + (edge - lower) * fraction
            cumulative += count
            lower = edge
        return self.buckets[-1]


class _Family:
    """All instruments sharing one metric name (one per label set)."""

    __slots__ = ("name", "kind", "help", "buckets", "series")

    def __init__(self, name: str, kind: str, help_text: str,
                 buckets: Optional[Tuple[float, ...]]) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.series: Dict[Labels, object] = {}


class MetricsRegistry:
    """Named families of counters, gauges and histograms.

    Instruments are created on first use and shared thereafter:
    ``registry.counter("api_requests_total", resource="users/lookup")``
    always returns the same :class:`Counter` for the same labels.
    """

    #: Real registries report themselves enabled; the null registry does
    #: not.  Lets hot paths skip optional, allocation-heavy attributes.
    enabled = True

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    def _family(self, name: str, kind: str, help_text: str,
                buckets: Optional[Tuple[float, ...]]) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_text, buckets)
            self._families[name] = family
            return family
        if family.kind != kind:
            raise ConfigurationError(
                f"metric {name!r} is a {family.kind}, not a {kind}")
        if kind == "histogram" and buckets is not None \
                and family.buckets != tuple(float(b) for b in buckets):
            raise ConfigurationError(
                f"metric {name!r} was registered with buckets "
                f"{family.buckets!r}, got {tuple(buckets)!r}")
        return family

    def counter(self, name: str, help: str = "", **labels: object) -> Counter:
        """Get or create the counter ``name`` with ``labels``."""
        family = self._family(name, "counter", help, None)
        key = canonical_labels(labels)
        instrument = family.series.get(key)
        if instrument is None:
            instrument = Counter()
            family.series[key] = instrument
        return instrument  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        """Get or create the gauge ``name`` with ``labels``."""
        family = self._family(name, "gauge", help, None)
        key = canonical_labels(labels)
        instrument = family.series.get(key)
        if instrument is None:
            instrument = Gauge()
            family.series[key] = instrument
        return instrument  # type: ignore[return-value]

    def histogram(self, name: str,
                  buckets: Tuple[float, ...] = LATENCY_BUCKETS,
                  help: str = "", **labels: object) -> Histogram:
        """Get or create the histogram ``name`` with ``labels``."""
        family = self._family(name, "histogram", help, tuple(buckets))
        key = canonical_labels(labels)
        instrument = family.series.get(key)
        if instrument is None:
            instrument = Histogram(family.buckets)  # type: ignore[arg-type]
            family.series[key] = instrument
        return instrument  # type: ignore[return-value]

    # -- introspection / export ------------------------------------------------

    def families(self) -> Iterator[Tuple[str, str, str]]:
        """Yield ``(name, kind, help)`` for each family, sorted by name."""
        for name in sorted(self._families):
            family = self._families[name]
            yield name, family.kind, family.help

    def series(self) -> Iterator[Tuple[str, str, Labels, object]]:
        """Yield ``(name, kind, labels, instrument)`` in sorted order."""
        for name in sorted(self._families):
            family = self._families[name]
            for labels in sorted(family.series):
                yield name, family.kind, labels, family.series[labels]

    def series_count(self) -> int:
        """Number of distinct ``(name, labels)`` series registered."""
        return sum(len(family.series) for family in self._families.values())

    def get(self, name: str, **labels: object) -> Optional[object]:
        """Look up an existing instrument without creating it."""
        family = self._families.get(name)
        if family is None:
            return None
        return family.series.get(canonical_labels(labels))

    def value(self, name: str, **labels: object) -> float:
        """Convenience: the value of an existing counter/gauge, else 0."""
        instrument = self.get(name, **labels)
        if isinstance(instrument, (Counter, Gauge)):
            return instrument.value
        return 0.0


# ---------------------------------------------------------------------------
# No-op instruments — shared singletons, allocated once at import time.
# ---------------------------------------------------------------------------

class NullCounter:
    """Counter that ignores everything (the disabled-observability path)."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        """Discard the increment."""

    value = 0.0


class NullGauge:
    """Gauge that ignores everything."""

    __slots__ = ()

    def set(self, value: float) -> None:
        """Discard the value."""

    def add(self, delta: float) -> None:
        """Discard the delta."""

    value = 0.0


class NullHistogram:
    """Histogram that ignores everything."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        """Discard the observation."""

    count = 0
    sum = 0.0
    buckets: Tuple[float, ...] = ()

    def bucket_counts(self) -> Tuple[int, ...]:
        """Always empty."""
        return ()

    def cumulative_counts(self) -> Tuple[int, ...]:
        """Always empty."""
        return ()

    def quantile(self, q: float) -> float:
        """Always zero."""
        return 0.0


NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()


class NullRegistry:
    """Registry façade that hands out the shared no-op singletons.

    Every accessor returns a pre-allocated module-level instrument, so
    instrumented hot paths cost a method call and nothing else when
    observability is off.
    """

    enabled = False

    def counter(self, name: str, help: str = "", **labels: object) -> NullCounter:
        """The shared no-op counter."""
        return NULL_COUNTER

    def gauge(self, name: str, help: str = "", **labels: object) -> NullGauge:
        """The shared no-op gauge."""
        return NULL_GAUGE

    def histogram(self, name: str, buckets: Tuple[float, ...] = (),
                  help: str = "", **labels: object) -> NullHistogram:
        """The shared no-op histogram."""
        return NULL_HISTOGRAM

    def families(self) -> Iterator[Tuple[str, str, str]]:
        """Always empty."""
        return iter(())

    def series(self) -> Iterator[Tuple[str, str, Labels, object]]:
        """Always empty."""
        return iter(())

    def series_count(self) -> int:
        """Always zero."""
        return 0

    def get(self, name: str, **labels: object) -> None:
        """Always ``None``."""
        return None

    def value(self, name: str, **labels: object) -> float:
        """Always zero."""
        return 0.0


NULL_REGISTRY = NullRegistry()
