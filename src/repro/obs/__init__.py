"""Observability: sim-clock-native tracing and metrics.

The reproduction's results are measurements, so measurement deserves a
subsystem: a metrics registry (counters, gauges, fixed-bucket
histograms), a span tracer timed by the simulated clock, and exporters
(JSONL traces, Prometheus text, console summary).  Disabled by default
— every instrumented call site talks to shared no-op singletons until
:func:`activate` (or the CLI's ``--trace-out`` / ``--metrics-out``
flags) switches a real context in.  See ``docs/observability.md``.
"""

from .analysis import (
    AuditAttribution,
    PHASES,
    attribute_all,
    critical_path,
    lane_timeline,
    phase_totals,
    render_critical_path,
    render_lane_timeline,
    render_phase_attribution,
)
from .exporters import (
    console_summary,
    iter_trace_jsonl,
    prometheus_text,
    span_to_dict,
    stats_line,
    trace_to_jsonl,
    write_metrics_prom,
    write_trace_jsonl,
)
from .perf import (
    PERF_SCHEMA,
    PerfBreach,
    PerfTolerances,
    collect_perf,
    diff_perf,
    load_perf_json,
    measure_wallclock,
    render_perf_diff,
    render_perf_json,
    write_perf_json,
)
from .metrics import (
    CacheInfo,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    WAIT_BUCKETS,
    canonical_labels,
)
from .runtime import (
    NULL_OBS,
    NullObservability,
    Observability,
    activate,
    deactivate,
    get_observability,
    observed,
)
from .trace import NULL_SPAN, NULL_TRACER, NullSpan, NullTracer, Span, Tracer

__all__ = [
    "AuditAttribution",
    "CacheInfo",
    "Counter",
    "PERF_SCHEMA",
    "PHASES",
    "PerfBreach",
    "PerfTolerances",
    "attribute_all",
    "collect_perf",
    "critical_path",
    "diff_perf",
    "iter_trace_jsonl",
    "lane_timeline",
    "load_perf_json",
    "measure_wallclock",
    "phase_totals",
    "render_critical_path",
    "render_lane_timeline",
    "render_perf_diff",
    "render_perf_json",
    "render_phase_attribution",
    "write_perf_json",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NULL_OBS",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullObservability",
    "NullRegistry",
    "NullSpan",
    "NullTracer",
    "Observability",
    "Span",
    "Tracer",
    "WAIT_BUCKETS",
    "activate",
    "canonical_labels",
    "console_summary",
    "deactivate",
    "get_observability",
    "observed",
    "prometheus_text",
    "span_to_dict",
    "stats_line",
    "trace_to_jsonl",
    "write_metrics_prom",
    "write_trace_jsonl",
]
