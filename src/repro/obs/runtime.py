"""Process-wide observability switchboard.

Instrumented components (API client, rate limiter, crawler, caches,
engines, experiment runner) ask :func:`get_observability` for the
active context at construction time.  By default that is
:data:`NULL_OBS`, whose tracer and registry are shared no-op singletons
— nothing is allocated or recorded.  The CLI (or a test) activates a
real :class:`Observability` for the duration of a run:

    obs = activate()
    try:
        ...run experiments...
    finally:
        deactivate()

or, equivalently, ``with observed() as obs: ...``.

Keeping the switch process-wide (rather than threading an ``obs``
parameter through every constructor) matches how the engines are
built: :class:`~repro.analytics.base.CommercialAnalytic` constructs its
own client, crawler and cache internally, exactly as the closed
services it models would.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from ..core.clock import SimClock
from .metrics import CacheInfo, MetricsRegistry, NullRegistry, NULL_REGISTRY
from .trace import NullTracer, NULL_TRACER, Tracer


class Observability:
    """One run's worth of telemetry: a registry, a tracer, call logs.

    ``clock`` is the tracer's fallback clock (used for spans whose
    caller has no simulated clock of its own, like the experiment
    runner).  ``call_logs`` collects every
    :class:`~repro.api.endpoints.CallLog` created while active, so
    end-of-run summaries can aggregate API usage across all engines.
    """

    enabled = True

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.registry: MetricsRegistry = MetricsRegistry()
        self.tracer: Tracer = Tracer(clock)
        self.call_logs: List[object] = []
        self.caches: List[object] = []
        self.engines: List[object] = []
        #: The streaming telemetry plane (``repro.obs.live``), or
        #: ``None``.  Hot paths guard with one ``is None`` check, so
        #: runs without live telemetry pay nothing.
        self.live = None
        self._verdict_counters: dict = {}

    def attach_live(self, live) -> object:
        """Install a :class:`~repro.obs.live.LiveTelemetry` plane."""
        self.live = live
        return live

    def detach_live(self) -> None:
        """Remove the streaming telemetry plane."""
        self.live = None

    def register_call_log(self, log: object) -> None:
        """Track one client's call log for end-of-run aggregation."""
        self.call_logs.append(log)

    def register_cache(self, cache: object) -> None:
        """Track one cache (anything with a ``cache_info()`` method)."""
        self.caches.append(cache)

    def register_engine(self, engine: object) -> None:
        """Track one audit engine (anything with an ``info()`` method).

        Engines register at construction so end-of-run summaries can
        render per-engine metadata and verdict breakdowns;
        ``info()`` is only called at render time (it is lazy on some
        engines).
        """
        self.engines.append(engine)

    def note_verdicts(self, engine: str, counts) -> None:
        """Count one fresh classification's verdicts per engine.

        Lazily creates ``verdicts_total{engine,verdict}`` counters —
        and only for labels with non-zero tallies — so runs that never
        classify export byte-identical metrics.
        """
        for verdict, count in counts.items():
            if not count:
                continue
            key = (engine, verdict)
            counter = self._verdict_counters.get(key)
            if counter is None:
                counter = self.registry.counter(
                    "verdicts_total",
                    help="verdicts by engine and class",
                    engine=engine, verdict=verdict)
                self._verdict_counters[key] = counter
            counter.inc(count)

    def cache_info(self) -> List[CacheInfo]:
        """Per-cache snapshots, merged by name and sorted.

        Engines that construct one cache per lane report under the
        same name; merging sums their hits/misses/evictions/sizes so
        the stats line shows one row per cache *kind*.
        """
        merged: "dict[str, CacheInfo]" = {}
        for cache in self.caches:
            info = cache.cache_info()
            prior = merged.get(info.name)
            if prior is None:
                merged[info.name] = info
            else:
                merged[info.name] = CacheInfo(
                    name=info.name,
                    hits=prior.hits + info.hits,
                    misses=prior.misses + info.misses,
                    evictions=prior.evictions + info.evictions,
                    size=prior.size + info.size)
        return [merged[name] for name in sorted(merged)]

    def call_log_summary(self) -> dict:
        """Merged per-resource aggregates across every registered log.

        Each value is ``{"calls", "items", "waited", "total_latency"}``
        (see :meth:`~repro.api.endpoints.CallLog.summary`), keyed and
        iterated in sorted resource order.
        """
        merged: dict = {}
        for log in self.call_logs:
            for resource, stats in log.summary().items():
                bucket = merged.setdefault(resource, {})
                for key, value in stats.items():
                    bucket[key] = bucket.get(key, 0) + value
        return {resource: merged[resource] for resource in sorted(merged)}


class NullObservability:
    """The disabled context: shared no-op registry/tracer, no state."""

    enabled = False
    registry: NullRegistry = NULL_REGISTRY
    tracer: NullTracer = NULL_TRACER
    call_logs: List[object] = []
    caches: List[object] = []
    engines: List[object] = []
    live = None

    def attach_live(self, live) -> object:
        """Refuse politely: the disabled context records nothing."""
        return live

    def detach_live(self) -> None:
        """Nothing to detach."""

    def register_call_log(self, log: object) -> None:
        """Ignore the log."""

    def register_cache(self, cache: object) -> None:
        """Ignore the cache."""

    def register_engine(self, engine: object) -> None:
        """Ignore the engine."""

    def note_verdicts(self, engine: str, counts) -> None:
        """Record nothing."""

    def call_log_summary(self) -> dict:
        """Always empty."""
        return {}

    def cache_info(self) -> List[CacheInfo]:
        """Always empty."""
        return []


NULL_OBS = NullObservability()

_current = NULL_OBS


def get_observability():
    """The active observability context (:data:`NULL_OBS` by default)."""
    return _current


def activate(obs: Optional[Observability] = None,
             clock: Optional[SimClock] = None) -> Observability:
    """Install ``obs`` (or a fresh context) as the active one."""
    global _current
    if obs is None:
        obs = Observability(clock)
    _current = obs
    return obs


def deactivate() -> None:
    """Restore the no-op context."""
    global _current
    _current = NULL_OBS


@contextmanager
def observed(obs: Optional[Observability] = None,
             clock: Optional[SimClock] = None) -> Iterator[Observability]:
    """Activate observability for a ``with`` block, then restore.

    Restores whatever context was active before the block, so nested
    use composes.
    """
    global _current
    previous = _current
    active = obs if obs is not None else Observability(clock)
    _current = active
    try:
        yield active
    finally:
        _current = previous
