"""Span tracing against the simulated clock.

A span is one timed unit of work — an API request, a crawl phase, an
audit, a whole experiment.  Timestamps are read from the *simulated*
clock (the component doing the work passes its own :class:`SimClock`),
so traces measure exactly what the paper measures: rate-limit-bound
virtual time, not host CPU time.  Span ids are snowflakes minted by a
dedicated :class:`~repro.core.ids.IdGenerator`, which makes them unique
and deterministic for a fixed seed.

The paper reverse-engineers closed services by observing them from
outside; a trace is the same discipline applied to our own engines —
every second of a Table II response time is attributable to a span.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.clock import SimClock
from ..core.errors import ConfigurationError
from ..core.ids import IdGenerator
from ..core.timeutil import PAPER_EPOCH

#: Worker id of the tracer's snowflake generator — the top of the
#: 10-bit worker space, far from the substrate's account/tweet workers.
TRACER_WORKER = 1023


class Span:
    """One timed, attributed unit of work.

    ``end`` stays ``None`` while the span is open; ``duration`` is the
    simulated seconds between start and end.
    """

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "attributes")

    def __init__(self, span_id: int, parent_id: Optional[int], name: str,
                 start: float, attributes: Dict[str, object]) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attributes = attributes

    def set_attribute(self, key: str, value: object) -> None:
        """Attach or overwrite one attribute."""
        self.attributes[key] = value

    @property
    def duration(self) -> float:
        """Simulated seconds from start to end (0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, start={self.start}, "
                f"end={self.end})")


class _SpanContext:
    """Context manager binding one span to the tracer's active stack."""

    __slots__ = ("_tracer", "_span", "_clock")

    def __init__(self, tracer: "Tracer", span: Span, clock: SimClock) -> None:
        self._tracer = tracer
        self._span = span
        self._clock = clock

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self._span.set_attribute("error", f"{exc_type.__name__}: {exc}")
        self._tracer._finish(self._span, self._clock.now())
        return False


class Tracer:
    """Collects nested spans in deterministic start order.

    The tracer is single-threaded by design (the whole simulation is);
    nesting is tracked with an explicit stack, so a span started while
    another is open becomes its child.

    Parameters
    ----------
    clock:
        Fallback clock for spans whose caller has no natural
        :class:`SimClock` (e.g. the experiment runner, which wraps
        experiments that each build their own clock internally).
    """

    enabled = True

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self._clock = clock if clock is not None else SimClock(PAPER_EPOCH)
        self._ids = IdGenerator(worker=TRACER_WORKER)
        self._spans: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str, clock: Optional[SimClock] = None,
             **attributes: object) -> _SpanContext:
        """Open a span; use as ``with tracer.span("api.request", clock):``.

        ``clock`` supplies the start/end timestamps — pass the component's
        own simulated clock.  Extra keyword arguments become initial span
        attributes; the yielded :class:`Span` accepts more via
        :meth:`Span.set_attribute`.
        """
        at = clock if clock is not None else self._clock
        start = at.now()
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(self._ids.next_id(start), parent, name, start,
                    dict(attributes))
        self._spans.append(span)
        self._stack.append(span)
        return _SpanContext(self, span, at)

    def record(self, name: str, start: float, end: float, *,
               parent_id: Optional[int] = None,
               **attributes: object) -> Span:
        """Append an already-finished span with explicit timestamps.

        For work whose extent is only known after the fact — the batch
        scheduler records one ``sched.lane`` span per lane *after* a
        run, spanning admission epoch to the lane's last finish, and a
        zero-duration ``sched.coalesce`` marker per folded duplicate.
        Recorded spans never join the active nesting stack; they are
        appended in recording order, which may trail the start order of
        context-manager spans.
        """
        if end < start:
            raise ConfigurationError(
                f"span {name!r} must not end before it starts: "
                f"{start!r} > {end!r}")
        span = Span(self._ids.next_id(start), parent_id, name, start,
                    dict(attributes))
        span.end = end
        self._spans.append(span)
        return span

    def _finish(self, span: Span, end: float) -> None:
        span.end = end
        # Close any abandoned inner spans too (exception unwound past them).
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            if top.end is None:  # pragma: no cover - defensive
                top.end = end

    def spans(self) -> Tuple[Span, ...]:
        """All spans recorded so far, in start order (parents first)."""
        return tuple(self._spans)

    def span_names(self) -> Tuple[str, ...]:
        """Sorted distinct span names seen so far."""
        return tuple(sorted({span.name for span in self._spans}))

    def children(self, span: Span) -> Tuple[Span, ...]:
        """Direct children of ``span``, in start order."""
        return tuple(s for s in self._spans if s.parent_id == span.span_id)

    def __len__(self) -> int:
        return len(self._spans)


class NullSpan:
    """Shared do-nothing span/context-manager for disabled tracing."""

    __slots__ = ()

    span_id = 0
    parent_id = None
    name = ""
    start = 0.0
    end = 0.0
    duration = 0.0
    attributes: Dict[str, object] = {}

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attribute(self, key: str, value: object) -> None:
        """Ignore the attribute."""


NULL_SPAN = NullSpan()


class NullTracer:
    """Tracer façade that returns the shared :data:`NULL_SPAN` singleton.

    ``with tracer.span(...)`` on the null tracer allocates nothing and
    records nothing — the disabled-observability hot path.
    """

    enabled = False

    def span(self, name: str, clock: Optional[SimClock] = None,
             **attributes: object) -> NullSpan:
        """The shared no-op span."""
        return NULL_SPAN

    def record(self, name: str, start: float, end: float, *,
               parent_id: Optional[int] = None,
               **attributes: object) -> NullSpan:
        """Discard the recording."""
        return NULL_SPAN

    def spans(self) -> Tuple[Span, ...]:
        """Always empty."""
        return ()

    def span_names(self) -> Tuple[str, ...]:
        """Always empty."""
        return ()

    def children(self, span: object) -> Tuple[Span, ...]:
        """Always empty."""
        return ()

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()
