"""Trace-driven performance analysis: where does simulated time go?

PR 1 records spans and metrics; PR 3 makes batch runs fast.  This
module closes the loop — it consumes :class:`~repro.obs.trace.Tracer`
spans and answers the question the ROADMAP's north star presumes an
answer to ("every PR makes a hot path measurably faster" — *which*
path?):

* **Phase attribution** decomposes each audit's simulated duration
  into the acquisition phases of Section II — target resolution,
  follower-frame paging, sampled profile lookups, timeline fetches,
  classification, cache serves — per engine.  It is a simulated-time
  decomposition of Table II.
* **Lane timelines** lay a batch run's ``sched.slot.step`` spans out
  per lane/slot (JSON and an ASCII Gantt), making window-utilization
  gaps visible.
* **Critical-path extraction** names the lane/slot chain whose last
  finish *is* the batch makespan — the segment sequence a perf PR must
  shorten for the batch to get faster.

Everything here is a pure function of recorded spans: deterministic
for a fixed seed, byte-stable when rendered, and therefore usable as
regression fixtures (see :mod:`repro.obs.perf`).

Attribution sums are exact by construction: every phase bucket is the
summed duration of *direct* children of one audit (or of one audit's
scheduled step group), and the ``other`` bucket is defined as the
parent total minus the mapped children — so per-audit phases always
add up to the audit's total simulated duration (within float error).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.errors import ConfigurationError
from .trace import Span

#: Span name → attribution phase.  ``api.request`` only reaches an
#: audit *directly* for the initial profile resolution (every other
#: request nests inside a ``crawl.*`` phase span), so at this level it
#: unambiguously means "resolve the target".
PHASE_BY_SPAN: Mapping[str, str] = {
    "api.request": "resolve",
    "crawl.followers": "frame",
    "crawl.lookup": "sample_lookup",
    "crawl.timelines": "timelines",
    "audit.classify": "classify",
    "audit.cache_serve": "cache_serve",
}

#: Canonical phase order, ``other`` (unattributed remainder) last.
PHASES: Tuple[str, ...] = (
    "resolve", "frame", "sample_lookup", "timelines",
    "classify", "cache_serve", "other")


@dataclass(frozen=True)
class AuditAttribution:
    """One audit's simulated duration, decomposed into phases.

    ``source`` records which trace shape produced it: ``"audit"`` for
    a blocking-mode audit span, ``"sched"`` for a scheduled audit
    reassembled from its ``sched.slot.step`` group.  The phase values
    always sum to ``total`` (the ``other`` bucket absorbs whatever no
    child span claims — queue gaps inside a step, report assembly).
    """

    tool: str
    target: str
    start: float
    end: float
    total: float
    cached: bool
    source: str
    phases: Dict[str, float] = field(default_factory=dict)


def _spans_of(source) -> Tuple[Span, ...]:
    """Accept a tracer, an observability context, or a span sequence."""
    tracer = getattr(source, "tracer", source)
    spans = getattr(tracer, "spans", None)
    if callable(spans):
        return tuple(spans())
    return tuple(source)


def _child_index(spans: Sequence[Span]) -> Dict[int, List[Span]]:
    children: Dict[int, List[Span]] = {}
    for span in spans:
        if span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)
    return children


def _phase_buckets(kids: Iterable[Span]) -> Tuple[Dict[str, float], float]:
    phases = {phase: 0.0 for phase in PHASES}
    mapped = 0.0
    for kid in kids:
        phase = PHASE_BY_SPAN.get(kid.name)
        if phase is None:
            continue
        phases[phase] += kid.duration
        mapped += kid.duration
    return phases, mapped


def attribute_all(source) -> Tuple[AuditAttribution, ...]:
    """Decompose every audit in a trace into per-phase durations.

    Handles both trace shapes the repo produces:

    * blocking audits (serial experiments, the scheduler's serial
      baseline) open an ``audit`` span whose direct children are the
      phase spans;
    * scheduled audits never open an ``audit`` span (one held across
      interleaved steps would corrupt the tracer's nesting stack), so
      their ``sched.slot.step`` spans — contiguous on the slot's own
      clock — are grouped by ``(lane, seq)`` and their children pooled.
      Step groups that *do* contain an ``audit`` child (serial-mode
      scheduler runs wrap blocking audits) are skipped: those audits
      are already counted by the first shape.
    """
    spans = _spans_of(source)
    children = _child_index(spans)
    out: List[AuditAttribution] = []
    for span in spans:
        if span.name != "audit":
            continue
        kids = children.get(span.span_id, [])
        phases, mapped = _phase_buckets(kids)
        phases["other"] = max(0.0, span.duration - mapped)
        out.append(AuditAttribution(
            tool=str(span.attributes.get("tool", "?")),
            target=str(span.attributes.get("target", "?")),
            start=span.start,
            end=span.end if span.end is not None else span.start,
            total=span.duration,
            cached=bool(span.attributes.get("cached", False)),
            source="audit",
            phases=phases))
    groups: Dict[Tuple[str, int], List[Span]] = {}
    for span in spans:
        if span.name != "sched.slot.step":
            continue
        key = (str(span.attributes.get("lane", "?")),
               int(span.attributes.get("seq", -1)))  # type: ignore[arg-type]
        groups.setdefault(key, []).append(span)
    for (lane, __), steps in groups.items():
        kids = [kid for step in steps
                for kid in children.get(step.span_id, [])]
        if any(kid.name == "audit" for kid in kids):
            continue
        phases, mapped = _phase_buckets(kids)
        total = sum(step.duration for step in steps)
        phases["other"] = max(0.0, total - mapped)
        out.append(AuditAttribution(
            tool=lane,
            target=str(steps[0].attributes.get("target", "?")),
            start=min(step.start for step in steps),
            end=max(step.end if step.end is not None else step.start
                    for step in steps),
            total=total,
            cached=any(kid.name == "audit.cache_serve" for kid in kids),
            source="sched",
            phases=phases))
    out.sort(key=lambda a: (a.start, a.tool, a.target))
    return tuple(out)


def phase_totals(attributions: Sequence[AuditAttribution]
                 ) -> Dict[str, Dict[str, float]]:
    """Per-engine phase totals, keyed and iterated in sorted order."""
    totals: Dict[str, Dict[str, float]] = {}
    for attribution in attributions:
        bucket = totals.setdefault(
            attribution.tool, {phase: 0.0 for phase in PHASES})
        for phase, seconds in attribution.phases.items():
            bucket[phase] += seconds
    return {tool: totals[tool] for tool in sorted(totals)}


def render_phase_attribution(source_or_attributions) -> str:
    """ASCII table of per-engine phase totals (simulated seconds)."""
    if (source_or_attributions
            and isinstance(source_or_attributions, (list, tuple))
            and isinstance(source_or_attributions[0], AuditAttribution)):
        attributions: Sequence[AuditAttribution] = source_or_attributions
    else:
        attributions = attribute_all(source_or_attributions)
    totals = phase_totals(attributions)
    headers = ("engine", "audits", "total s") + PHASES
    rows: List[Tuple[str, ...]] = []
    for tool, buckets in totals.items():
        count = sum(1 for a in attributions if a.tool == tool)
        total = sum(a.total for a in attributions if a.tool == tool)
        rows.append((tool, str(count), f"{total:.1f}")
                    + tuple(f"{buckets[phase]:.1f}" for phase in PHASES))
    lines = ["phase attribution (simulated seconds)"]
    if not rows:
        lines.append("(no audits recorded)")
        return "\n".join(lines)
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(cells: Tuple[str, ...]) -> str:
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()

    lines.append(fmt(headers))
    lines.append(fmt(tuple("-" * width for width in widths)))
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Lane timelines (Gantt) and the critical path
# ---------------------------------------------------------------------------

def lane_timeline(source) -> Dict[str, object]:
    """A JSON-able Gantt of one batch run's lanes, slots and segments.

    Built from ``sched.lane`` spans (lane extents), ``sched.slot.step``
    spans grouped into per-audit segments, and ``sched.coalesce``
    markers.  Returns an empty-lane document when the trace holds no
    scheduler spans (e.g. a purely serial run).
    """
    spans = _spans_of(source)
    lane_spans = [span for span in spans if span.name == "sched.lane"]
    epoch = min((span.start for span in lane_spans), default=0.0)
    end = max((span.end if span.end is not None else span.start
               for span in lane_spans), default=0.0)
    segments: Dict[Tuple[str, int, int], Dict[str, object]] = {}
    for span in spans:
        if span.name != "sched.slot.step":
            continue
        lane = str(span.attributes.get("lane", "?"))
        slot = int(span.attributes.get("slot", 0))  # type: ignore[arg-type]
        seq = int(span.attributes.get("seq", -1))  # type: ignore[arg-type]
        span_end = span.end if span.end is not None else span.start
        segment = segments.get((lane, slot, seq))
        if segment is None:
            segments[(lane, slot, seq)] = {
                "seq": seq,
                "target": str(span.attributes.get("target", "?")),
                "start": span.start,
                "end": span_end,
                "steps": 1,
            }
        else:
            segment["start"] = min(segment["start"], span.start)  # type: ignore[type-var]
            segment["end"] = max(segment["end"], span_end)  # type: ignore[type-var]
            segment["steps"] = int(segment["steps"]) + 1
    lanes: List[Dict[str, object]] = []
    for lane_span in sorted(lane_spans, key=lambda s: str(s.attributes.get("lane"))):
        lane = str(lane_span.attributes.get("lane", "?"))
        slot_ids = sorted({slot for (name, slot, __) in segments
                           if name == lane})
        slots = []
        for slot in slot_ids:
            slot_segments = sorted(
                (dict(segment) for (name, seg_slot, __), segment
                 in segments.items()
                 if name == lane and seg_slot == slot),
                key=lambda segment: (segment["start"], segment["seq"]))
            busy = sum(float(segment["end"]) - float(segment["start"])
                       for segment in slot_segments)
            slots.append({"slot": slot, "segments": slot_segments,
                          "busy_seconds": busy})
        lanes.append({
            "lane": lane,
            "start": lane_span.start,
            "end": lane_span.end if lane_span.end is not None
            else lane_span.start,
            "items": lane_span.attributes.get("items", 0),
            "errors": lane_span.attributes.get("errors", 0),
            "slots": slots,
        })
    coalesced = [
        {"lane": str(span.attributes.get("lane", "?")),
         "target": str(span.attributes.get("target", "?")),
         "seq": span.attributes.get("seq"),
         "at": span.start}
        for span in spans if span.name == "sched.coalesce"
    ]
    return {
        "epoch": epoch,
        "end": end,
        "makespan_seconds": max(0.0, end - epoch),
        "lanes": lanes,
        "coalesced": coalesced,
    }


def render_lane_timeline(timeline: Union[Dict[str, object], object],
                         width: int = 60) -> str:
    """ASCII Gantt of a :func:`lane_timeline` document.

    One row per lane/slot; segments alternate ``#`` and ``=`` so
    back-to-back audits stay distinguishable; idle simulated time shows
    as ``.``.  Deterministic for a fixed trace, so the rendering is
    golden-testable.
    """
    if not isinstance(timeline, dict):
        timeline = lane_timeline(timeline)
    if width < 10:
        raise ConfigurationError(f"width must be >= 10: {width!r}")
    epoch = float(timeline["epoch"])  # type: ignore[arg-type]
    makespan = float(timeline["makespan_seconds"])  # type: ignore[arg-type]
    lanes = timeline["lanes"]
    header = (f"lane timeline  epoch={epoch:.0f}  "
              f"makespan={makespan:.0f}s")
    if not lanes:
        return header + "\n(no scheduler lanes recorded)"
    scale = makespan / width if makespan > 0 else 1.0
    header += f"  (1 col = {scale:.0f}s)"
    labels = [f"{lane['lane']}/{slot['slot']}"
              for lane in lanes for slot in lane["slots"]]  # type: ignore[index]
    label_width = max(len(label) for label in labels) if labels else 0
    lines = [header]
    for lane in lanes:  # type: ignore[assignment]
        for slot in lane["slots"]:  # type: ignore[index]
            cells = ["."] * width
            for index, segment in enumerate(slot["segments"]):
                left = int((float(segment["start"]) - epoch) / scale) \
                    if makespan > 0 else 0
                right = int((float(segment["end"]) - epoch) / scale) \
                    if makespan > 0 else 0
                left = min(left, width - 1)
                right = min(max(right, left + 1), width)
                mark = "#" if index % 2 == 0 else "="
                for column in range(left, right):
                    cells[column] = mark
            label = f"{lane['lane']}/{slot['slot']}"
            busy = float(slot["busy_seconds"])
            lines.append(
                f"{label.ljust(label_width)} |{''.join(cells)}| "
                f"{len(slot['segments'])} audits, {busy:.0f}s busy")
    if timeline["coalesced"]:
        lines.append(f"coalesced: {len(timeline['coalesced'])} "  # type: ignore[arg-type]
                     f"duplicate submissions folded")
    return "\n".join(lines)


def critical_path(source) -> Dict[str, object]:
    """The lane/slot chain whose last finish equals the batch makespan.

    Returns a document naming the critical lane and slot, the ordered
    segments executed on it, and how much of the makespan that slot
    spent idle (gaps a better schedule could reclaim).  Empty when the
    trace holds no scheduler spans.
    """
    timeline = lane_timeline(source)
    best: Optional[Tuple[float, str, Dict[str, object]]] = None
    for lane in timeline["lanes"]:  # type: ignore[union-attr]
        for slot in lane["slots"]:  # type: ignore[index]
            slot_end = max(
                (float(segment["end"]) for segment in slot["segments"]),
                default=float(timeline["epoch"]))  # type: ignore[arg-type]
            if best is None or slot_end > best[0]:
                best = (slot_end, str(lane["lane"]), slot)
    if best is None:
        return {"lane": None, "slot": None,
                "makespan_seconds": 0.0, "segments": [],
                "busy_seconds": 0.0, "idle_seconds": 0.0}
    slot_end, lane_name, slot = best
    epoch = float(timeline["epoch"])  # type: ignore[arg-type]
    busy = float(slot["busy_seconds"])
    return {
        "lane": lane_name,
        "slot": slot["slot"],
        "makespan_seconds": slot_end - epoch,
        "segments": slot["segments"],
        "busy_seconds": busy,
        "idle_seconds": max(0.0, slot_end - epoch - busy),
    }


def render_critical_path(path: Union[Dict[str, object], object]) -> str:
    """Human-readable listing of :func:`critical_path`."""
    if not isinstance(path, dict):
        path = critical_path(path)
    if path["lane"] is None:
        return "critical path: (no scheduler lanes recorded)"
    lines = [
        f"critical path: lane {path['lane']} slot {path['slot']} — "
        f"{float(path['makespan_seconds']):.0f}s makespan, "  # type: ignore[arg-type]
        f"{float(path['busy_seconds']):.0f}s busy, "  # type: ignore[arg-type]
        f"{float(path['idle_seconds']):.0f}s idle"  # type: ignore[arg-type]
    ]
    for segment in path["segments"]:  # type: ignore[union-attr]
        duration = float(segment["end"]) - float(segment["start"])
        lines.append(
            f"  seq {segment['seq']:>3}  @{segment['target']:<20} "
            f"{duration:>8.0f}s  ({int(segment['steps'])} steps)")
    return "\n".join(lines)
