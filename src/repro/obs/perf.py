"""Perf baseline store and regression detector.

``repro perf record`` runs the canonical scheduler workload (the
20-account testbed) under observability and writes ``BENCH_perf.json``
— makespan, per-engine phase totals, cache hit ratios, retry/backoff
waits, and the batch's critical path — as a canonical JSON document:
sorted keys, two-space indent, floats rounded to six decimals.  A
fixed seed therefore yields a byte-identical artifact, which is what
lets the file live in git as the repo's recorded perf trajectory.

``repro perf diff <baseline>`` re-runs the workload the baseline
recorded (or loads ``--current``) and compares the flattened documents
leaf by leaf under per-class tolerances.  Any breach makes the CLI
exit non-zero — the CI ``perf-gate`` job is just this command.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError
from .analysis import attribute_all, critical_path, phase_totals
from .metrics import Histogram

#: Format version of ``BENCH_perf.json``.  Bump on shape changes; the
#: differ treats a version mismatch as an automatic breach.  The
#: optional ``wallclock``, ``substrate`` and ``delta`` sections are
#: additive — documents with and without them share the schema (see
#: :func:`diff_perf`'s skip rule).
PERF_SCHEMA = 1


def measure_wallclock(fn: Callable[[], object], repeats: int = 5) -> float:
    """Median of ``repeats`` monotonic timings of ``fn()``, in seconds.

    The **wallclock** measurement class: unlike every other number in a
    perf document these are real, machine-local timings — not
    byte-stable, not comparable across hosts, useful only as
    order-of-magnitude regression tripwires under a generous tolerance
    (:attr:`PerfTolerances.wallclock_pct`).  The median of an odd ``k``
    (the upper middle for even ``k``) shrugs off one slow outlier run.
    """
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1: {repeats!r}")
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return sorted(timings)[len(timings) // 2]


def _round(value: float) -> float:
    return round(float(value), 6)


def _family_sum(registry, name: str, **match: object) -> float:
    """Sum one family over series whose labels match ``match``.

    Histograms contribute their ``sum``, counters/gauges their value.
    """
    wanted = {key: str(value) for key, value in match.items()}
    total = 0.0
    for series_name, __, labels, instrument in registry.series():
        if series_name != name:
            continue
        label_map = dict(labels)
        if any(label_map.get(key) != value for key, value in wanted.items()):
            continue
        if isinstance(instrument, Histogram):
            total += instrument.sum
        else:
            total += instrument.value  # type: ignore[union-attr]
    return total


def collect_perf(obs, report, workload: Dict[str, object], *,
                 wallclock: Optional[Dict[str, object]] = None,
                 substrate: Optional[Dict[str, object]] = None,
                 delta: Optional[Dict[str, object]] = None
                 ) -> Dict[str, object]:
    """Assemble the canonical perf document from one observed batch run.

    ``obs`` is the :class:`~repro.obs.runtime.Observability` the run
    executed under, ``report`` the scheduler's
    :class:`~repro.sched.report.BatchReport`, and ``workload`` the
    parameters that produced it (recorded verbatim so ``perf diff``
    can re-run the identical workload later).  ``wallclock`` — when
    provided — is stored as an additional ``wallclock`` section of
    real-time measurements; it is the only part of the document that
    is *not* byte-stable across machines (see
    :func:`measure_wallclock`), and the differ treats its keys as
    optional on either side.  ``substrate`` — when provided — is the
    **substrate** measurement class: columnar chunk-store telemetry
    (chunks materialized, rows generated, gather calls — deterministic
    counters gated at :attr:`PerfTolerances.counter_pct`) plus column
    page latencies (``*_seconds`` keys, real timings gated like
    wallclock); its keys are likewise optional on either side.
    ``delta`` — when provided — is the **delta** measurement class
    (see :func:`repro.experiments.perf.measure_delta`): the API-call
    and makespan bills of a watermarked fleet re-audit sweep against a
    full one.  Every number in it comes off the simulated clock, so
    the whole section is deterministic and gates at the counter
    tolerance; its keys are optional on either side like the other
    opt-in classes.
    """
    attributions = attribute_all(obs.tracer)
    totals = phase_totals(attributions)
    registry = obs.registry
    result_hits = _family_sum(registry, "cache_events_total", event="hit")
    result_misses = _family_sum(registry, "cache_events_total", event="miss")
    lookups = result_hits + result_misses
    path = critical_path(obs.tracer)
    doc: Dict[str, object] = {
        "schema": PERF_SCHEMA,
        "workload": dict(workload),
        "makespan_seconds": _round(report.makespan_seconds),
        "audits": len(report.items),
        "errors": len(report.failed),
        "coalesced_hits": report.coalesced_hits,
        "phase_totals_seconds": {
            tool: {phase: _round(seconds)
                   for phase, seconds in buckets.items()}
            for tool, buckets in totals.items()
        },
        "cache": {
            "lookups": int(lookups),
            "hits": int(result_hits),
            "hit_ratio": _round(result_hits / lookups) if lookups else 0.0,
            "acq_cache_hits": int(_family_sum(
                registry, "acq_cache_hits_total")),
        },
        "api": {
            "requests_total": int(_family_sum(
                registry, "api_requests_total")),
            "items_total": int(_family_sum(registry, "api_items_total")),
            "ratelimit_wait_seconds": _round(_family_sum(
                registry, "api_ratelimit_wait_seconds")),
        },
        "faults": {
            "injected_total": int(_family_sum(
                registry, "faults_injected_total")),
            "retries_total": int(_family_sum(registry, "api_retries_total")),
            "backoff_wait_seconds": _round(_family_sum(
                registry, "api_backoff_wait_seconds")),
        },
        "critical_path": {
            "lane": path["lane"],
            "slot": path["slot"],
            "busy_seconds": _round(path["busy_seconds"]),  # type: ignore[arg-type]
            "idle_seconds": _round(path["idle_seconds"]),  # type: ignore[arg-type]
        },
    }
    if wallclock is not None:
        doc["wallclock"] = dict(wallclock)
    if substrate is not None:
        doc["substrate"] = dict(substrate)
    if delta is not None:
        doc["delta"] = dict(delta)
    return doc


def render_perf_json(doc: Dict[str, object]) -> str:
    """The canonical byte-stable serialisation of a perf document."""
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def write_perf_json(doc: Dict[str, object], path) -> "pathlib.Path":
    """Write the canonical serialisation to ``path`` and return it."""
    target = pathlib.Path(path)
    target.write_text(render_perf_json(doc), encoding="utf-8")
    return target


def load_perf_json(path) -> Dict[str, object]:
    """Load a perf document written by :func:`write_perf_json`."""
    source = pathlib.Path(path)
    try:
        doc = json.loads(source.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        raise ConfigurationError(
            f"cannot load perf baseline {str(source)!r}: {error}")
    if not isinstance(doc, dict):
        raise ConfigurationError(
            f"perf baseline {str(source)!r} is not a JSON object")
    return doc


# ---------------------------------------------------------------------------
# Diffing
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PerfTolerances:
    """Per-class tolerances of the regression gate.

    Timing classes are relative (percent of the baseline value); hit
    ratios compare absolutely.  A baseline value of zero tolerates
    only zero (any appearance of a new cost is a breach).  The
    ``wallclock`` class is deliberately loose: real timings swing with
    machine load, so only order-of-magnitude regressions should trip
    the gate.
    """

    makespan_pct: float = 5.0
    phase_pct: float = 10.0
    counter_pct: float = 10.0
    ratio_abs: float = 0.05
    wallclock_pct: float = 200.0


@dataclass(frozen=True)
class PerfBreach:
    """One tolerance violation found by :func:`diff_perf`."""

    key: str
    baseline: object
    current: object
    reason: str

    def render(self) -> str:
        """One diff line, ``BREACH <key>: <base> -> <cur> (<why>)``."""
        return (f"BREACH {self.key}: {self.baseline!r} -> "
                f"{self.current!r} ({self.reason})")


def _flatten(doc: Dict[str, object], prefix: str = ""
             ) -> Dict[str, object]:
    flat: Dict[str, object] = {}
    for key in sorted(doc):
        dotted = f"{prefix}{key}"
        value = doc[key]
        if isinstance(value, dict):
            flat.update(_flatten(value, dotted + "."))
        else:
            flat[dotted] = value
    return flat


def _tolerance_for(key: str, tolerances: PerfTolerances
                   ) -> Tuple[str, float]:
    """The tolerance class of one flattened key: (kind, limit)."""
    if key.startswith("wallclock."):
        return "pct", tolerances.wallclock_pct
    if key.startswith("substrate."):
        # Mixed class: real page-latency timings get the loose
        # wallclock tolerance, the chunk-store counters are
        # deterministic and gate like any other counter.
        if key.endswith("_seconds"):
            return "pct", tolerances.wallclock_pct
        return "pct", tolerances.counter_pct
    if key.startswith("delta."):
        # Entirely simulated-clock numbers (even the makespans), so
        # the whole class is deterministic and gates like a counter.
        return "pct", tolerances.counter_pct
    if key.endswith("_ratio"):
        return "abs", tolerances.ratio_abs
    if key == "makespan_seconds":
        return "pct", tolerances.makespan_pct
    if key.startswith("phase_totals_seconds."):
        return "pct", tolerances.phase_pct
    return "pct", tolerances.counter_pct


def diff_perf(baseline: Dict[str, object], current: Dict[str, object],
              tolerances: Optional[PerfTolerances] = None
              ) -> Tuple[List[PerfBreach], int]:
    """Compare two perf documents; return (breaches, leaves compared).

    The ``workload`` and ``schema`` sections must match exactly — a
    diff between different workloads is meaningless, so a mismatch is
    itself a breach.  Every other numeric leaf is compared under its
    tolerance class; non-numeric leaves (critical-path lane names)
    must be equal.  Missing or extra leaves always breach — except
    ``wallclock.*``, ``substrate.*`` and ``delta.*`` leaves, which are
    opt-in measurement classes: a baseline recorded with
    ``--wallclock``, ``--substrate`` or ``--delta`` must still gate a
    current document recorded without them (and vice versa), so a leaf
    of any of these classes present on only one side is skipped, not
    breached.
    """
    if tolerances is None:
        tolerances = PerfTolerances()
    base_flat = _flatten(baseline)
    cur_flat = _flatten(current)
    breaches: List[PerfBreach] = []
    compared = 0
    for key in sorted(set(base_flat) | set(cur_flat)):
        optional = key.startswith(("wallclock.", "substrate.", "delta."))
        if key not in cur_flat:
            if optional:
                continue
            breaches.append(PerfBreach(key, base_flat[key], None,
                                       "missing from current"))
            continue
        if key not in base_flat:
            if optional:
                continue
            breaches.append(PerfBreach(key, None, cur_flat[key],
                                       "not in baseline"))
            continue
        base, cur = base_flat[key], cur_flat[key]
        compared += 1
        if key == "schema" or key.startswith("workload."):
            if base != cur:
                breaches.append(PerfBreach(key, base, cur,
                                           "workload/schema mismatch"))
            continue
        if not isinstance(base, (int, float)) \
                or not isinstance(cur, (int, float)) \
                or isinstance(base, bool) or isinstance(cur, bool):
            if base != cur:
                breaches.append(PerfBreach(key, base, cur, "value changed"))
            continue
        kind, limit = _tolerance_for(key, tolerances)
        if kind == "abs":
            if abs(cur - base) > limit:
                breaches.append(PerfBreach(
                    key, base, cur,
                    f"|delta| {abs(cur - base):.4f} > {limit:.4f}"))
            continue
        if base == 0:
            if cur != 0:
                breaches.append(PerfBreach(
                    key, base, cur, "baseline is zero; any change breaches"))
            continue
        delta_pct = 100.0 * (cur - base) / abs(base)
        if abs(delta_pct) > limit:
            breaches.append(PerfBreach(
                key, base, cur,
                f"{delta_pct:+.1f}% outside +/-{limit:g}%"))
    return breaches, compared


def render_perf_diff(breaches: Sequence[PerfBreach], compared: int,
                     baseline_name: str) -> str:
    """Render a diff outcome the way the CLI prints it."""
    head = (f"perf diff vs {baseline_name}: {compared} leaves compared, "
            f"{len(breaches)} breach(es)")
    if not breaches:
        return head + "\nall within tolerance"
    return "\n".join([head] + ["  " + breach.render()
                               for breach in breaches])
