"""The simulated Twitter REST client.

Every request (i) waits for the resource's token bucket, (ii) consumes
one request token, (iii) advances the shared simulated clock by the
request latency, and (iv) is recorded in a :class:`CallLog`.  Timing
experiments simply read the clock before and after an engine runs.

Two knobs distinguish the paper's actors:

``credentials``
    independent OAuth tokens rotated through (multiplies rate budgets);
``parallelism``
    concurrent HTTP connections (divides effective per-request latency).

The authors' FC engine runs with one credential and one connection; the
commercial tools run fleets (see ``repro.analytics``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.clock import SimClock
from ..core.errors import ConfigurationError, InvalidCursorError, UnknownAccountError
from ..obs.metrics import LATENCY_BUCKETS, WAIT_BUCKETS
from ..obs.runtime import get_observability
from ..twitter.population import World
from ..twitter.tweet import Tweet
from .endpoints import ApiCall, CallLog, IdsPage, UserObject
from .ratelimit import DEFAULT_POLICIES, RateLimiter, RateLimitPolicy

#: Default simulated round-trip latency of one API request, seconds.
#: Calibrated so the FC engine's first-analysis response times land in
#: the 180-220 s band the paper reports (Table II).
DEFAULT_REQUEST_LATENCY = 1.9


class TwitterApiClient:
    """Rate-limited, latency-charging façade over a :class:`World`."""

    def __init__(
            self,
            world: World,
            clock: SimClock,
            *,
            credentials: int = 1,
            parallelism: int = 1,
            request_latency: float = DEFAULT_REQUEST_LATENCY,
            policies=DEFAULT_POLICIES,
    ) -> None:
        if parallelism < 1:
            raise ConfigurationError(f"parallelism must be >= 1: {parallelism!r}")
        if request_latency < 0:
            raise ConfigurationError(
                f"request_latency must be non-negative: {request_latency!r}")
        self._world = world
        self._clock = clock
        self._credentials = credentials
        self._policies = policies
        obs = get_observability()
        self._tracer = obs.tracer
        self._registry = obs.registry
        self._limiter = RateLimiter(clock.now(), policies, credentials,
                                    registry=self._registry)
        self._latency = request_latency / parallelism
        self._log = CallLog()
        # Per-resource (requests, items, latency, wait) instrument
        # handles, resolved lazily so the no-op and real paths share one
        # dict lookup per request.
        self._instruments = {}
        obs.register_call_log(self._log)

    def reset_budgets(self) -> None:
        """Start from fresh, full rate-limit windows.

        Models an operator rotating to unused credentials (or simply
        waiting out the 15-minute window) between audits; experiment
        runners call this so consecutive audits are timed the way the
        paper timed them — each against fresh budgets.
        """
        self._limiter = RateLimiter(
            self._clock.now(), self._policies, self._credentials,
            registry=self._registry)

    @property
    def clock(self) -> SimClock:
        """The shared simulated clock."""
        return self._clock

    @property
    def call_log(self) -> CallLog:
        """Record of every request issued through this client."""
        return self._log

    def policy(self, resource: str) -> RateLimitPolicy:
        """Expose the active rate-limit policy of a resource."""
        return self._limiter.policy(resource)

    def _resource_instruments(self, resource: str):
        """The (requests, items, latency, wait) handles for a resource."""
        handles = self._instruments.get(resource)
        if handles is None:
            registry = self._registry
            handles = (
                registry.counter(
                    "api_requests_total",
                    help="requests issued, by API resource",
                    resource=resource),
                registry.counter(
                    "api_items_total",
                    help="elements returned, by API resource",
                    resource=resource),
                registry.histogram(
                    "api_request_latency_seconds", LATENCY_BUCKETS,
                    help="request wall time incl. rate-limit wait",
                    resource=resource),
                registry.histogram(
                    "api_ratelimit_wait_seconds", WAIT_BUCKETS,
                    help="seconds spent waiting for the token bucket",
                    resource=resource),
            )
            self._instruments[resource] = handles
        return handles

    def _execute(self, resource: str, items: int) -> float:
        """Charge one request: rate-limit wait + latency.  Returns 'now'."""
        requests, items_counter, latency_hist, wait_hist = \
            self._resource_instruments(resource)
        with self._tracer.span("api.request", self._clock,
                               resource=resource) as span:
            issued = self._clock.now()
            waited = self._limiter.wait_time(resource, issued)
            if waited > 0:
                self._clock.advance(waited)
            self._limiter.consume(resource, self._clock.now())
            self._clock.advance(self._latency)
            completed = self._clock.now()
            self._log.record(ApiCall(
                resource=resource,
                issued_at=issued,
                completed_at=completed,
                waited=waited,
                items=items,
            ))
            requests.inc()
            items_counter.inc(items)
            latency_hist.observe(completed - issued)
            wait_hist.observe(waited)
            span.set_attribute("waited", waited)
            span.set_attribute("items", items)
        return completed

    # -- users ----------------------------------------------------------------

    def users_show(self, *, screen_name: Optional[str] = None,
                   user_id: Optional[int] = None) -> UserObject:
        """``GET users/show`` — resolve one profile by handle or id.

        Charged against the ``users/lookup`` budget (the real endpoint
        had a separate but equal-magnitude limit; folding them keeps
        Table I authoritative).
        """
        if (screen_name is None) == (user_id is None):
            raise ConfigurationError(
                "exactly one of screen_name/user_id must be given")
        now = self._clock.now()
        if screen_name is not None:
            account = self._world.account_by_name(screen_name, now)
        else:
            account = self._world.account_by_id(user_id, now)
        self._execute("users/lookup", 1)
        return UserObject.from_account(account)

    def users_lookup(self, user_ids: Sequence[int]) -> List[UserObject]:
        """``GET users/lookup`` — up to 100 profiles per request.

        Unknown ids are silently omitted from the response, as the real
        endpoint does.
        """
        policy = self._limiter.policy("users/lookup")
        if not 1 <= len(user_ids) <= policy.elements_per_request:
            raise ConfigurationError(
                f"users/lookup takes 1..{policy.elements_per_request} ids, "
                f"got {len(user_ids)}")
        now = self._execute("users/lookup", len(user_ids))
        users: List[UserObject] = []
        for uid in user_ids:
            try:
                users.append(UserObject.from_account(
                    self._world.account_by_id(uid, now)))
            except UnknownAccountError:
                continue
        return users

    # -- follower / friend listings ---------------------------------------------

    def _ids_page(self, resource: str, total: int, fetch, cursor: int,
                  count: Optional[int]) -> IdsPage:
        policy = self._limiter.policy(resource)
        page_size = policy.elements_per_request if count is None else count
        if not 1 <= page_size <= policy.elements_per_request:
            raise ConfigurationError(
                f"{resource} count must be 1..{policy.elements_per_request}")
        if cursor == -1:
            offset = 0
        elif cursor > 0:
            offset = cursor
        else:
            raise InvalidCursorError(f"bad cursor: {cursor!r}")
        now = self._execute(resource, 0)
        # `offset` counts newest-first; chronological positions run the
        # other way.  Twitter returns followers newest-first — the fact
        # the paper establishes in Section IV-B.
        start_newest = min(offset, total)
        stop_newest = min(offset + page_size, total)
        chrono_start = total - stop_newest
        chrono_stop = total - start_newest
        chronological = fetch(chrono_start, chrono_stop, now)
        ids = tuple(int(uid) for uid in reversed(list(chronological)))
        next_cursor = stop_newest if stop_newest < total else 0
        previous_cursor = -start_newest if start_newest > 0 else 0
        return IdsPage(ids=ids, next_cursor=next_cursor,
                       previous_cursor=previous_cursor)

    def followers_ids(self, *, screen_name: Optional[str] = None,
                      user_id: Optional[int] = None,
                      cursor: int = -1,
                      count: Optional[int] = None) -> IdsPage:
        """``GET followers/ids`` — one page of follower ids, newest first."""
        uid = self._resolve(screen_name, user_id)
        now = self._clock.now()
        total = self._world.follower_count(uid, now)
        return self._ids_page(
            "followers/ids", total,
            lambda start, stop, at: self._world.follower_ids(uid, start, stop, at),
            cursor, count)

    def friends_ids(self, *, screen_name: Optional[str] = None,
                    user_id: Optional[int] = None,
                    cursor: int = -1,
                    count: Optional[int] = None) -> IdsPage:
        """``GET friends/ids`` — one page of followed-account ids, newest first."""
        uid = self._resolve(screen_name, user_id)
        now = self._clock.now()
        total = self._world.friend_count(uid, now)
        return self._ids_page(
            "friends/ids", total,
            lambda start, stop, at: self._world.friend_ids(uid, start, stop, at),
            cursor, count)

    def _resolve(self, screen_name: Optional[str], user_id: Optional[int]) -> int:
        if (screen_name is None) == (user_id is None):
            raise ConfigurationError(
                "exactly one of screen_name/user_id must be given")
        if user_id is not None:
            return user_id
        return self._world.account_by_name(screen_name, self._clock.now()).user_id

    # -- timelines ---------------------------------------------------------------

    def user_timeline(self, user_id: int, count: Optional[int] = None) -> List[Tweet]:
        """``GET statuses/user_timeline`` — recent tweets, newest first.

        At most 200 per request; overall timeline depth is capped at
        3200 by the service (enforced by the world's timeline model).
        """
        policy = self._limiter.policy("statuses/user_timeline")
        page = policy.elements_per_request if count is None else count
        if not 1 <= page <= policy.elements_per_request:
            raise ConfigurationError(
                f"statuses/user_timeline count must be "
                f"1..{policy.elements_per_request}")
        now = self._execute("statuses/user_timeline", page)
        return self._world.timeline(user_id, page, now)
