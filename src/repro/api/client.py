"""The simulated Twitter REST client.

Every request (i) waits for the resource's token bucket, (ii) consumes
one request token, (iii) advances the shared simulated clock by the
request latency, and (iv) is recorded in a :class:`CallLog`.  Timing
experiments simply read the clock before and after an engine runs.

Two knobs distinguish the paper's actors:

``credentials``
    independent OAuth tokens rotated through (multiplies rate budgets);
``parallelism``
    concurrent HTTP connections (divides effective per-request latency).

The authors' FC engine runs with one credential and one connection; the
commercial tools run fleets (see ``repro.analytics``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.clock import SimClock
from ..core.errors import (
    ConfigurationError,
    InvalidCursorError,
    RateLimitExceededError,
    RequestTimeoutError,
    RetryableApiError,
    StaleCursorError,
    TransientServerError,
)
from ..faults.injectors import Fault, FaultInjector
from ..faults.plan import FaultPlan
from ..faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy, RetryState
from ..obs.metrics import LATENCY_BUCKETS, WAIT_BUCKETS
from ..obs.runtime import get_observability
from ..twitter.population import World
from ..twitter.tweet import Tweet
from .endpoints import ApiCall, CallLog, IdsPage, UserObject
from .ratelimit import DEFAULT_POLICIES, RateLimiter, RateLimitPolicy

#: Default simulated round-trip latency of one API request, seconds.
#: Calibrated so the FC engine's first-analysis response times land in
#: the 180-220 s band the paper reports (Table II).
DEFAULT_REQUEST_LATENCY = 1.9


class TwitterApiClient:
    """Rate-limited, latency-charging façade over a :class:`World`."""

    def __init__(
            self,
            world: World,
            clock: SimClock,
            *,
            credentials: int = 1,
            parallelism: int = 1,
            request_latency: float = DEFAULT_REQUEST_LATENCY,
            policies=DEFAULT_POLICIES,
            faults: Optional[FaultPlan] = None,
            retry: Optional[RetryPolicy] = None,
            acquisition_cache=None,
    ) -> None:
        if parallelism < 1:
            raise ConfigurationError(f"parallelism must be >= 1: {parallelism!r}")
        if request_latency < 0:
            raise ConfigurationError(
                f"request_latency must be non-negative: {request_latency!r}")
        self._world = world
        self._clock = clock
        self._credentials = credentials
        self._policies = policies
        obs = get_observability()
        self._obs = obs
        self._tracer = obs.tracer
        self._registry = obs.registry
        self._limiter = RateLimiter(clock.now(), policies, credentials,
                                    registry=self._registry)
        self._latency = request_latency / parallelism
        self._log = CallLog()
        # Per-resource (requests, items, latency, wait) instrument
        # handles, resolved lazily so the no-op and real paths share one
        # dict lookup per request.
        self._instruments = {}
        # Fault-path telemetry (retry counters, backoff histograms,
        # error counters) is created lazily on first failure, so a
        # fault-free run registers no extra metric series and its
        # exports stay byte-identical to a build without this layer.
        self._retry_instruments = {}
        self._error_counters = {}
        self._injector = (FaultInjector(faults, registry=self._registry)
                          if faults is not None else None)
        retry_policy = retry
        if retry_policy is None and faults is not None:
            retry_policy = DEFAULT_RETRY_POLICY
        self._retry = (RetryState(retry_policy)
                       if retry_policy is not None else None)
        self._faults_seen = 0
        self._retries_total = 0
        # Cross-client acquisition sharing and pinned observation are
        # both scheduler features; with the defaults (no cache, no pin)
        # every path below is byte-identical to the standalone client.
        self._acq_cache = acquisition_cache
        # Hit counters materialise on the first hit only, so runs
        # without a shared cache register no extra metric series.
        self._acq_hit_counters = {}
        self._observe_at: Optional[float] = None
        obs.register_call_log(self._log)

    def reset_budgets(self) -> None:
        """Start from fresh, full rate-limit windows and retry budgets.

        Models an operator rotating to unused credentials (or simply
        waiting out the 15-minute window) between audits; experiment
        runners call this so consecutive audits are timed the way the
        paper timed them — each against fresh budgets.
        """
        self._limiter = RateLimiter(
            self._clock.now(), self._policies, self._credentials,
            registry=self._registry)
        if self._retry is not None:
            self._retry.reset()

    @property
    def clock(self) -> SimClock:
        """The shared simulated clock."""
        return self._clock

    @property
    def acquisition_cache(self):
        """The shared acquisition cache plugged in, or ``None``."""
        return self._acq_cache

    @property
    def observed_at(self) -> Optional[float]:
        """The pinned observation instant, or ``None`` (live clock)."""
        return self._observe_at

    def pin_observation(self, at: Optional[float]) -> None:
        """Freeze (or, with ``None``, unfreeze) the world-read instant.

        While pinned, every world query behind the endpoints — profile
        resolution, follower totals and listings, timelines — sees the
        graph as of ``at``, regardless of how far the clock advances
        while requests wait out rate-limit windows.  The batch
        scheduler pins all requests of one batch to its admission
        epoch, which is what guarantees a batched audit returns the
        same percentages as a serial one.
        """
        if at is not None and at < 0:
            raise ConfigurationError(
                f"observation instant must be >= 0: {at!r}")
        self._observe_at = at

    def _observed(self) -> float:
        """The instant world reads use: the pin, or the live clock."""
        return (self._observe_at if self._observe_at is not None
                else self._clock.now())

    @property
    def call_log(self) -> CallLog:
        """Record of every request issued through this client."""
        return self._log

    @property
    def faults_seen(self) -> int:
        """Fault-injected failures (and truncations) observed so far.

        Counts every injector fire, including failures later recovered
        by retry — engines snapshot it around an analysis to report
        ``errors_seen``.
        """
        return self._faults_seen

    @property
    def retries_total(self) -> int:
        """Retries issued by this client across all resources."""
        return self._retries_total

    def policy(self, resource: str) -> RateLimitPolicy:
        """Expose the active rate-limit policy of a resource."""
        return self._limiter.policy(resource)

    def _resource_instruments(self, resource: str):
        """The (requests, items, latency, wait) handles for a resource."""
        handles = self._instruments.get(resource)
        if handles is None:
            registry = self._registry
            handles = (
                registry.counter(
                    "api_requests_total",
                    help="requests issued, by API resource",
                    resource=resource),
                registry.counter(
                    "api_items_total",
                    help="elements returned, by API resource",
                    resource=resource),
                registry.histogram(
                    "api_request_latency_seconds", LATENCY_BUCKETS,
                    help="request wall time incl. rate-limit wait",
                    resource=resource),
                registry.histogram(
                    "api_ratelimit_wait_seconds", WAIT_BUCKETS,
                    help="seconds spent waiting for the token bucket",
                    resource=resource),
            )
            self._instruments[resource] = handles
        return handles

    def _retry_handles(self, resource: str):
        """The (retries, backoff-wait) handles of one resource (lazy)."""
        handles = self._retry_instruments.get(resource)
        if handles is None:
            handles = (
                self._registry.counter(
                    "api_retries_total",
                    help="request retries after retryable failures",
                    resource=resource),
                self._registry.histogram(
                    "api_backoff_wait_seconds", WAIT_BUCKETS,
                    help="retry backoff charged to the sim clock",
                    resource=resource),
            )
            self._retry_instruments[resource] = handles
        return handles

    def _error_counter(self, resource: str, kind: str):
        """The failed-attempt counter of one (resource, error) pair."""
        counter = self._error_counters.get((resource, kind))
        if counter is None:
            counter = self._registry.counter(
                "api_request_errors_total",
                help="failed request attempts by resource and error kind",
                resource=resource, error=kind)
            self._error_counters[(resource, kind)] = counter
        return counter

    def _raise_fault(self, resource: str, fault: Fault,
                     completed: float, cursor: Optional[int]) -> None:
        """Turn a decided raising fault into its typed exception."""
        spec = fault.spec
        if fault.kind == "transient_503":
            raise TransientServerError(resource)
        if fault.kind == "timeout":
            raise RequestTimeoutError(resource, spec.timeout_seconds)
        if fault.kind == "rate_limit_spike":
            raise RateLimitExceededError(
                resource, spec.retry_after,
                reset_at=completed + spec.retry_after)
        if fault.kind == "stale_cursor":
            raise StaleCursorError(resource, cursor if cursor is not None
                                   else -1)
        raise ConfigurationError(          # pragma: no cover - plan validates
            f"unexpected raising fault kind: {fault.kind!r}")

    def _attempt(self, resource: str, items: int, *,
                 paged: bool, cursor: Optional[int]
                 ) -> Tuple[float, Optional[Fault]]:
        """Charge one request attempt; raise if a fault fires.

        Returns ``(completed_time, fault)``; a returned fault is always
        the non-raising ``truncated_ids_page`` kind, which the caller
        applies to the payload.
        """
        requests, items_counter, latency_hist, wait_hist = \
            self._resource_instruments(resource)
        with self._tracer.span("api.request", self._clock,
                               resource=resource) as span:
            issued = self._clock.now()
            fault = None
            if self._injector is not None:
                fault = self._injector.decide(
                    resource, issued, paged=paged,
                    cursor_positive=cursor is not None and cursor > 0)
            waited = self._limiter.wait_time(resource, issued)
            if waited > 0:
                self._clock.advance(waited)
            # The token is consumed even for a failing request: the
            # request was sent, and the real service bills it.
            self._limiter.consume(resource, self._clock.now())
            if fault is not None and fault.raises:
                if fault.kind == "timeout":
                    self._clock.advance(fault.spec.timeout_seconds)
                else:
                    self._clock.advance(self._latency)
                completed = self._clock.now()
                self._log.record(ApiCall(
                    resource=resource,
                    issued_at=issued,
                    completed_at=completed,
                    waited=waited,
                    items=0,
                    error=fault.kind,
                ))
                self._faults_seen += 1
                self._error_counter(resource, fault.kind).inc()
                span.set_attribute("waited", waited)
                span.set_attribute("error", fault.kind)
                live = self._obs.live
                if live is not None:
                    live.on_request(resource, completed, ok=False)
                self._raise_fault(resource, fault, completed, cursor)
            self._clock.advance(self._latency)
            completed = self._clock.now()
            self._log.record(ApiCall(
                resource=resource,
                issued_at=issued,
                completed_at=completed,
                waited=waited,
                items=items,
            ))
            requests.inc()
            items_counter.inc(items)
            latency_hist.observe(completed - issued)
            wait_hist.observe(waited)
            span.set_attribute("waited", waited)
            span.set_attribute("items", items)
            if fault is not None:
                self._faults_seen += 1
                span.set_attribute("fault", fault.kind)
            live = self._obs.live
            if live is not None:
                live.on_request(resource, completed, ok=True)
        return completed, fault

    def _request(self, resource: str, items: int, *,
                 paged: bool = False, cursor: Optional[int] = None
                 ) -> Tuple[float, Optional[Fault]]:
        """Issue one logical request, retrying retryable failures.

        Backoff waits are charged to the simulated clock; when the
        retry allowance (attempts or per-resource budget) is exhausted
        the last failure propagates to the caller.
        """
        retry_index = 0
        previous_wait = 0.0
        while True:
            try:
                return self._attempt(resource, items,
                                     paged=paged, cursor=cursor)
            except RetryableApiError as error:
                wait = None
                if self._retry is not None:
                    wait = self._retry.next_wait(
                        resource, retry_index, error, previous_wait)
                if wait is None:
                    raise
                retries, backoff_hist = self._retry_handles(resource)
                retries.inc()
                backoff_hist.observe(wait)
                self._retries_total += 1
                live = self._obs.live
                if live is not None:
                    live.note("api.retries", self._clock.now())
                self._clock.advance(wait)
                previous_wait = wait
                retry_index += 1

    def _execute(self, resource: str, items: int) -> float:
        """Charge one request: rate-limit wait + latency.  Returns 'now'."""
        completed, __ = self._request(resource, items)
        return completed

    # -- users ----------------------------------------------------------------

    def users_show(self, *, screen_name: Optional[str] = None,
                   user_id: Optional[int] = None) -> UserObject:
        """``GET users/show`` — resolve one profile by handle or id.

        Charged against the ``users/lookup`` budget (the real endpoint
        had a separate but equal-magnitude limit; folding them keeps
        Table I authoritative).
        """
        if (screen_name is None) == (user_id is None):
            raise ConfigurationError(
                "exactly one of screen_name/user_id must be given")
        if self._acq_cache is not None:
            hit = (self._acq_cache.get_profile_by_name(screen_name)
                   if screen_name is not None
                   else self._acq_cache.get_profile(user_id))
            if hit is not None:
                self._acq_hit("users/lookup")
                return hit
        now = self._observed()
        if screen_name is not None:
            account = self._world.account_by_name(screen_name, now)
        else:
            account = self._world.account_by_id(user_id, now)
        self._execute("users/lookup", 1)
        user = UserObject.from_account(account)
        if self._acq_cache is not None:
            self._acq_cache.put_profile(user)
        return user

    def users_lookup(self, user_ids: Sequence[int]) -> List[UserObject]:
        """``GET users/lookup`` — up to 100 profiles per request.

        Unknown ids are silently omitted from the response, as the real
        endpoint does.
        """
        policy = self._limiter.policy("users/lookup")
        if not 1 <= len(user_ids) <= policy.elements_per_request:
            raise ConfigurationError(
                f"users/lookup takes 1..{policy.elements_per_request} ids, "
                f"got {len(user_ids)}")
        completed = self._execute("users/lookup", len(user_ids))
        now = (self._observe_at if self._observe_at is not None
               else completed)
        users = self._world.user_objects(user_ids, now)
        if self._acq_cache is not None:
            for user in users:
                self._acq_cache.put_profile(user)
        return users

    def users_lookup_block(self, user_ids: Sequence[int]):
        """``users/lookup`` kept in columnar row form when possible.

        Same endpoint, same charge, same observation-pinning rules as
        :meth:`users_lookup`, but when the world can serve the batch as
        a structured-row block (a columnar world resolving follower
        ids) the rows are returned as a
        :class:`repro.twitter.columnar.schema.UserRowBlock` instead of
        materialised user objects — the projection the engines' batch
        criteria read columns from.  Falls back to :meth:`users_lookup`
        semantics (a plain list) whenever the block path cannot apply:
        an acquisition cache is attached (its unit is the profile
        object), the world has no block projection, or the batch
        contains non-follower ids.
        """
        row_block = getattr(self._world, "user_row_block", None)
        if self._acq_cache is not None or row_block is None:
            return self.users_lookup(user_ids)
        policy = self._limiter.policy("users/lookup")
        if not 1 <= len(user_ids) <= policy.elements_per_request:
            raise ConfigurationError(
                f"users/lookup takes 1..{policy.elements_per_request} ids, "
                f"got {len(user_ids)}")
        completed = self._execute("users/lookup", len(user_ids))
        now = (self._observe_at if self._observe_at is not None
               else completed)
        block = row_block(user_ids, now)
        if block is None:
            return self._world.user_objects(user_ids, now)
        return block

    # -- follower / friend listings ---------------------------------------------

    def _ids_page(self, resource: str, uid: int, total: int, fetch,
                  cursor: int, count: Optional[int]) -> IdsPage:
        policy = self._limiter.policy(resource)
        page_size = policy.elements_per_request if count is None else count
        if not 1 <= page_size <= policy.elements_per_request:
            raise ConfigurationError(
                f"{resource} count must be 1..{policy.elements_per_request}")
        if cursor == -1:
            offset = 0
        elif cursor > 0:
            offset = cursor
        else:
            raise InvalidCursorError(f"bad cursor: {cursor!r}")
        if self._acq_cache is not None:
            hit = self._acq_cache.get_page(resource, uid, offset, page_size)
            if hit is not None:
                self._acq_hit(resource)
                return hit
        completed, fault = self._request(resource, 0, paged=True,
                                         cursor=cursor)
        now = (self._observe_at if self._observe_at is not None
               else completed)
        # `offset` counts newest-first; chronological positions run the
        # other way.  Twitter returns followers newest-first — the fact
        # the paper establishes in Section IV-B.
        start_newest = min(offset, total)
        stop_newest = min(offset + page_size, total)
        chrono_start = total - stop_newest
        chrono_stop = total - start_newest
        chronological = fetch(chrono_start, chrono_stop, now)
        ids = tuple(int(uid) for uid in reversed(list(chronological)))
        if fault is not None and ids:
            # A truncated page silently drops the tail of the listing
            # while the cursor still advances past the full page — the
            # client cannot tell, so downstream frames come up short.
            keep = max(1, int(len(ids) * (1 - fault.spec.truncate_fraction)))
            ids = ids[:keep]
        next_cursor = stop_newest if stop_newest < total else 0
        previous_cursor = -start_newest if start_newest > 0 else 0
        page = IdsPage(ids=ids, next_cursor=next_cursor,
                       previous_cursor=previous_cursor)
        if self._acq_cache is not None and fault is None:
            # Truncated pages are never shared: the fault is an event of
            # this client's crawl, not a property of the listing.
            self._acq_cache.put_page(resource, uid, offset, page_size, page)
        return page

    def followers_ids(self, *, screen_name: Optional[str] = None,
                      user_id: Optional[int] = None,
                      cursor: int = -1,
                      count: Optional[int] = None) -> IdsPage:
        """``GET followers/ids`` — one page of follower ids, newest first."""
        uid = self._resolve(screen_name, user_id)
        now = self._observed()
        total = self._world.follower_count(uid, now)
        return self._ids_page(
            "followers/ids", uid, total,
            lambda start, stop, at: self._world.follower_ids(uid, start, stop, at),
            cursor, count)

    def friends_ids(self, *, screen_name: Optional[str] = None,
                    user_id: Optional[int] = None,
                    cursor: int = -1,
                    count: Optional[int] = None) -> IdsPage:
        """``GET friends/ids`` — one page of followed-account ids, newest first."""
        uid = self._resolve(screen_name, user_id)
        now = self._observed()
        total = self._world.friend_count(uid, now)
        return self._ids_page(
            "friends/ids", uid, total,
            lambda start, stop, at: self._world.friend_ids(uid, start, stop, at),
            cursor, count)

    def _acq_hit(self, resource: str) -> None:
        counter = self._acq_hit_counters.get(resource)
        if counter is None:
            counter = self._registry.counter(
                "acq_cache_hits_total",
                help="API requests answered by the shared acquisition cache",
                resource=resource)
            self._acq_hit_counters[resource] = counter
        counter.inc()

    def _resolve(self, screen_name: Optional[str], user_id: Optional[int]) -> int:
        if (screen_name is None) == (user_id is None):
            raise ConfigurationError(
                "exactly one of screen_name/user_id must be given")
        if user_id is not None:
            return user_id
        return self._world.account_by_name(screen_name, self._observed()).user_id

    # -- timelines ---------------------------------------------------------------

    def user_timeline(self, user_id: int, count: Optional[int] = None) -> List[Tweet]:
        """``GET statuses/user_timeline`` — recent tweets, newest first.

        At most 200 per request; overall timeline depth is capped at
        3200 by the service (enforced by the world's timeline model).
        """
        policy = self._limiter.policy("statuses/user_timeline")
        page = policy.elements_per_request if count is None else count
        if not 1 <= page <= policy.elements_per_request:
            raise ConfigurationError(
                f"statuses/user_timeline count must be "
                f"1..{policy.elements_per_request}")
        if self._acq_cache is not None:
            hit = self._acq_cache.get_timeline(user_id, page)
            if hit is not None:
                self._acq_hit("statuses/user_timeline")
                return list(hit)
        completed, fault = self._request("statuses/user_timeline", page)
        now = (self._observe_at if self._observe_at is not None
               else completed)
        timeline = self._world.timeline(user_id, page, now)
        if self._acq_cache is not None and fault is None:
            self._acq_cache.put_timeline(user_id, page, timeline)
        return timeline
