"""Rate limiting for the simulated Twitter API.

The paper's Table I summarises the v1.1 limits that shape every timing
result in its evaluation:

====================================  ==============  ================
API                                   elems/request   max requests/min
====================================  ==============  ================
``GET followers/ids``                 5000            1
``GET friends/ids``                   5000            1
``GET users/lookup``                  100             12
``GET statuses/user_timeline``        200             12
====================================  ==============  ================

The real service enforced these as budgets over 15-minute windows, so a
client may *burst* a full window's budget and then starve.  We model
each resource with a token bucket whose capacity is the 15-minute
budget and whose refill rate is the sustained per-minute rate — the
standard equivalent formulation that also matches the response times
the paper measures (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

from ..core.errors import ConfigurationError, RateLimitExceededError
from ..core.timeutil import MINUTE
from ..obs.runtime import get_observability

#: Length of the enforcement window used by the real v1.1 API.
WINDOW = 15 * MINUTE


@dataclass(frozen=True)
class RateLimitPolicy:
    """Limits of one API resource (one row of the paper's Table I)."""

    resource: str
    elements_per_request: int
    requests_per_minute: float

    def __post_init__(self) -> None:
        if self.elements_per_request < 1:
            raise ConfigurationError("elements_per_request must be >= 1")
        if self.requests_per_minute <= 0:
            raise ConfigurationError("requests_per_minute must be > 0")

    @property
    def window_budget(self) -> float:
        """Requests allowed per 15-minute window."""
        return self.requests_per_minute * (WINDOW / MINUTE)


#: The paper's Table I, verbatim.
TABLE_I: Tuple[RateLimitPolicy, ...] = (
    RateLimitPolicy("followers/ids", 5000, 1),
    RateLimitPolicy("friends/ids", 5000, 1),
    RateLimitPolicy("users/lookup", 100, 12),
    RateLimitPolicy("statuses/user_timeline", 200, 12),
)

DEFAULT_POLICIES: Mapping[str, RateLimitPolicy] = {
    policy.resource: policy for policy in TABLE_I
}


class TokenBucket:
    """A continuously refilling token bucket.

    Starts full (a fresh credential has an untouched window budget).
    ``capacity`` tokens, refilled at ``rate`` tokens per second.
    """

    def __init__(self, capacity: float, rate: float, start_time: float) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be > 0: {capacity!r}")
        if rate <= 0:
            raise ConfigurationError(f"rate must be > 0: {rate!r}")
        self._capacity = float(capacity)
        self._rate = float(rate)
        self._level = float(capacity)
        self._updated = float(start_time)

    def _refill(self, now: float) -> None:
        if now > self._updated:
            self._level = min(
                self._capacity, self._level + (now - self._updated) * self._rate)
            self._updated = now

    def available(self, now: float) -> float:
        """Tokens available at instant ``now``."""
        self._refill(now)
        return self._level

    def wait_time(self, now: float, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` tokens are available (0 if already)."""
        self._refill(now)
        deficit = tokens - self._level
        if deficit <= 0:
            return 0.0
        return deficit / self._rate

    def consume(self, now: float, tokens: float = 1.0) -> None:
        """Take ``tokens`` tokens; caller must have waited first.

        Raises :class:`RateLimitExceededError` if the bucket cannot
        cover the request at ``now`` — i.e. the caller did not respect
        :meth:`wait_time`.
        """
        self._refill(now)
        if self._level + 1e-9 < tokens:
            wait = self.wait_time(now, tokens)
            raise RateLimitExceededError(
                "token-bucket", wait, reset_at=now + wait)
        self._level -= tokens


class RateLimiter:
    """Per-resource token buckets, scaled by the number of credentials.

    ``credentials`` models how many independent OAuth tokens the caller
    rotates through.  The paper's own FC engine runs on a single token;
    commercial analytics operate fleets of them (that is the only way
    Socialbakers can assess 2000 followers in ~10 s, Section IV-C).
    """

    def __init__(self, start_time: float,
                 policies: Mapping[str, RateLimitPolicy] = DEFAULT_POLICIES,
                 credentials: int = 1, *,
                 registry=None) -> None:
        if credentials < 1:
            raise ConfigurationError(f"credentials must be >= 1: {credentials!r}")
        self._policies = dict(policies)
        self._credentials = credentials
        self._buckets: Dict[str, TokenBucket] = {
            name: TokenBucket(
                capacity=policy.window_budget * credentials,
                rate=policy.requests_per_minute * credentials / MINUTE,
                start_time=start_time,
            )
            for name, policy in self._policies.items()
        }
        # An explicit registry (the API client passes its own) keeps the
        # limiter's telemetry bound to whatever context its owner was
        # built under, even across `reset_budgets` re-creations.
        if registry is None:
            registry = get_observability().registry
        self._throttles = {
            name: registry.counter(
                "ratelimit_throttle_total",
                help="requests that had to wait for a token refill",
                resource=name)
            for name in self._policies
        }
        self._token_gauges = {
            name: registry.gauge(
                "ratelimit_tokens_remaining",
                help="token-bucket level after the latest consume",
                resource=name)
            for name in self._policies
        }

    @property
    def credentials(self) -> int:
        """Number of independent credential sets in rotation."""
        return self._credentials

    def resources(self) -> Iterable[str]:
        """Names of the rate-limited API resources."""
        return self._policies.keys()

    def policy(self, resource: str) -> RateLimitPolicy:
        """The rate-limit policy of one resource."""
        if resource not in self._policies:
            raise ConfigurationError(f"unknown API resource: {resource!r}")
        return self._policies[resource]

    def wait_time(self, resource: str, now: float) -> float:
        """Seconds the caller must wait before issuing one request."""
        if resource not in self._buckets:
            raise ConfigurationError(f"unknown API resource: {resource!r}")
        waited = self._buckets[resource].wait_time(now)
        if waited > 0:
            self._throttles[resource].inc()
        return waited

    def consume(self, resource: str, now: float) -> None:
        """Record one request against ``resource`` at instant ``now``."""
        if resource not in self._buckets:
            raise ConfigurationError(f"unknown API resource: {resource!r}")
        try:
            self._buckets[resource].consume(now)
        except RateLimitExceededError as exc:
            # Re-raise under the resource's name but keep the original
            # token-bucket state (retry_after AND the absolute window
            # reset instant) so retry layers can honor it end-to-end.
            raise RateLimitExceededError(
                resource, exc.retry_after, reset_at=exc.reset_at) from None
        self._token_gauges[resource].set(self._buckets[resource].available(now))
