"""Simulated Twitter REST API: rate limits, endpoints, client, crawler."""

from .client import DEFAULT_REQUEST_LATENCY, TwitterApiClient
from .crawler import AcquisitionEstimate, Crawler, estimate_acquisition_time
from .endpoints import ApiCall, CallLog, IdsPage, UserObject
from .frame import IdFrame
from .ratelimit import (
    DEFAULT_POLICIES,
    TABLE_I,
    WINDOW,
    RateLimiter,
    RateLimitPolicy,
    TokenBucket,
)

__all__ = [
    "AcquisitionEstimate",
    "ApiCall",
    "CallLog",
    "Crawler",
    "DEFAULT_POLICIES",
    "DEFAULT_REQUEST_LATENCY",
    "IdFrame",
    "IdsPage",
    "RateLimitPolicy",
    "RateLimiter",
    "TABLE_I",
    "TokenBucket",
    "TwitterApiClient",
    "UserObject",
    "WINDOW",
    "estimate_acquisition_time",
]
