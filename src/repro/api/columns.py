"""Timeline statistic columns for batch classification.

Socialbakers' content rules (spam phrases, repeated tweets, retweet and
link ratios) need per-timeline fractions.  The scalar rule set walks
each timeline once *per rule*; this module computes all seven fractions
in a single pass per timeline — the same one-pass class-B sweep the FC
columnar extractor uses (:func:`repro.fc.columnar._timeline_fractions`)
— and exposes them as float64 columns, so a 2000-follower sample costs
2000 timeline walks instead of 10000.

Each fraction is ``count / len(timeline)`` on Python ints, stored into
float64 without rounding, so the columns are bit-identical to what the
scalar helpers in :mod:`repro.fc.rulesets` compute.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError


@dataclass
class TimelineStatColumns:
    """Seven per-timeline fraction columns plus a non-empty mask."""

    retweet: object
    link: object
    spam: object
    mention: object
    hashtag: object
    automation: object
    duplicate: object
    #: ``bool(timeline)`` per row — rules like "more than 90% retweets"
    #: only fire on accounts that tweeted at all.
    nonempty: object

    def __len__(self) -> int:
        return len(self.nonempty)


def timeline_stat_columns(np, timelines) -> TimelineStatColumns:
    """One-pass fraction columns over ``timelines``.

    ``None`` entries read as empty timelines (all fractions 0.0), the
    same degradation the scalar rules apply via ``timeline or []``.
    """
    if timelines is None:
        raise ConfigurationError("timeline_stat_columns needs timelines")
    from ..fc.columnar import _timeline_fractions

    fractions = [_timeline_fractions(timeline or [])
                 for timeline in timelines]
    matrix = (np.asarray(fractions, dtype=np.float64) if fractions
              else np.zeros((0, 7), dtype=np.float64))
    nonempty = np.asarray([bool(timeline) for timeline in timelines],
                          dtype=bool)
    return TimelineStatColumns(
        retweet=matrix[:, 0], link=matrix[:, 1], spam=matrix[:, 2],
        mention=matrix[:, 3], hashtag=matrix[:, 4], automation=matrix[:, 5],
        duplicate=matrix[:, 6], nonempty=nonempty)
