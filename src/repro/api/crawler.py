"""High-level crawling built on the raw API client.

The crawler packages the multi-request acquisition patterns every
engine in the paper uses — "fetch the whole follower list", "fetch the
newest k followers", "look up these profiles", "pull these timelines" —
and the analytic acquisition-time model behind the paper's in-text
claim that crawling Barack Obama's 41 M followers "required a total
time of around 27 days".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.errors import ConfigurationError, RetryableApiError
from ..obs.runtime import get_observability
from ..twitter.tweet import Tweet
from .client import DEFAULT_REQUEST_LATENCY, TwitterApiClient
from .endpoints import UserObject
from .frame import IdFrame
from .ratelimit import DEFAULT_POLICIES, RateLimitPolicy


@dataclass(frozen=True)
class AnchoredHeadWalk:
    """Outcome of an anchored prefix walk over ``followers/ids``.

    Attributes
    ----------
    new_ids:
        The newest-first prefix of the follower list strictly before
        the first re-found anchor id — i.e. the accounts that followed
        since the anchor was captured.
    anchor_index:
        Index into the caller's anchor tuple of the first (newest)
        anchor id re-found, or ``None`` when the walk ended without
        finding any anchor (churned past the anchor depth, budget
        exhausted, or the walk degraded).  A non-zero index means that
        many of the newest baseline followers have unfollowed.
    pages:
        Cursor pages fetched.
    degraded:
        Whether the walk stopped early on an exhausted-retries fault;
        degraded walks must never be trusted for watermark updates.
    """

    new_ids: List[int]
    anchor_index: Optional[int]
    pages: int
    degraded: bool

    @property
    def anchored(self) -> bool:
        """Whether the walk re-found the baseline anchor."""
        return self.anchor_index is not None


class Crawler:
    """Batched data acquisition over a :class:`TwitterApiClient`."""

    def __init__(self, client: TwitterApiClient) -> None:
        self._client = client
        #: Users whose timeline fetch degraded to empty during the most
        #: recent :meth:`fetch_timelines` call (callers fold this into
        #: their completeness fraction).
        self.last_timeline_shortfall = 0
        obs = get_observability()
        self._tracer = obs.tracer
        self._pages = obs.registry.counter(
            "crawler_pages_total",
            help="cursor pages fetched by the batching crawler")

    @property
    def client(self) -> TwitterApiClient:
        """The underlying API client."""
        return self._client

    def fetch_all_follower_ids(self, screen_name: str) -> IdFrame:
        """Fetch the target's complete follower list, newest first.

        This is what distinguishes the FC engine from the commercial
        tools: it pages through *every* cursor instead of stopping at
        the head of the list.
        """
        return self.fetch_newest_follower_ids(screen_name, max_ids=None)

    def fetch_newest_follower_ids(self, screen_name: str,
                                  max_ids: Optional[int]) -> IdFrame:
        """Fetch at most ``max_ids`` follower ids from the head of the list.

        With ``max_ids=None`` the full list is retrieved.  Because the
        service returns followers newest-first, a truncated fetch yields
        exactly the *latest* accounts to have followed — the biased
        sample the paper criticises.

        Ids accumulate into an :class:`IdFrame` (one int64 block per
        page) instead of a Python list, keeping a 10M-follower crawl
        around 80 MB instead of ~360 MB; the frame indexes, iterates
        and samples identically to the list it replaced.
        """
        if max_ids is not None and max_ids < 1:
            raise ConfigurationError(f"max_ids must be >= 1: {max_ids!r}")
        with self._tracer.span("crawl.followers", self._client.clock,
                               target=screen_name) as span:
            ids = IdFrame()
            cursor = -1
            pages = 0
            while True:
                try:
                    page = self._client.followers_ids(
                        screen_name=screen_name, cursor=cursor)
                except RetryableApiError:
                    # Retries are exhausted and the cursor chain is
                    # broken; degrade to whatever was paged in so far
                    # rather than losing the whole crawl.
                    span.set_attribute("degraded", True)
                    break
                pages += 1
                self._pages.inc()
                ids.extend(page.ids)
                if max_ids is not None and len(ids) >= max_ids:
                    ids = ids[:max_ids]
                    break
                if page.next_cursor == 0:
                    break
                cursor = page.next_cursor
            span.set_attribute("pages", pages)
            span.set_attribute("ids", len(ids))
        return ids

    def fetch_head_until(self, screen_name: str,
                         anchor_ids: Sequence[int], *,
                         max_new: int,
                         page_size: Optional[int] = None) -> AnchoredHeadWalk:
        """Walk the newest-first follower list until an anchor re-appears.

        The delta-audit primitive (paper, Section IV-B): because the
        service returns followers newest-first, every follower gained
        since a previous crawl occupies a *prefix* of the list.  The
        walk pages from the head and stops at the first id that belongs
        to ``anchor_ids`` (the newest ids captured by that previous
        crawl) — everything before it is new.  The walk gives up, with
        ``anchor_index=None``, once more than ``max_new`` ids have been
        paged without an anchor hit (the anchor churned out or the
        cursor chain no longer matches) or when the list ends first.
        """
        if max_new < 0:
            raise ConfigurationError(f"max_new must be >= 0: {max_new!r}")
        anchor_of = {int(uid): index for index, uid in enumerate(anchor_ids)}
        with self._tracer.span("crawl.head_walk", self._client.clock,
                               target=screen_name,
                               anchors=len(anchor_of)) as span:
            new_ids: List[int] = []
            cursor = -1
            pages = 0
            degraded = False
            anchor_index: Optional[int] = None
            while True:
                try:
                    page = self._client.followers_ids(
                        screen_name=screen_name, cursor=cursor,
                        count=page_size)
                except RetryableApiError:
                    span.set_attribute("degraded", True)
                    degraded = True
                    break
                pages += 1
                self._pages.inc()
                hit_offset = None
                for offset, uid in enumerate(page.ids):
                    found = anchor_of.get(int(uid))
                    if found is not None:
                        # Scanning newest-first, the first hit is the
                        # newest surviving anchor; its index counts the
                        # baseline head accounts that unfollowed.
                        hit_offset, anchor_index = offset, found
                        break
                if hit_offset is not None:
                    new_ids.extend(int(uid) for uid in page.ids[:hit_offset])
                    break
                new_ids.extend(int(uid) for uid in page.ids)
                if len(new_ids) > max_new or page.next_cursor == 0:
                    break
                cursor = page.next_cursor
            span.set_attribute("pages", pages)
            span.set_attribute("new_ids", len(new_ids))
            span.set_attribute("anchored", anchor_index is not None)
        return AnchoredHeadWalk(new_ids=new_ids, anchor_index=anchor_index,
                                pages=pages, degraded=degraded)

    def lookup_users(self, user_ids: Sequence[int]) -> List[UserObject]:
        """Resolve profiles in ``users/lookup`` batches of 100.

        When the client carries a shared acquisition cache, profiles
        already fetched by *any* engine of the batch are served from it
        and only the misses are spent against the rate limit; the
        returned list always preserves the input id order (with
        unresolvable ids omitted), exactly like the uncached path.
        """
        cache = self._client.acquisition_cache
        if cache is not None:
            return self._lookup_users_cached(user_ids, cache)
        batch_size = self._client.policy("users/lookup").elements_per_request
        with self._tracer.span("crawl.lookup", self._client.clock,
                               requested=len(user_ids)) as span:
            users: List[UserObject] = []
            for start in range(0, len(user_ids), batch_size):
                batch = list(user_ids[start:start + batch_size])
                if not batch:
                    continue
                try:
                    users.extend(self._client.users_lookup(batch))
                except RetryableApiError:
                    # Batches are independent: drop the failed one and
                    # keep resolving the rest of the sample.
                    span.set_attribute("degraded", True)
            span.set_attribute("resolved", len(users))
        return users

    def lookup_users_block(self, user_ids: Sequence[int]):
        """Resolve profiles, keeping them columnar when the world can.

        The batch-criteria acquisition path: identical request charges,
        span shape and degradation behaviour to :meth:`lookup_users`,
        but each batch goes through
        :meth:`TwitterApiClient.users_lookup_block` so a columnar world
        returns structured rows.  When every batch resolved as rows the
        result is one merged ``UserRowBlock`` (which still quacks like
        a user-object sequence); any object-path fallback flattens the
        whole result to a plain list.  With a shared acquisition cache
        the profile-object cached path is used unchanged.
        """
        cache = self._client.acquisition_cache
        if cache is not None:
            return self._lookup_users_cached(user_ids, cache)
        batch_size = self._client.policy("users/lookup").elements_per_request
        with self._tracer.span("crawl.lookup", self._client.clock,
                               requested=len(user_ids)) as span:
            parts = []
            resolved = 0
            for start in range(0, len(user_ids), batch_size):
                batch = list(user_ids[start:start + batch_size])
                if not batch:
                    continue
                try:
                    part = self._client.users_lookup_block(batch)
                except RetryableApiError:
                    span.set_attribute("degraded", True)
                    continue
                parts.append(part)
                resolved += len(part)
            span.set_attribute("resolved", resolved)
        if parts and all(hasattr(part, "rows") for part in parts):
            if len(parts) == 1:
                return parts[0]
            # Row blocks imply NumPy is importable: the world built them.
            import numpy as np

            from ..twitter.columnar.schema import UserRowBlock
            return UserRowBlock(np.concatenate([p.rows for p in parts]))
        users: List[UserObject] = []
        for part in parts:
            users.extend(part)
        return users

    def _lookup_users_cached(self, user_ids: Sequence[int],
                             cache) -> List[UserObject]:
        """Cache-aware variant: re-batch only the cache misses."""
        batch_size = self._client.policy("users/lookup").elements_per_request
        with self._tracer.span("crawl.lookup", self._client.clock,
                               requested=len(user_ids)) as span:
            resolved = {}
            missing: List[int] = []
            for uid in user_ids:
                hit = cache.get_profile(uid)
                if hit is not None:
                    resolved[uid] = hit
                else:
                    missing.append(uid)
            for start in range(0, len(missing), batch_size):
                batch = missing[start:start + batch_size]
                if not batch:
                    continue
                try:
                    for user in self._client.users_lookup(batch):
                        resolved[user.user_id] = user
                except RetryableApiError:
                    span.set_attribute("degraded", True)
            users = [resolved[uid] for uid in user_ids if uid in resolved]
            span.set_attribute("resolved", len(users))
            span.set_attribute("cache_hits", len(user_ids) - len(missing))
        return users

    def fetch_timelines(self, user_ids: Sequence[int],
                        per_user: int = 200) -> Dict[int, List[Tweet]]:
        """Pull one timeline page per user (up to 200 recent tweets)."""
        with self._tracer.span("crawl.timelines", self._client.clock,
                               users=len(user_ids)) as span:
            timelines: Dict[int, List[Tweet]] = {}
            shortfall = 0
            for uid in user_ids:
                try:
                    timelines[uid] = self._client.user_timeline(
                        uid, count=per_user)
                except RetryableApiError:
                    # Keep the key so callers can still index by user;
                    # an empty timeline reads as "never tweeted", the
                    # conservative degradation for inactivity rules.
                    timelines[uid] = []
                    shortfall += 1
            if shortfall:
                span.set_attribute("degraded", True)
                span.set_attribute("shortfall", shortfall)
            self.last_timeline_shortfall = shortfall
        return timelines


# ---------------------------------------------------------------------------
# Analytic acquisition-time model
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AcquisitionEstimate:
    """Predicted cost of crawling a follower base of a given size."""

    followers: int
    follower_pages: int
    lookup_requests: int
    timeline_requests: int
    seconds: float

    @property
    def days(self) -> float:
        """The predicted crawl time in days."""
        return self.seconds / 86400.0


def _phase_time(requests: int, policy: RateLimitPolicy, latency: float,
                credentials: int) -> float:
    """Completion time of ``requests`` serial calls against one bucket.

    A fresh bucket allows a burst of one window budget; past that the
    sustained rate dominates:  ``T(n) = max(n * L, (n - C) / r + L)``
    with capacity ``C`` and rate ``r`` scaled by the credential count.
    """
    if requests <= 0:
        return 0.0
    capacity = policy.window_budget * credentials
    rate = policy.requests_per_minute * credentials / 60.0
    burst_bound = requests * latency
    rate_bound = max(0.0, requests - capacity) / rate + latency
    return max(burst_bound, rate_bound)


def estimate_acquisition_time(
        followers: int,
        *,
        lookup_all: bool = True,
        timelines_all: bool = False,
        latency: float = DEFAULT_REQUEST_LATENCY,
        credentials: int = 1,
        policies=DEFAULT_POLICIES,
) -> AcquisitionEstimate:
    """Predict the wall time of a full data acquisition.

    ``lookup_all`` resolves every follower's profile (batches of 100 at
    12 requests/min); ``timelines_all`` additionally pulls one timeline
    page per follower.  With the paper's Table I limits and a single
    credential, 41 M followers cost ~5.7 days of ``followers/ids``
    paging plus ~23.7 days of ``users/lookup`` — the "around 27 days"
    the authors report for Obama.
    """
    if followers < 0:
        raise ConfigurationError(f"followers must be >= 0: {followers!r}")
    ids_policy = policies["followers/ids"]
    lookup_policy = policies["users/lookup"]
    timeline_policy = policies["statuses/user_timeline"]

    follower_pages = math.ceil(followers / ids_policy.elements_per_request)
    lookup_requests = (
        math.ceil(followers / lookup_policy.elements_per_request)
        if lookup_all else 0)
    timeline_requests = followers if timelines_all else 0

    seconds = (
        _phase_time(follower_pages, ids_policy, latency, credentials)
        + _phase_time(lookup_requests, lookup_policy, latency, credentials)
        + _phase_time(timeline_requests, timeline_policy, latency, credentials)
    )
    return AcquisitionEstimate(
        followers=followers,
        follower_pages=follower_pages,
        lookup_requests=lookup_requests,
        timeline_requests=timeline_requests,
        seconds=seconds,
    )
