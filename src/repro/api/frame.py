"""Chunked int64 id storage for Obama-scale follower lists.

A crawled follower list for a 10M-follower account held as a Python
``list`` of ``int`` costs ~28 bytes per element plus pointer overhead —
roughly 360 MB.  :class:`IdFrame` keeps the ids in a list of int64 NumPy
arrays instead (one block per appended page batch, ~8 bytes/id), while
remaining a :class:`collections.abc.Sequence`:

* ``len()``, integer indexing (including negative) and slicing work;
* iteration yields plain Python ints, so downstream consumers see the
  same values a list would give them;
* ``random.sample(frame, k)`` draws *identically* to
  ``random.sample(list(frame), k)`` — CPython's sampler only consumes
  ``len()`` and ``__getitem__`` — which is what keeps audit sampling
  bit-identical after the crawler switched to frames.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Sequence
from typing import Iterable, Iterator, List

import numpy as np

#: Block granularity when a frame compacts or slices itself.
BLOCK_SIZE = 262_144


class IdFrame(Sequence):
    """Append-only sequence of int64 ids stored in chunked arrays."""

    def __init__(self, ids: Iterable[int] = ()) -> None:
        self._blocks: List[np.ndarray] = []
        self._offsets: List[int] = []  # cumulative length after each block
        self._length = 0
        if ids is not None:
            self.extend(ids)

    def extend(self, ids: Iterable[int]) -> None:
        """Append a batch of ids as one block (empty batches are no-ops)."""
        if isinstance(ids, IdFrame):
            for block in ids._blocks:
                self._append_block(block.copy())
            return
        if isinstance(ids, np.ndarray):
            block = np.ascontiguousarray(ids, dtype=np.int64)
            if block is ids:
                block = block.copy()
        else:
            block = np.fromiter(ids, dtype=np.int64)
        self._append_block(block)

    def _append_block(self, block: np.ndarray) -> None:
        if block.size == 0:
            return
        self._blocks.append(block)
        self._length += int(block.size)
        self._offsets.append(self._length)

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self._slice(index)
        if not isinstance(index, (int, np.integer)):
            raise TypeError(f"indices must be integers or slices: {index!r}")
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError("IdFrame index out of range")
        block_index = bisect_right(self._offsets, index)
        start = self._offsets[block_index - 1] if block_index else 0
        return int(self._blocks[block_index][index - start])

    def _slice(self, index: slice) -> "IdFrame":
        start, stop, step = index.indices(self._length)
        result = IdFrame()
        if step == 1:
            cursor = 0
            for block in self._blocks:
                block_start = max(start - cursor, 0)
                block_stop = min(stop - cursor, block.size)
                if block_stop > block_start:
                    result._append_block(block[block_start:block_stop].copy())
                cursor += block.size
                if cursor >= stop:
                    break
        else:
            result._append_block(
                np.fromiter((self[i] for i in range(start, stop, step)),
                            dtype=np.int64))
        return result

    def __iter__(self) -> Iterator[int]:
        for block in self._blocks:
            for value in block.tolist():
                yield value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IdFrame):
            if self._length != other._length:
                return False
            return all(a == b for a, b in zip(self, other))
        if isinstance(other, (list, tuple)):
            return self._length == len(other) and all(
                a == b for a, b in zip(self, other))
        return NotImplemented

    def __hash__(self) -> None:  # mutable container
        raise TypeError("IdFrame is unhashable")

    def __repr__(self) -> str:
        preview = ", ".join(str(v) for v in self[:4])
        ellipsis = ", ..." if self._length > 4 else ""
        return (f"IdFrame([{preview}{ellipsis}] len={self._length} "
                f"blocks={len(self._blocks)})")

    def nbytes(self) -> int:
        """Total array storage in bytes (excludes Python object overhead)."""
        return sum(block.nbytes for block in self._blocks)

    def to_array(self) -> np.ndarray:
        """Materialise the frame as a single contiguous int64 array."""
        if not self._blocks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(self._blocks)
