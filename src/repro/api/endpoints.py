"""Wire-level objects returned by the simulated API.

These are the *only* shapes analytics engines may consume.  In
particular :class:`UserObject` is an :class:`~repro.twitter.account.Account`
with the simulation-internal fields (ground-truth label, generating
behaviour profile) stripped — engines must infer everything from
observables, exactly as they must against the real service.

Like the real v1.1 ``users/lookup``, a user object embeds the creation
time of the account's most recent status, which is how real-world tools
check "the last tweet is more than 90 days old" without a timeline call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..twitter.account import Account


@dataclass(frozen=True)
class UserObject:
    """Public profile snapshot, mirroring the v1.1 user object."""

    user_id: int
    screen_name: str
    name: str
    created_at: float
    description: str
    location: str
    url: str
    default_profile_image: bool
    verified: bool
    followers_count: int
    friends_count: int
    statuses_count: int
    #: Creation time of the embedded most-recent status (``None`` if the
    #: account never tweeted).
    last_status_at: Optional[float]

    @classmethod
    def from_account(cls, account: Account) -> "UserObject":
        """Project an internal account snapshot onto the public shape."""
        return cls(
            user_id=account.user_id,
            screen_name=account.screen_name,
            name=account.name,
            created_at=account.created_at,
            description=account.description,
            location=account.location,
            url=account.url,
            default_profile_image=account.default_profile_image,
            verified=account.verified,
            followers_count=account.followers_count,
            friends_count=account.friends_count,
            statuses_count=account.statuses_count,
            last_status_at=account.last_tweet_at,
        )

    # -- the same derived observables analytics rule sets use ------------

    def friends_followers_ratio(self) -> float:
        """following/followers ratio; ``friends_count`` when unfollowed."""
        if self.followers_count == 0:
            return float(self.friends_count)
        return self.friends_count / self.followers_count

    def has_bio(self) -> bool:
        """Whether the profile description is filled in."""
        return bool(self.description.strip())

    def has_location(self) -> bool:
        """Whether the profile location is filled in."""
        return bool(self.location.strip())

    def has_ever_tweeted(self) -> bool:
        """Whether the account posted at least one status."""
        return self.statuses_count > 0

    def age_at(self, now: float) -> float:
        """Account age in seconds at ``now``."""
        return max(0.0, now - self.created_at)

    def last_status_age(self, now: float) -> Optional[float]:
        """Seconds since the embedded last status; ``None`` if never tweeted."""
        if self.last_status_at is None:
            return None
        return max(0.0, now - self.last_status_at)


@dataclass(frozen=True)
class IdsPage:
    """One page of ``followers/ids`` / ``friends/ids`` results.

    ``ids`` are ordered newest-first, matching the behaviour the paper
    verifies experimentally in Section IV-B ("the list of the first 1000
    followers returned by Twitter is actually the list of the last 1000
    accounts that started following the target").

    Cursors follow the v1.1 convention: ``-1`` requests the first page,
    ``next_cursor == 0`` means the listing is exhausted.
    """

    ids: Tuple[int, ...]
    next_cursor: int
    previous_cursor: int

    def __len__(self) -> int:
        return len(self.ids)


@dataclass(frozen=True)
class ApiCall:
    """One logged API request (or failed attempt), for cost accounting.

    ``error`` is ``None`` for a successful call; for a failed attempt it
    names the failure kind (e.g. ``"transient_503"``).  With fault
    injection on, every retried attempt is logged individually, so the
    log remains a complete, deterministic record of what the client did.
    """

    resource: str
    issued_at: float
    completed_at: float
    waited: float
    items: int
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the request completed successfully."""
        return self.error is None

    @property
    def latency(self) -> float:
        """Wall time of the request, including rate-limit wait."""
        return self.completed_at - self.issued_at


class CallLog:
    """Accumulating record of a client's API usage.

    Aggregates are maintained incrementally at :meth:`record` time, so
    every query below is O(1) or O(resources) instead of re-scanning
    the whole call list — the scans used to dominate ``repro stats``
    on large batch runs, where the stats line asks several aggregate
    questions of every registered log.  Floats accumulate in record
    order, exactly the order the old per-query scans summed them in,
    so every reported value is byte-identical.
    """

    def __init__(self) -> None:
        self._calls: list[ApiCall] = []
        # Per-resource summary()-shaped aggregates (ok calls only,
        # failures counted separately — see summary()'s contract).
        self._by_resource: Dict[str, Dict[str, float]] = {}
        # Per-resource tallies over ALL attempts, failures included
        # (the contract of count / failures / total_items).
        self._attempts: Dict[str, int] = {}
        self._failed: Dict[str, int] = {}
        self._items: Dict[str, int] = {}
        self._total_failures = 0
        self._total_items = 0
        self._total_waited = 0.0

    def record(self, call: ApiCall) -> None:
        """Append one completed call to the log."""
        self._calls.append(call)
        resource = call.resource
        self._attempts[resource] = self._attempts.get(resource, 0) + 1
        self._items[resource] = self._items.get(resource, 0) + call.items
        self._total_items += call.items
        self._total_waited += call.waited
        stats = self._by_resource.setdefault(resource, {
            "calls": 0, "items": 0, "waited": 0.0, "total_latency": 0.0,
            "failures": 0})
        if not call.ok:
            self._failed[resource] = self._failed.get(resource, 0) + 1
            self._total_failures += 1
            stats["failures"] += 1
            return
        stats["calls"] += 1
        stats["items"] += call.items
        stats["waited"] += call.waited
        stats["total_latency"] += call.latency

    def calls(self, resource: Optional[str] = None) -> Sequence[ApiCall]:
        """Logged calls, optionally filtered by resource."""
        if resource is None:
            return tuple(self._calls)
        return tuple(call for call in self._calls if call.resource == resource)

    def count(self, resource: Optional[str] = None) -> int:
        """Number of logged calls, optionally filtered by resource."""
        if resource is None:
            return len(self._calls)
        return self._attempts.get(resource, 0)

    def failures(self, resource: Optional[str] = None) -> int:
        """Number of logged failed attempts, optionally by resource."""
        if resource is None:
            return self._total_failures
        return self._failed.get(resource, 0)

    def total_items(self, resource: Optional[str] = None) -> int:
        """Total elements returned, optionally filtered by resource."""
        if resource is None:
            return self._total_items
        return self._items.get(resource, 0)

    def total_waited(self) -> float:
        """Total seconds spent waiting on rate limits."""
        return self._total_waited

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-resource aggregates of the whole log.

        Returns ``{resource: {"calls", "items", "waited",
        "total_latency", "failures"}}`` with resources in sorted order —
        the shape consumed by the Prometheus exporter (``api_calllog_*``
        series) and the ``repro stats`` summary line.  Failed attempts
        count only under ``"failures"``: they contribute nothing to
        ``"calls"``, ``"items"``, ``"waited"`` or ``"total_latency"``,
        so per-resource latency averages (``total_latency / calls``)
        describe successful requests only.
        """
        return {resource: dict(self._by_resource[resource])
                for resource in sorted(self._by_resource)}

    def clear(self) -> None:
        """Drop every logged call."""
        self._calls.clear()
        self._by_resource.clear()
        self._attempts.clear()
        self._failed.clear()
        self._items.clear()
        self._total_failures = 0
        self._total_items = 0
        self._total_waited = 0.0
