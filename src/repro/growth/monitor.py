"""An API-driven growth monitor.

Ties the series/detector machinery to the simulated API the way a real
watchdog service would: poll ``users/show`` once per simulated day,
build the observation series, and raise findings.  One such monitor
pointed at @MittRomney in August 2012 is effectively how the episode in
the paper's introduction was noticed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..api.client import TwitterApiClient
from ..core.clock import SimClock
from ..core.errors import ConfigurationError, RetryableApiError
from ..core.timeutil import DAY
from ..obs.runtime import get_observability
from ..twitter.population import World
from .detector import BurstDetector, BurstEvent
from .series import GrowthSeries, series_from_observations


@dataclass(frozen=True)
class MonitorReport:
    """Outcome of a monitoring campaign over one account."""

    handle: str
    series: GrowthSeries
    bursts: Tuple[BurstEvent, ...]
    purchased_estimate: int

    @property
    def suspicious(self) -> bool:
        """Whether any burst was detected."""
        return bool(self.bursts)


class GrowthMonitor:
    """Daily follower-count poller with burst detection.

    The monitor is deliberately cheap: one ``users/show`` call per day
    (charged against ``users/lookup``'s 12/min budget), no follower
    crawling at all — anomaly detection needs only the counter.
    """

    def __init__(self, world: World, clock: SimClock,
                 detector: BurstDetector = None, *,
                 faults=None, retry=None) -> None:
        self._client = TwitterApiClient(world, clock, faults=faults,
                                        retry=retry)
        self._clock = clock
        self._detector = detector if detector is not None else BurstDetector()
        self._user_ids: Dict[str, int] = {}

    @property
    def client(self) -> TwitterApiClient:
        """The monitor's API client (exposes its call log)."""
        return self._client

    def poll(self, handle: str) -> Tuple[float, int]:
        """One follower-count reading at the current simulated instant.

        When a live-telemetry plane is attached to the active
        observability context, the reading also feeds the detector
        bridge (``repro.obs.live``), which turns the stream of counter
        reads into daily arrival series and ``burst:<handle>`` alerts.
        Raises whatever the API raises (e.g. an injected fault), so a
        caller running under a fault plan can count failed polls.
        """
        now = self._clock.now()
        user = self._client.users_show(screen_name=handle)
        self._user_ids[handle.lower()] = user.user_id
        live = get_observability().live
        if live is not None:
            live.observe_followers(handle, now, user.followers_count)
        return now, user.followers_count

    def poll_fleet(self, handles: Sequence[str]) -> Dict[str, int]:
        """One counter reading for a whole fleet, paged 100 per request.

        A thousand-account fleet polled through :meth:`poll` costs one
        ``users/show`` call per account per tick; this method batches
        resolved accounts through ``users/lookup`` (100 profiles per
        request), a 100x reduction at fleet scale.  Handles not yet
        resolved to a user id fall back to ``users/show`` once (which
        also records their reading); every reading feeds the live
        detector bridge exactly as :meth:`poll` does.

        Returns ``{handle: followers_count}`` for every answered
        handle.  Never raises for injected API faults: a fault on a
        lookup page silently loses that *page's* readings (and an
        unresolved handle's ``users/show`` fault loses that handle's),
        so the blast radius of a failed batched poll is the page, not
        the fleet — callers under a fault plan count the absences.
        """
        now = self._clock.now()
        live = get_observability().live
        counts: Dict[str, int] = {}
        handle_of = {}
        pending: List[int] = []
        for handle in handles:
            user_id = self._user_ids.get(handle.lower())
            if user_id is None:
                try:
                    __, count = self.poll(handle)
                except RetryableApiError:
                    continue
                counts[handle] = count
                continue
            handle_of[user_id] = handle
            pending.append(user_id)
        for start in range(0, len(pending), 100):
            page = pending[start:start + 100]
            try:
                users = self._client.users_lookup_block(page)
            except RetryableApiError:
                continue
            for user in users:
                handle = handle_of[user.user_id]
                counts[handle] = user.followers_count
                if live is not None:
                    live.observe_followers(handle, now, user.followers_count)
        return counts

    def observe(self, handle: str, days: int) -> GrowthSeries:
        """Poll the account once per simulated day for ``days`` + 1 readings.

        Each reading goes through :meth:`poll`, so a standalone
        ``observe`` campaign feeds the live detector bridge exactly as
        tick-driven polling does.
        """
        if days < 1:
            raise ConfigurationError(f"days must be >= 1: {days!r}")
        observations: List[Tuple[float, int]] = []
        for __ in range(days + 1):
            day_start, count = self.poll(handle)
            observations.append((day_start, count))
            self._clock.advance_to(day_start + DAY)
        return series_from_observations(observations)

    def watch(self, handle: str, days: int = 30) -> MonitorReport:
        """Observe, detect, and report."""
        series = self.observe(handle, days)
        bursts = tuple(self._detector.detect(series))
        return MonitorReport(
            handle=handle,
            series=series,
            bursts=bursts,
            purchased_estimate=int(round(
                sum(event.excess for event in bursts))),
        )
