"""Follower-growth monitoring and purchase-burst detection.

The machinery behind the paper's motivating anecdote: spotting the
"sudden jump in the number of followers" that outed the purchased
blocks of the 2012 campaign accounts.
"""

from .detector import BurstDetector, BurstEvent
from .monitor import GrowthMonitor, MonitorReport
from .series import (
    GrowthSeries,
    series_from_observations,
    series_from_population,
)

__all__ = [
    "BurstDetector",
    "BurstEvent",
    "GrowthMonitor",
    "GrowthSeries",
    "MonitorReport",
    "series_from_observations",
    "series_from_population",
]
