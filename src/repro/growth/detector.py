"""Growth-burst detection.

A purchased follower block is delivered in hours (see
``repro.twitter.generator.make_target_spec``'s burst segments), so on a
daily-arrival series it shows up as one or two days whose counts sit
far outside the account's organic baseline.  The detector uses the
standard robust recipe — median/MAD z-scores — so a burst cannot mask
itself by inflating the mean, and a slowly growing account (organic
acceleration) is not flagged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..core.errors import ConfigurationError
from .series import GrowthSeries

#: Consistency constant turning a MAD into a Gaussian-comparable sigma.
_MAD_TO_SIGMA = 1.4826


@dataclass(frozen=True)
class BurstEvent:
    """One anomalous-growth day."""

    day: int
    start_time: float
    arrivals: int
    baseline: float
    z_score: float

    @property
    def excess(self) -> float:
        """Arrivals above the organic baseline."""
        return max(0.0, self.arrivals - self.baseline)


class BurstDetector:
    """Robust z-score detector over daily arrival counts.

    Parameters
    ----------
    threshold:
        Minimum robust z-score for a day to count as a burst.  The
        default 6.0 is deliberately conservative: organic day-to-day
        noise in the synthetic workloads (and, per the 2012 reporting,
        in real accounts) stays well under 4 sigma.
    min_excess:
        Minimum absolute arrivals above baseline — guards against tiny
        accounts where a handful of followers is "six sigma".
    """

    def __init__(self, threshold: float = 6.0, min_excess: int = 50) -> None:
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be > 0: {threshold!r}")
        if min_excess < 0:
            raise ConfigurationError(
                f"min_excess must be >= 0: {min_excess!r}")
        self._threshold = threshold
        self._min_excess = min_excess

    def baseline(self, series: GrowthSeries) -> Tuple[float, float]:
        """Robust (location, scale) of the organic arrival rate."""
        values = series.as_array()
        median = float(np.median(values))
        mad = float(np.median(np.abs(values - median)))
        scale = _MAD_TO_SIGMA * mad
        if scale <= 0.0:
            # A perfectly steady trickle: fall back to a Poisson-ish
            # scale so a genuine burst still stands out.
            scale = max(1.0, np.sqrt(max(median, 1.0)))
        return median, scale

    def detect(self, series: GrowthSeries) -> List[BurstEvent]:
        """Return all burst days, strongest first."""
        if len(series) < 4:
            raise ConfigurationError(
                "burst detection needs at least 4 days of history")
        median, scale = self.baseline(series)
        events: List[BurstEvent] = []
        for day, arrivals in enumerate(series.arrivals):
            z_score = (arrivals - median) / scale
            if z_score >= self._threshold \
                    and arrivals - median >= self._min_excess:
                events.append(BurstEvent(
                    day=day,
                    start_time=series.day_start(day),
                    arrivals=arrivals,
                    baseline=median,
                    z_score=z_score,
                ))
        return sorted(events, key=lambda event: event.z_score, reverse=True)

    def purchased_follower_estimate(self, series: GrowthSeries) -> int:
        """Rough size of the purchased block(s): summed burst excess."""
        return int(round(sum(event.excess for event in self.detect(series))))
