"""Follower-growth time series.

The paper's introduction recounts the episode that ignited the whole
fake-follower debate: during the 2012 US campaign "the Twitter account
of challenger Romney experienced a sudden jump in the number of
followers, the great majority of them has been later claimed to be
fake".  That jump is a *growth anomaly* — a day (or hour) where the
arrival rate departs wildly from the account's organic baseline.

This module extracts daily-arrival series from the two sources an
analyst realistically has:

* a :class:`~repro.twitter.population.FollowerPopulation` (or any
  arrival schedule) — the omniscient, simulation-side view;
* a sequence of *dated follower-count observations* — what a real
  monitor collects by polling ``users/show`` once a day.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core.errors import ConfigurationError
from ..core.timeutil import DAY
from ..twitter.population import FollowerPopulation


@dataclass(frozen=True)
class GrowthSeries:
    """Daily follower arrivals for one account.

    ``start_time`` is the instant day 0 begins; ``arrivals[i]`` counts
    followers gained during day ``i``.
    """

    start_time: float
    arrivals: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.arrivals:
            raise ConfigurationError("a growth series needs >= 1 day")
        if any(value < 0 for value in self.arrivals):
            raise ConfigurationError("daily arrivals must be non-negative")

    def __len__(self) -> int:
        return len(self.arrivals)

    def day_start(self, day: int) -> float:
        """Epoch-seconds start of day ``day``."""
        if not 0 <= day < len(self.arrivals):
            raise ConfigurationError(
                f"day must be in [0, {len(self.arrivals)}): {day!r}")
        return self.start_time + day * DAY

    def as_array(self) -> np.ndarray:
        """The arrival counts as a float64 array."""
        return np.asarray(self.arrivals, dtype=np.float64)

    def total(self) -> int:
        """Total arrivals over the observed window."""
        return sum(self.arrivals)


def series_from_population(population: FollowerPopulation,
                           start_time: float, days: int) -> GrowthSeries:
    """Daily arrivals of a (lazy) population over ``[start, start+days)``.

    Uses the arrival schedule's exact inverse, so the series is the
    ground truth a perfect daily monitor would record.
    """
    if days < 1:
        raise ConfigurationError(f"days must be >= 1: {days!r}")
    counts: List[int] = []
    previous = population.size_at(start_time)
    for day in range(1, days + 1):
        current = population.size_at(start_time + day * DAY)
        counts.append(current - previous)
        previous = current
    return GrowthSeries(start_time=start_time, arrivals=tuple(counts))


def series_from_observations(
        observations: Sequence[Tuple[float, int]],
        *, clip_negative: bool = True) -> GrowthSeries:
    """Build a growth series from dated follower-count readings.

    ``observations`` are ``(timestamp, followers_count)`` pairs, at
    least two, in chronological order, nominally one day apart (the
    cadence of the paper's own Section IV-B snapshots).  Readings that
    are not exactly a day apart are accepted — real monitors jitter —
    and a reading delayed past its slot (an outage, a rate-limit storm)
    is *gap-normalised*: the interval's arrivals are distributed evenly
    across the ``round(gap / DAY)`` days it actually spans instead of
    being piled into a single day.  Without this, a two-day gap makes
    one day appear to have twice the organic rate — a deterministic
    false burst.  The split is exact and deterministic: ``divmod``
    spreads the count, with the remainder going to the earliest days.

    A follower *counter* conflates arrivals with departures: a day of
    net churn shows a decrease.  With ``clip_negative`` (the default,
    what a real monitor must do) such intervals are recorded as zero
    arrivals; pass ``clip_negative=False`` to insist on a
    churn-free series and get an error instead.
    """
    if len(observations) < 2:
        raise ConfigurationError("need at least two observations")
    times = [t for t, __ in observations]
    counts = [c for __, c in observations]
    if times != sorted(times) or len(set(times)) != len(times):
        raise ConfigurationError("observations must be strictly chronological")
    deltas: List[int] = []
    for (before_t, before), (after_t, after) in zip(
            observations, observations[1:]):
        if after < before:
            if not clip_negative:
                raise ConfigurationError(
                    "follower counts decreased (churn); pass "
                    "clip_negative=True to record such days as zero")
            delta = 0
        else:
            delta = after - before
        gap_days = max(1, int(round((after_t - before_t) / DAY)))
        base, remainder = divmod(delta, gap_days)
        deltas.extend(
            base + (1 if day < remainder else 0) for day in range(gap_days))
    return GrowthSeries(start_time=times[0], arrivals=tuple(deltas))
