"""Exception hierarchy shared by every subsystem of the reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Subsystems define their own leaves here rather than in
scattered modules, which keeps ``except`` clauses discoverable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed with invalid parameters."""


class ClockError(ReproError):
    """Raised on invalid simulated-time operations (e.g. moving backwards)."""


class GraphError(ReproError):
    """Raised on invalid social-graph operations."""


class UnknownAccountError(GraphError):
    """Raised when an account id or screen name cannot be resolved."""

    def __init__(self, identifier: object) -> None:
        super().__init__(f"unknown account: {identifier!r}")
        self.identifier = identifier


class DuplicateAccountError(GraphError):
    """Raised when registering an account whose id or name already exists."""


class ApiError(ReproError):
    """Base class for simulated Twitter API errors."""

    #: HTTP-like status code mirroring the real Twitter v1.1 API.
    status_code = 500


class RetryableApiError(ApiError):
    """Base class for transient API failures a client may retry.

    The fault-injection layer (``repro.faults``) raises only these, and
    :class:`repro.faults.RetryPolicy` retries only these — permanent
    failures (404, 401, malformed requests) propagate immediately.
    """


class RateLimitExceededError(RetryableApiError):
    """Raised when an endpoint's per-window request budget is exhausted.

    Mirrors HTTP 429 from the real API.  ``retry_after`` is the number of
    simulated seconds until the window can cover the request again, and
    ``reset_at`` (when known) is the absolute simulated instant of that
    reset — the token-bucket state retry tests assert end-to-end.
    """

    status_code = 429

    def __init__(self, resource: str, retry_after: float,
                 reset_at: "float | None" = None) -> None:
        message = (f"rate limit exceeded for {resource}; "
                   f"retry after {retry_after:.1f}s")
        if reset_at is not None:
            message += f" (window resets at t={reset_at:.1f})"
        super().__init__(message)
        self.resource = resource
        self.retry_after = retry_after
        self.reset_at = reset_at


class TransientServerError(RetryableApiError):
    """Raised when the simulated service answers HTTP 503 (over capacity).

    The real crawl behind the paper ran for weeks against exactly these
    storms; ``repro.faults`` injects them deterministically.
    """

    status_code = 503

    def __init__(self, resource: str) -> None:
        super().__init__(f"503 service unavailable for {resource}")
        self.resource = resource


class RequestTimeoutError(RetryableApiError):
    """Raised when a request hangs past the client's timeout (HTTP 504).

    Unlike a 503 the full timeout interval is charged to the simulated
    clock before the failure surfaces.
    """

    status_code = 504

    def __init__(self, resource: str, timeout_seconds: float) -> None:
        super().__init__(
            f"request to {resource} timed out after {timeout_seconds:.1f}s")
        self.resource = resource
        self.timeout_seconds = timeout_seconds


class NotFoundError(ApiError):
    """Raised when a requested user does not exist (HTTP 404)."""

    status_code = 404


class InvalidCursorError(ApiError):
    """Raised when a pagination cursor is malformed or stale (HTTP 400)."""

    status_code = 400


class StaleCursorError(InvalidCursorError, RetryableApiError):
    """Raised when a previously valid cursor expires mid-pagination.

    Long crawls against a churning follower list see these in practice
    ("Followers or Phantoms?" documents the churn); the injected variety
    is transient, so it is classified retryable.
    """

    def __init__(self, resource: str, cursor: int) -> None:
        super().__init__(
            f"stale pagination cursor {cursor!r} for {resource}")
        self.resource = resource
        self.cursor = cursor


class AuthorizationError(ApiError):
    """Raised when a client without credentials calls a protected endpoint."""

    status_code = 401


class AnalyticsError(ReproError):
    """Base class for errors raised by the analytics engines."""


class QuotaExceededError(AnalyticsError):
    """Raised when a free analytics tool's daily usage quota is exhausted.

    Socialbakers' Fake Follower Check, for instance, allowed ten audits per
    day per user (paper, Section II-B).
    """


class SchedulerSaturatedError(AnalyticsError):
    """Raised when the batch audit scheduler refuses further admissions.

    Signals backpressure: the pending queue hit its ``max_pending``
    bound, or the projected batch makespan would exceed the configured
    budget.  Callers should drain the current batch (``run()``) before
    submitting more work.
    """


class TrainingError(ReproError):
    """Raised when a classifier cannot be trained (e.g. degenerate data)."""


class SamplingError(ReproError):
    """Raised on invalid sampling requests (e.g. sample larger than frame)."""
