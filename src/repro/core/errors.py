"""Exception hierarchy shared by every subsystem of the reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Subsystems define their own leaves here rather than in
scattered modules, which keeps ``except`` clauses discoverable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed with invalid parameters."""


class ClockError(ReproError):
    """Raised on invalid simulated-time operations (e.g. moving backwards)."""


class GraphError(ReproError):
    """Raised on invalid social-graph operations."""


class UnknownAccountError(GraphError):
    """Raised when an account id or screen name cannot be resolved."""

    def __init__(self, identifier: object) -> None:
        super().__init__(f"unknown account: {identifier!r}")
        self.identifier = identifier


class DuplicateAccountError(GraphError):
    """Raised when registering an account whose id or name already exists."""


class ApiError(ReproError):
    """Base class for simulated Twitter API errors."""

    #: HTTP-like status code mirroring the real Twitter v1.1 API.
    status_code = 500


class RateLimitExceededError(ApiError):
    """Raised when an endpoint's per-window request budget is exhausted.

    Mirrors HTTP 429 from the real API.  ``retry_after`` is the number of
    simulated seconds until the window resets.
    """

    status_code = 429

    def __init__(self, resource: str, retry_after: float) -> None:
        super().__init__(
            f"rate limit exceeded for {resource}; retry after {retry_after:.1f}s"
        )
        self.resource = resource
        self.retry_after = retry_after


class NotFoundError(ApiError):
    """Raised when a requested user does not exist (HTTP 404)."""

    status_code = 404


class InvalidCursorError(ApiError):
    """Raised when a pagination cursor is malformed or stale (HTTP 400)."""

    status_code = 400


class AuthorizationError(ApiError):
    """Raised when a client without credentials calls a protected endpoint."""

    status_code = 401


class AnalyticsError(ReproError):
    """Base class for errors raised by the analytics engines."""


class QuotaExceededError(AnalyticsError):
    """Raised when a free analytics tool's daily usage quota is exhausted.

    Socialbakers' Fake Follower Check, for instance, allowed ten audits per
    day per user (paper, Section II-B).
    """


class TrainingError(ReproError):
    """Raised when a classifier cannot be trained (e.g. degenerate data)."""


class SamplingError(ReproError):
    """Raised on invalid sampling requests (e.g. sample larger than frame)."""
