"""Snowflake-style identifier generation.

Twitter assigns 64-bit "snowflake" ids whose high bits encode the
creation timestamp, so ids are k-sortable: an account or tweet created
later has a numerically larger id.  Several analytics heuristics (and
our population generator) rely on that monotonicity, so the simulator
reproduces the layout: 41 timestamp bits (milliseconds since a custom
epoch), 10 worker bits, 12 sequence bits.
"""

from __future__ import annotations

from .errors import ConfigurationError

_TIMESTAMP_BITS = 41
_WORKER_BITS = 10
_SEQUENCE_BITS = 12

_MAX_WORKER = (1 << _WORKER_BITS) - 1
_MAX_SEQUENCE = (1 << _SEQUENCE_BITS) - 1

#: Twitter's actual snowflake epoch (2010-11-04T01:42:54.657Z).  Ids for
#: moments before this epoch are still generated (the timestamp field is
#: clamped at zero) because simulated accounts may predate it.
SNOWFLAKE_EPOCH_MS = 1288834974657


def snowflake(timestamp: float, worker: int = 0, sequence: int = 0) -> int:
    """Compose a snowflake id from epoch-seconds ``timestamp``.

    ``worker`` and ``sequence`` disambiguate ids minted in the same
    millisecond.  The result is monotone in ``(timestamp, sequence)`` for
    a fixed worker.
    """
    if not 0 <= worker <= _MAX_WORKER:
        raise ConfigurationError(f"worker must be in [0, {_MAX_WORKER}]: {worker!r}")
    if not 0 <= sequence <= _MAX_SEQUENCE:
        raise ConfigurationError(
            f"sequence must be in [0, {_MAX_SEQUENCE}]: {sequence!r}"
        )
    millis = max(0, int(timestamp * 1000) - SNOWFLAKE_EPOCH_MS)
    return (millis << (_WORKER_BITS + _SEQUENCE_BITS)) | (worker << _SEQUENCE_BITS) | sequence


def snowflake_timestamp(snowflake_id: int) -> float:
    """Recover the epoch-seconds creation time encoded in a snowflake id."""
    if snowflake_id < 0:
        raise ConfigurationError(f"snowflake ids are non-negative: {snowflake_id!r}")
    millis = snowflake_id >> (_WORKER_BITS + _SEQUENCE_BITS)
    return (millis + SNOWFLAKE_EPOCH_MS) / 1000.0


class IdGenerator:
    """Mint unique, time-ordered snowflake ids.

    A single generator instance hands out strictly increasing ids even
    when many ids are requested for the same simulated millisecond, by
    incrementing the sequence field (and spilling into the next
    millisecond after 4096 ids, exactly as the real service does).
    """

    def __init__(self, worker: int = 0) -> None:
        if not 0 <= worker <= _MAX_WORKER:
            raise ConfigurationError(f"worker must be in [0, {_MAX_WORKER}]: {worker!r}")
        self._worker = worker
        self._last_millis = -1
        self._sequence = 0

    def next_id(self, timestamp: float) -> int:
        """Return a fresh id for an event at epoch-seconds ``timestamp``.

        Timestamps may repeat or even decrease between calls (population
        generation is not chronological); uniqueness and monotonicity of
        the *returned ids* are still guaranteed by never letting the
        internal millisecond counter move backwards.
        """
        millis = max(0, int(timestamp * 1000) - SNOWFLAKE_EPOCH_MS)
        if millis <= self._last_millis:
            millis = self._last_millis
            self._sequence += 1
            if self._sequence > _MAX_SEQUENCE:
                millis += 1
                self._sequence = 0
        else:
            self._sequence = 0
        self._last_millis = millis
        return (
            (millis << (_WORKER_BITS + _SEQUENCE_BITS))
            | (self._worker << _SEQUENCE_BITS)
            | self._sequence
        )
