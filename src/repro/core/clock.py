"""Deterministic simulated clock.

Every timing result in the paper (Table II response times, the 27-day
Obama crawl) is bound by Twitter's API rate limits rather than by CPU
time, so the whole reproduction runs against a virtual clock that only
moves when a component explicitly advances it — typically the rate
limiter sleeping until a request budget refills.
"""

from __future__ import annotations

from .errors import ClockError
from .timeutil import PAPER_EPOCH, isoformat


class SimClock:
    """A monotonically non-decreasing virtual clock.

    Parameters
    ----------
    start:
        Initial simulated time, in epoch seconds.  Defaults to the
        paper's observation window (March 2014).
    """

    def __init__(self, start: float = PAPER_EPOCH) -> None:
        if start < 0:
            raise ClockError(f"clock cannot start before the epoch: {start!r}")
        self._now = float(start)

    def now(self) -> float:
        """Return the current simulated time in epoch seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ClockError(f"cannot advance by a negative amount: {seconds!r}")
        self._now += seconds
        return self._now

    def advance_to(self, moment: float) -> float:
        """Move the clock forward to an absolute instant.

        Raises :class:`ClockError` if ``moment`` lies in the simulated past;
        a no-op if it equals the current time.
        """
        if moment < self._now:
            raise ClockError(
                f"cannot move clock backwards: now={self._now!r}, target={moment!r}"
            )
        self._now = float(moment)
        return self._now

    def elapsed_since(self, moment: float) -> float:
        """Return seconds elapsed between ``moment`` and now."""
        return self._now - moment

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={isoformat(self._now)})"


class Stopwatch:
    """Measure a span of simulated time against a :class:`SimClock`.

    Used by the response-time experiment (Table II) to time each
    analytics engine's first-analysis latency.
    """

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._started_at: float = clock.now()

    def restart(self) -> None:
        """Reset the start mark to the current simulated time."""
        self._started_at = self._clock.now()

    def elapsed(self) -> float:
        """Return simulated seconds since the last (re)start."""
        return self._clock.elapsed_since(self._started_at)
