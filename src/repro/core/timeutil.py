"""Time constants and helpers for the simulated world.

Simulated time is a plain ``float`` of seconds since the Unix epoch.  The
simulation epoch defaults to the paper's observation period (early 2014),
so generated accounts have plausible creation dates relative to Twitter's
2006 launch.
"""

from __future__ import annotations

import datetime as _dt

SECOND = 1.0
MINUTE = 60.0
HOUR = 60 * MINUTE
DAY = 24 * HOUR
WEEK = 7 * DAY
#: Average Gregorian year, adequate for account-age arithmetic.
YEAR = 365.25 * DAY

#: Twitter's public launch (2006-07-15); no account may predate it.
TWITTER_LAUNCH = _dt.datetime(2006, 7, 15, tzinfo=_dt.timezone.utc).timestamp()

#: Default "now" of the simulation: the paper's observation window
#: (the technical report is dated March 2014).
PAPER_EPOCH = _dt.datetime(2014, 3, 1, tzinfo=_dt.timezone.utc).timestamp()


def timestamp(year: int, month: int = 1, day: int = 1,
              hour: int = 0, minute: int = 0, second: int = 0) -> float:
    """Return the epoch-seconds timestamp of a UTC calendar date."""
    moment = _dt.datetime(year, month, day, hour, minute, second,
                          tzinfo=_dt.timezone.utc)
    return moment.timestamp()


def to_datetime(ts: float) -> _dt.datetime:
    """Convert epoch seconds to an aware UTC ``datetime``."""
    return _dt.datetime.fromtimestamp(ts, tz=_dt.timezone.utc)


def isoformat(ts: float) -> str:
    """Render epoch seconds as an ISO-8601 UTC string (second precision)."""
    return to_datetime(ts).strftime("%Y-%m-%dT%H:%M:%SZ")


def format_duration(seconds: float) -> str:
    """Render a duration in a compact human unit (``27.3d``, ``4.0h`` ...).

    Used by the acquisition-time experiment to report crawl durations the
    way the paper does ("a total time of around 27 days").
    """
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds!r}")
    if seconds < MINUTE:
        return f"{seconds:.1f}s"
    if seconds < HOUR:
        return f"{seconds / MINUTE:.1f}m"
    if seconds < DAY:
        return f"{seconds / HOUR:.1f}h"
    return f"{seconds / DAY:.1f}d"


def days_between(earlier: float, later: float) -> float:
    """Return the (possibly fractional) number of days between two instants."""
    return (later - earlier) / DAY
