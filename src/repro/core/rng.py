"""Seed management and reusable random distributions.

Every stochastic component of the reproduction takes an explicit seed so
experiments are bit-for-bit reproducible.  To avoid accidental seed
collisions between subsystems (which would correlate supposedly
independent draws), child seeds are derived from a master seed plus a
string path using a cryptographic hash.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Sequence

from .errors import ConfigurationError


def derive_seed(master: int, *path: object) -> int:
    """Derive a stable 64-bit child seed from ``master`` and a label path.

    ``derive_seed(42, "population", "fake", 3)`` always returns the same
    value, and different paths yield (with overwhelming probability)
    different, uncorrelated seeds.
    """
    payload = repr((int(master),) + tuple(str(p) for p in path)).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


def make_rng(seed: int, *path: object) -> random.Random:
    """Return a ``random.Random`` seeded from ``seed`` and an optional path."""
    if path:
        seed = derive_seed(seed, *path)
    return random.Random(seed)


def bounded_int_lognormal(rng: random.Random, mean_log: float,
                          sigma_log: float, low: int, high: int) -> int:
    """Draw an integer from a log-normal, clamped to ``[low, high]``.

    Social-network count statistics (followers, friends, tweet counts)
    are heavy-tailed; a clamped log-normal is the standard lightweight
    model and matches the qualitative distributions the analytics'
    criteria are written against (e.g. "97% of Twitter accounts have less
    than 5K followers", paper Section II-A).
    """
    if low > high:
        raise ConfigurationError(f"empty range [{low}, {high}]")
    value = int(round(rng.lognormvariate(mean_log, sigma_log)))
    return max(low, min(high, value))


def zipf_rank(rng: random.Random, n: int, exponent: float = 1.0) -> int:
    """Draw a 1-based rank in ``[1, n]`` with Zipfian probability.

    Uses inverse-CDF sampling over the exact normalised weights; ``n`` in
    our workloads is at most a few million, for which the O(n) table is
    built once per call site via :class:`ZipfTable` instead — this
    function is the simple path for small ``n``.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1: {n!r}")
    weights = [1.0 / (k ** exponent) for k in range(1, n + 1)]
    total = sum(weights)
    target = rng.random() * total
    acc = 0.0
    for k, w in enumerate(weights, start=1):
        acc += w
        if target <= acc:
            return k
    return n


class ZipfTable:
    """Precomputed inverse-CDF table for repeated Zipf draws over a fixed n."""

    def __init__(self, n: int, exponent: float = 1.0) -> None:
        if n < 1:
            raise ConfigurationError(f"n must be >= 1: {n!r}")
        self._n = n
        cdf = []
        acc = 0.0
        for k in range(1, n + 1):
            acc += 1.0 / (k ** exponent)
            cdf.append(acc)
        self._total = acc
        self._cdf = cdf

    def draw(self, rng: random.Random) -> int:
        """Return a 1-based Zipf-distributed rank."""
        target = rng.random() * self._total
        lo, hi = 0, self._n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < target:
                lo = mid + 1
            else:
                hi = mid
        return lo + 1


def weighted_choice(rng: random.Random, items: Sequence[object],
                    weights: Sequence[float]) -> object:
    """Pick one item with probability proportional to its weight."""
    if len(items) != len(weights):
        raise ConfigurationError("items and weights must have equal length")
    if not items:
        raise ConfigurationError("cannot choose from an empty sequence")
    total = float(sum(weights))
    if total <= 0 or any(w < 0 for w in weights):
        raise ConfigurationError(f"weights must be non-negative with positive sum: {weights!r}")
    target = rng.random() * total
    acc = 0.0
    for item, weight in zip(items, weights):
        acc += weight
        if target <= acc:
            return item
    return items[-1]


def poisson(rng: random.Random, lam: float) -> int:
    """Draw from a Poisson distribution (Knuth for small λ, normal approx above).

    Used for per-day tweet/follow counts in the activity workloads.
    """
    if lam < 0:
        raise ConfigurationError(f"lambda must be non-negative: {lam!r}")
    if lam == 0:
        return 0
    if lam > 30:
        # Normal approximation with continuity correction; exact enough
        # for workload generation and O(1) regardless of lambda.
        return max(0, int(round(rng.gauss(lam, math.sqrt(lam)))))
    threshold = math.exp(-lam)
    k, product = 0, rng.random()
    while product > threshold:
        k += 1
        product *= rng.random()
    return k
