"""JSON serialization for the library's long-lived artefacts.

Three things are worth persisting across runs:

* **worlds** — a :class:`~repro.twitter.population.SyntheticWorld` is
  *generative*: every follower is a pure function of the master seed
  and the target specs, so a 41 M-follower world serializes to a few
  kilobytes of spec and reconstructs bit-identically;
* **audit reports** — the paper's tables are collections of these;
* **gold standards** — the Fake Project's "training dataset is
  available on request" (Section IV-D); this is the exportable form.

All functions produce plain JSON-compatible dictionaries; ``save_json``
/ ``load_json`` wrap file IO.  JSON restricts mapping keys to strings,
so report ``details`` dictionaries have their keys coerced on write.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Union

from .api.endpoints import UserObject
from .audit import AuditReport
from .core.errors import ConfigurationError
from .fc.dataset import GoldExample, GoldStandard
from .twitter.account import BehaviorProfile, Label
from .twitter.population import (
    FollowerSegmentSpec,
    SyntheticWorld,
    TargetSpec,
)
from .twitter.tweet import Tweet

#: Bumped whenever the on-disk layout changes incompatibly.
FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]


def _require_version(payload: Dict[str, Any], kind: str) -> None:
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported {kind} format version: {version!r} "
            f"(this library reads version {FORMAT_VERSION})")
    if payload.get("kind") != kind:
        raise ConfigurationError(
            f"expected a {kind!r} document, got {payload.get('kind')!r}")


def _jsonify(value: Any) -> Any:
    """Coerce a nested structure into JSON-compatible types."""
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


# ---------------------------------------------------------------------------
# Audit reports
# ---------------------------------------------------------------------------

def audit_report_to_dict(report: AuditReport) -> Dict[str, Any]:
    """Serialize one audit report."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "audit_report",
        "tool": report.tool,
        "target": report.target,
        "followers_count": report.followers_count,
        "sample_size": report.sample_size,
        "fake_pct": report.fake_pct,
        "genuine_pct": report.genuine_pct,
        "inactive_pct": report.inactive_pct,
        "response_seconds": report.response_seconds,
        "cached": report.cached,
        "assessed_at": report.assessed_at,
        "completeness": report.completeness,
        "errors_seen": report.errors_seen,
        "details": _jsonify(dict(report.details)),
    }


def audit_report_from_dict(payload: Dict[str, Any]) -> AuditReport:
    """Rebuild an audit report serialized by :func:`audit_report_to_dict`."""
    _require_version(payload, "audit_report")
    return AuditReport(
        tool=payload["tool"],
        target=payload["target"],
        followers_count=payload["followers_count"],
        sample_size=payload["sample_size"],
        fake_pct=payload["fake_pct"],
        genuine_pct=payload["genuine_pct"],
        inactive_pct=payload["inactive_pct"],
        response_seconds=payload["response_seconds"],
        cached=payload["cached"],
        assessed_at=payload["assessed_at"],
        # Documents written before the fault-injection layer predate
        # these fields; a clean, complete audit is the right default.
        completeness=payload.get("completeness", 1.0),
        errors_seen=payload.get("errors_seen", 0),
        details=payload["details"],
    )


# ---------------------------------------------------------------------------
# Target specs and worlds
# ---------------------------------------------------------------------------

def _behavior_to_dict(behavior: BehaviorProfile) -> Dict[str, Any]:
    return {
        "tweets_per_day": behavior.tweets_per_day,
        "retweet_ratio": behavior.retweet_ratio,
        "link_ratio": behavior.link_ratio,
        "spam_ratio": behavior.spam_ratio,
        "mention_ratio": behavior.mention_ratio,
        "hashtag_ratio": behavior.hashtag_ratio,
        "duplicate_pool": behavior.duplicate_pool,
        "api_source_ratio": behavior.api_source_ratio,
    }


def _behavior_from_dict(payload: Dict[str, Any]) -> BehaviorProfile:
    return BehaviorProfile(**payload)


def _segment_to_dict(segment: FollowerSegmentSpec) -> Dict[str, Any]:
    return {
        "fraction": segment.fraction,
        "personas": dict(segment.personas),
        "duration_frac": segment.duration_frac,
        "gamma": segment.gamma,
    }


def _segment_from_dict(payload: Dict[str, Any]) -> FollowerSegmentSpec:
    return FollowerSegmentSpec(
        fraction=payload["fraction"],
        personas=payload["personas"],
        duration_frac=payload["duration_frac"],
        gamma=payload["gamma"],
    )


def target_spec_to_dict(spec: TargetSpec) -> Dict[str, Any]:
    """Serialize one target spec (including its cohort structure)."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "target_spec",
        "screen_name": spec.screen_name,
        "followers": spec.followers,
        "segments": [_segment_to_dict(segment) for segment in spec.segments],
        "created_at": spec.created_at,
        "follow_window_days": spec.follow_window_days,
        "daily_new_followers": spec.daily_new_followers,
        "statuses_count": spec.statuses_count,
        "friends_count": spec.friends_count,
        "verified": spec.verified,
        "display_name": spec.display_name,
        "description": spec.description,
        "behavior": _behavior_to_dict(spec.behavior),
    }


def target_spec_from_dict(payload: Dict[str, Any]) -> TargetSpec:
    """Rebuild a target spec serialized by :func:`target_spec_to_dict`."""
    _require_version(payload, "target_spec")
    return TargetSpec(
        screen_name=payload["screen_name"],
        followers=payload["followers"],
        segments=[_segment_from_dict(segment)
                  for segment in payload["segments"]],
        created_at=payload["created_at"],
        follow_window_days=payload["follow_window_days"],
        daily_new_followers=payload["daily_new_followers"],
        statuses_count=payload["statuses_count"],
        friends_count=payload["friends_count"],
        verified=payload["verified"],
        display_name=payload["display_name"],
        description=payload["description"],
        behavior=_behavior_from_dict(payload["behavior"]),
    )


def world_to_dict(world: SyntheticWorld) -> Dict[str, Any]:
    """Serialize a whole synthetic world (seed + ref time + specs)."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "world",
        "seed": world.seed,
        "ref_time": world.ref_time,
        "targets": [
            target_spec_to_dict(population.spec)
            for population in world.targets()
        ],
    }


def world_from_dict(payload: Dict[str, Any]) -> SyntheticWorld:
    """Reconstruct a synthetic world; followers regenerate identically."""
    _require_version(payload, "world")
    world = SyntheticWorld(seed=payload["seed"], ref_time=payload["ref_time"])
    for spec_payload in payload["targets"]:
        world.add_target(target_spec_from_dict(spec_payload))
    return world


# ---------------------------------------------------------------------------
# Gold standards
# ---------------------------------------------------------------------------

def _user_to_dict(user: UserObject) -> Dict[str, Any]:
    return {
        "user_id": user.user_id,
        "screen_name": user.screen_name,
        "name": user.name,
        "created_at": user.created_at,
        "description": user.description,
        "location": user.location,
        "url": user.url,
        "default_profile_image": user.default_profile_image,
        "verified": user.verified,
        "followers_count": user.followers_count,
        "friends_count": user.friends_count,
        "statuses_count": user.statuses_count,
        "last_status_at": user.last_status_at,
    }


def _user_from_dict(payload: Dict[str, Any]) -> UserObject:
    return UserObject(**payload)


def _tweet_to_dict(tweet: Tweet) -> Dict[str, Any]:
    return {
        "tweet_id": tweet.tweet_id,
        "user_id": tweet.user_id,
        "created_at": tweet.created_at,
        "text": tweet.text,
        "source": tweet.source,
    }


def _tweet_from_dict(payload: Dict[str, Any]) -> Tweet:
    return Tweet(**payload)


def gold_standard_to_dict(gold: GoldStandard) -> Dict[str, Any]:
    """Serialize a gold standard: users, timelines and a-priori labels."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "gold_standard",
        "now": gold.now,
        "examples": [
            {
                "user": _user_to_dict(example.user),
                "timeline": [_tweet_to_dict(tweet)
                             for tweet in example.timeline],
                "label": example.label.value,
            }
            for example in gold.examples
        ],
    }


def gold_standard_from_dict(payload: Dict[str, Any]) -> GoldStandard:
    """Rebuild a gold standard serialized by :func:`gold_standard_to_dict`."""
    _require_version(payload, "gold_standard")
    examples: List[GoldExample] = []
    for item in payload["examples"]:
        examples.append(GoldExample(
            user=_user_from_dict(item["user"]),
            timeline=tuple(_tweet_from_dict(tweet)
                           for tweet in item["timeline"]),
            label=Label(item["label"]),
        ))
    return GoldStandard(examples, payload["now"])


# ---------------------------------------------------------------------------
# File IO
# ---------------------------------------------------------------------------

def save_json(payload: Dict[str, Any], path: PathLike) -> None:
    """Write a serialized document to disk (UTF-8, indented)."""
    text = json.dumps(payload, indent=2, sort_keys=True)
    pathlib.Path(path).write_text(text, encoding="utf-8")


def load_json(path: PathLike) -> Dict[str, Any]:
    """Read a serialized document from disk."""
    return json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
