"""Lazily materialised Twitter worlds.

The paper audits accounts whose follower bases range from ~1 K to 41 M
(Barack Obama).  Materialising tens of millions of profile objects is
neither necessary nor wise: every engine only ever *samples* followers.
This module therefore represents a follower base as a pure function

    ``(master seed, target, position) -> Account``

so any follower can be generated on demand, identically every time,
with O(1) memory per target regardless of declared size.

Identifier namespaces
---------------------
Synthetic user ids are 63-bit integers whose top bits carry a namespace
tag, letting :class:`SyntheticWorld` resolve any id back to its
generator without a lookup table:

* targets:   ``TARGET_TAG``   — payload is the target ordinal;
* followers: ``FOLLOWER_TAG`` — payload is ``(target ordinal, position)``;
* ambient:   ``AMBIENT_TAG``  — payload is an index into a shared pool of
  background accounts used as "friends" of anyone.

Analytics engines treat ids as opaque, exactly as they must with real
Twitter ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import (
    ConfigurationError,
    DuplicateAccountError,
    UnknownAccountError,
)
from ..core.rng import weighted_choice
from ..core.timeutil import DAY, HOUR, TWITTER_LAUNCH
from .account import Account, BehaviorProfile, Label
from .personas import PERSONAS, Persona, persona_mix_from_labels
from .streams import (
    ambient_rng,
    composition_rng,
    follower_account_rng,
    follower_persona_rng,
    friends_rng,
)
from .timeline import TimelineGenerator
from .tweet import Tweet
from .workload import ArrivalSchedule, SegmentWindow

_NAMESPACE_SHIFT = 60
TARGET_TAG = 4
FOLLOWER_TAG = 2
AMBIENT_TAG = 3

_POSITION_BITS = 38
_ORDINAL_MASK = (1 << (_NAMESPACE_SHIFT - _POSITION_BITS)) - 1
_POSITION_MASK = (1 << _POSITION_BITS) - 1

#: Size of the shared ambient pool backing ``friends/ids`` answers.
AMBIENT_POOL_SIZE = 100_000


def target_id(ordinal: int) -> int:
    """Compose the user id of the ``ordinal``-th registered target."""
    return (TARGET_TAG << _NAMESPACE_SHIFT) | ordinal


def follower_id(ordinal: int, position: int) -> int:
    """Compose the user id of a target's follower at ``position``."""
    if position > _POSITION_MASK:
        raise ConfigurationError(f"position too large: {position!r}")
    return (FOLLOWER_TAG << _NAMESPACE_SHIFT) | (ordinal << _POSITION_BITS) | position


def ambient_id(index: int) -> int:
    """Compose the user id of the ``index``-th ambient-pool account."""
    return (AMBIENT_TAG << _NAMESPACE_SHIFT) | index


def namespace_of(user_id: int) -> int:
    """Return the namespace tag of a synthetic user id."""
    return user_id >> _NAMESPACE_SHIFT


def decode_follower(user_id: int) -> Tuple[int, int]:
    """Recover ``(target ordinal, position)`` from a follower id."""
    if namespace_of(user_id) != FOLLOWER_TAG:
        raise UnknownAccountError(user_id)
    payload = user_id & ((1 << _NAMESPACE_SHIFT) - 1)
    return (payload >> _POSITION_BITS) & _ORDINAL_MASK, payload & _POSITION_MASK


@dataclass(frozen=True)
class FollowerSegmentSpec:
    """One cohort of a target's follower base, in arrival order.

    Attributes
    ----------
    fraction:
        Share of the historical follower base arriving in this cohort.
    personas:
        Persona-name -> weight mix of the cohort's members.
    duration_frac:
        Share of the target's follow window occupied by the cohort;
        defaults to ``fraction`` (steady growth).  A purchased-fake burst
        is a cohort with a tiny ``duration_frac``.
    gamma:
        Intra-cohort pacing (see :class:`SegmentWindow`).
    """

    fraction: float
    personas: Mapping[str, float]
    duration_frac: Optional[float] = None
    gamma: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1]: {self.fraction!r}")
        if not self.personas:
            raise ConfigurationError("a segment needs a non-empty persona mix")
        for name, weight in self.personas.items():
            if name not in PERSONAS:
                raise ConfigurationError(f"unknown persona: {name!r}")
            if weight < 0:
                raise ConfigurationError(f"persona weight must be >= 0: {weight!r}")
        if sum(self.personas.values()) <= 0:
            raise ConfigurationError("persona mix weights must sum to > 0")


def uniform_segments(inactive: float, fake: float, genuine: float,
                     pieces: int = 1) -> List[FollowerSegmentSpec]:
    """Build ``pieces`` identical segments realising a label composition.

    With one piece the follower base is homogeneous in arrival order —
    the null hypothesis under which head-of-list sampling would be
    harmless.  Experiments contrasting biased and unbiased sampling use
    :func:`tilted_segments` instead.
    """
    mix = persona_mix_from_labels(inactive, fake, genuine)
    return [
        FollowerSegmentSpec(fraction=1.0 / pieces, personas=mix)
        for _ in range(pieces)
    ]


def tilted_segments(inactive: float, fake: float, genuine: float,
                    tilt: float = 0.5,
                    pieces: int = 4) -> List[FollowerSegmentSpec]:
    """Build segments with the *recency gradient* the paper observes.

    Long-term followers are more likely to have gone inactive than fresh
    ones ("new followers are less likely to be inactive than long-term
    followers", Section IV-D).  The overall (inactive, fake, genuine)
    composition is preserved exactly, but the inactive mass is shifted
    toward early cohorts: cohort ``i`` of ``pieces`` gets its inactive
    fraction scaled by a linear ramp from ``1 + tilt`` (oldest) down to
    ``1 - tilt`` (newest), with genuine mass absorbing the difference.

    ``tilt`` must lie in ``[0, 1)``.  A cohort's inactive share is
    capped at ``inactive + genuine`` (its genuine mass cannot go
    negative); any mass lost to that cap is redistributed to the
    cohorts that still have genuine headroom, so the aggregate
    composition matches *exactly* even at extreme inactive rates — the
    gradient simply flattens where there is no room for it.
    """
    if not 0.0 <= tilt < 1.0:
        raise ConfigurationError(f"tilt must be in [0, 1): {tilt!r}")
    if pieces < 1:
        raise ConfigurationError(f"pieces must be >= 1: {pieces!r}")
    total = inactive + fake + genuine
    inactive, fake, genuine = inactive / total, fake / total, genuine / total

    # Per-cohort inactive multipliers averaging exactly 1.
    if pieces == 1:
        multipliers = [1.0]
    else:
        multipliers = [
            1.0 + tilt * (1.0 - 2.0 * i / (pieces - 1)) for i in range(pieces)
        ]
    cap = inactive + genuine
    cohort_inactive = [min(cap, inactive * m) for m in multipliers]
    # Water-fill the clipped-off mass into cohorts below the cap.
    deficit = inactive * pieces - sum(cohort_inactive)
    while deficit > 1e-12:
        headroom = [cap - value for value in cohort_inactive]
        open_cohorts = [i for i, room in enumerate(headroom) if room > 1e-12]
        if not open_cohorts:
            break  # cap == inactive everywhere: nothing to redistribute
        share = deficit / len(open_cohorts)
        for i in open_cohorts:
            added = min(headroom[i], share)
            cohort_inactive[i] += added
            deficit -= added
    segments = []
    for value in cohort_inactive:
        cohort_genuine = max(0.0, genuine + inactive - value)
        mix = persona_mix_from_labels(value, fake, cohort_genuine)
        segments.append(
            FollowerSegmentSpec(fraction=1.0 / pieces, personas=mix))
    return segments


@dataclass(frozen=True)
class PostRefBurst:
    """A discrete follower block delivered *after* the reference instant.

    The mid-monitoring analogue of a purchased-burst segment: where
    :class:`FollowerSegmentSpec` shapes the historical base, a
    ``PostRefBurst`` lands ``count`` new followers, drawn from
    ``personas``, exactly ``days_after`` days past the reference
    instant — interleaved with the ordinary ``daily_new_followers``
    trickle in arrival order.  This is what the incremental-audit and
    monitoring experiments inject to model "the account bought a block
    of fakes while we were watching".
    """

    days_after: float
    count: int
    personas: Mapping[str, float]

    def __post_init__(self) -> None:
        if self.days_after < 0:
            raise ConfigurationError(
                f"days_after must be >= 0: {self.days_after!r}")
        if self.count < 1:
            raise ConfigurationError(f"count must be >= 1: {self.count!r}")
        if not self.personas:
            raise ConfigurationError("a burst needs a non-empty persona mix")
        for name, weight in self.personas.items():
            if name not in PERSONAS:
                raise ConfigurationError(f"unknown persona: {name!r}")
            if weight < 0:
                raise ConfigurationError(
                    f"persona weight must be >= 0: {weight!r}")
        if sum(self.personas.values()) <= 0:
            raise ConfigurationError("persona mix weights must sum to > 0")


def fake_purchase_burst(days_after: float, count: int) -> PostRefBurst:
    """Shorthand for an all-fake :class:`PostRefBurst` (a bought block)."""
    return PostRefBurst(days_after=days_after, count=count,
                        personas=persona_mix_from_labels(0.0, 1.0, 0.0))


@dataclass(frozen=True)
class TargetSpec:
    """Declarative description of an auditable target account.

    Attributes
    ----------
    screen_name:
        Unique handle of the target.
    followers:
        Historical follower-base size at the reference instant.
    segments:
        Arrival-ordered cohorts whose fractions sum to 1.
    created_at:
        Target account creation time (epoch seconds).
    follow_window_days:
        How far before the reference instant the first follower arrived;
        defaults to the span between creation and reference.
    daily_new_followers:
        Trickle of fresh arrivals per day after the reference instant
        (drawn from the newest cohort's persona mix); drives the daily
        snapshot ordering experiment.
    post_ref_bursts:
        Discrete :class:`PostRefBurst` blocks landing after the
        reference instant, interleaved with the trickle in arrival
        order; each burst's members draw from its own persona mix.
    statuses_count, friends_count, verified, display_name, description:
        Profile attributes of the target itself.
    behavior:
        Tweeting behaviour of the target (used for its own timeline).
    """

    screen_name: str
    followers: int
    segments: Sequence[FollowerSegmentSpec]
    created_at: float
    follow_window_days: Optional[float] = None
    daily_new_followers: float = 0.0
    post_ref_bursts: Sequence[PostRefBurst] = ()
    statuses_count: int = 2500
    friends_count: int = 300
    verified: bool = False
    display_name: str = ""
    description: str = "Official account."
    behavior: BehaviorProfile = field(default=BehaviorProfile(tweets_per_day=3.0))

    def __post_init__(self) -> None:
        if self.followers < 0:
            raise ConfigurationError(f"followers must be >= 0: {self.followers!r}")
        if not self.screen_name:
            raise ConfigurationError("screen_name must be non-empty")
        if self.followers > 0:
            if not self.segments:
                raise ConfigurationError("a followed target needs >= 1 segment")
            total = sum(segment.fraction for segment in self.segments)
            if not 0.999 <= total <= 1.001:
                raise ConfigurationError(
                    f"segment fractions must sum to 1, got {total!r}")
        if self.created_at < TWITTER_LAUNCH:
            raise ConfigurationError("target cannot predate Twitter's launch")
        if self.daily_new_followers < 0:
            raise ConfigurationError("daily_new_followers must be >= 0")


class FollowerPopulation:
    """Lazy follower universe of one target.

    Exposes arrival-ordered positions ``0 .. size_at(now) - 1``; every
    query is a deterministic function of the master seed, so repeated
    audits of the same target observe the same world.
    """

    def __init__(self, spec: TargetSpec, ordinal: int, seed: int,
                 ref_time: float) -> None:
        self._spec = spec
        self._ordinal = ordinal
        self._seed = seed
        self._ref_time = ref_time

        window_days = spec.follow_window_days
        if window_days is None:
            window_days = max(1.0, (ref_time - spec.created_at) / DAY)
        window_start = max(spec.created_at, ref_time - window_days * DAY)
        span = ref_time - window_start

        # Translate cohort fractions into chronological segment windows.
        duration_total = sum(
            segment.duration_frac if segment.duration_frac is not None
            else segment.fraction
            for segment in spec.segments
        ) or 1.0
        windows: List[SegmentWindow] = []
        counts: List[int] = []
        cursor = window_start
        remaining = spec.followers
        for index, segment in enumerate(spec.segments):
            if index == len(spec.segments) - 1:
                count = remaining
            else:
                count = int(round(spec.followers * segment.fraction))
                count = min(count, remaining)
            remaining -= count
            duration = (
                segment.duration_frac if segment.duration_frac is not None
                else segment.fraction
            ) / duration_total * span
            windows.append(SegmentWindow(
                count=count, start=cursor, end=cursor + duration,
                gamma=segment.gamma))
            counts.append(count)
            cursor += duration
        self._segment_specs = list(spec.segments)
        self._segment_offsets: List[int] = []
        offset = 0
        for count in counts:
            self._segment_offsets.append(offset)
            offset += count
        # Kept in the schedule's (sorted-by-time) burst order so pseudo
        # segment indices map straight back to their persona mixes.
        self._burst_specs = sorted(
            spec.post_ref_bursts, key=lambda b: (b.days_after, b.count))
        schedule_ref = windows[-1].end if windows else ref_time
        self._schedule = ArrivalSchedule(
            windows, post_ref_daily=spec.daily_new_followers,
            post_ref_bursts=[
                (schedule_ref + burst.days_after * DAY, burst.count)
                for burst in self._burst_specs])

    @property
    def spec(self) -> TargetSpec:
        """The declarative spec this population realises."""
        return self._spec

    @property
    def ordinal(self) -> int:
        """The target's registration ordinal within its world."""
        return self._ordinal

    @property
    def schedule(self) -> ArrivalSchedule:
        """The arrival schedule mapping positions to instants."""
        return self._schedule

    def size_at(self, now: float) -> int:
        """Follower count at simulated instant ``now``."""
        return self._schedule.size_at(now)

    def followed_at(self, position: int) -> float:
        """Arrival instant of the follower at ``position``."""
        return self._schedule.arrival_time(position)

    def follower_id_at(self, position: int) -> int:
        """User id of the follower at arrival ``position``."""
        return follower_id(self._ordinal, position)

    def follower_ids(self, start: int, stop: int) -> np.ndarray:
        """Ids of positions ``[start, stop)`` in chronological order.

        Returned as an int64 array; composing ids is pure arithmetic, so
        a page of 5000 costs microseconds even for a 41 M-follower base.
        """
        if start < 0 or stop < start:
            raise ConfigurationError(f"bad slice [{start}, {stop})")
        base = (FOLLOWER_TAG << _NAMESPACE_SHIFT) | (self._ordinal << _POSITION_BITS)
        return base + np.arange(start, stop, dtype=np.int64)

    def _mix_at(self, position: int) -> Mapping[str, float]:
        """Persona mix governing the follower at ``position``."""
        index, _ = self._schedule.segment_of(position)
        if index > len(self._segment_specs):
            # Post-reference burst members draw from their burst's mix.
            return self._burst_specs[index - len(self._segment_specs) - 1].personas
        if index >= len(self._segment_specs):
            # Post-reference trickle inherits the newest cohort's mix.
            index = len(self._segment_specs) - 1
        return self._segment_specs[index].personas

    def persona_at(self, position: int) -> Persona:
        """Deterministically pick the persona of the follower at ``position``."""
        mix = self._mix_at(position)
        rng = follower_persona_rng(self._seed, self._ordinal, position)
        names = sorted(mix)
        name = weighted_choice(rng, names, [mix[n] for n in names])
        return PERSONAS[str(name)]

    def account_at(self, position: int, now: float) -> Account:
        """Materialise the follower at ``position`` as seen at ``now``.

        The snapshot is sampled with the follower's arrival time as the
        *latest possible creation time* reference: an account must exist
        before it can follow, so its creation is capped at ``followed_at``.
        """
        persona = self.persona_at(position)
        rng = follower_account_rng(self._seed, self._ordinal, position)
        user_id = self.follower_id_at(position)
        screen_name = f"u{self._ordinal}_{position}"
        account = persona.sample(rng, user_id, screen_name, now)
        followed = self.followed_at(position)
        if account.created_at > followed:
            # Re-anchor creation so the follow event is causally valid,
            # preserving the never-tweeted/last-tweet structure.
            shift = account.created_at - followed
            last = account.last_tweet_at
            if last is not None:
                last = max(account.created_at - shift,
                           min(last, now))
            account = Account(
                user_id=account.user_id,
                screen_name=account.screen_name,
                created_at=account.created_at - shift,
                name=account.name,
                description=account.description,
                location=account.location,
                url=account.url,
                default_profile_image=account.default_profile_image,
                verified=account.verified,
                followers_count=account.followers_count,
                friends_count=account.friends_count,
                statuses_count=account.statuses_count,
                last_tweet_at=last,
                behavior=account.behavior,
                true_label=account.true_label,
            )
        return account

    def true_label_at(self, position: int) -> Label:
        """Ground-truth label of the follower at ``position``."""
        return self.persona_at(position).label

    def composition(self, now: float,
                    sample: Optional[int] = None,
                    seed: int = 0) -> Dict[Label, float]:
        """Ground-truth label fractions of the base at ``now``.

        For very large bases an optional uniform ``sample`` bounds the
        cost; with ``sample=None`` every position is inspected.
        """
        size = self.size_at(now)
        if size == 0:
            return {label: 0.0 for label in Label}
        if sample is not None and sample < size:
            rng = composition_rng(self._seed, seed)
            positions = rng.sample(range(size), sample)
        else:
            positions = range(size)
        counts = {label: 0 for label in Label}
        total = 0
        for position in positions:
            counts[self.true_label_at(position)] += 1
            total += 1
        return {label: counts[label] / total for label in Label}


class World:
    """Interface every Twitter-world backend implements.

    ``follower_ids``/``friend_ids`` return slices in *chronological*
    order of edge creation; the API layer is responsible for exposing
    them newest-first, as the real service does (paper, Section IV-B).
    """

    def account_by_name(self, screen_name: str, now: float) -> Account:
        """Resolve a handle to an account snapshot at ``now``."""
        raise NotImplementedError

    def account_by_id(self, user_id: int, now: float) -> Account:
        """Resolve a user id to an account snapshot at ``now``."""
        raise NotImplementedError

    def follower_count(self, user_id: int, now: float) -> int:
        """Number of followers the account has at ``now``."""
        raise NotImplementedError

    def follower_ids(self, user_id: int, start: int, stop: int,
                     now: float) -> Sequence[int]:
        """Chronological slice ``[start, stop)`` of follower ids at ``now``."""
        raise NotImplementedError

    def friend_count(self, user_id: int, now: float) -> int:
        """Number of accounts the user follows at ``now``."""
        raise NotImplementedError

    def friend_ids(self, user_id: int, start: int, stop: int,
                   now: float) -> Sequence[int]:
        """Chronological slice ``[start, stop)`` of followed ids at ``now``."""
        raise NotImplementedError

    def timeline(self, user_id: int, count: int, now: float) -> List[Tweet]:
        """The user's recent tweets at ``now``, newest first."""
        raise NotImplementedError

    def user_objects(self, user_ids: Sequence[int], now: float) -> List["UserObject"]:
        """Resolve ``user_ids`` to API user objects at ``now``, in order.

        Unknown/suspended ids are silently dropped, exactly as the real
        ``users/lookup`` endpoint omits them from its response.  Backends
        with columnar storage override this to build user objects
        straight from attribute columns; this default is the reference
        object path the columnar one must match byte-for-byte.
        """
        from ..api.endpoints import UserObject  # deferred: api imports this module

        users: List[UserObject] = []
        for user_id in user_ids:
            try:
                account = self.account_by_id(user_id, now)
            except UnknownAccountError:
                continue
            users.append(UserObject.from_account(account))
        return users


class SyntheticWorld(World):
    """Lazy world: a registry of :class:`FollowerPopulation` targets plus
    a shared ambient pool answering ``friends/ids`` queries."""

    def __init__(self, seed: int, ref_time: float) -> None:
        self._seed = seed
        self._ref_time = ref_time
        self._populations: List[FollowerPopulation] = []
        self._by_name: Dict[str, int] = {}
        self._timelines = TimelineGenerator(seed)

    @property
    def ref_time(self) -> float:
        """The world's reference instant (its "present")."""
        return self._ref_time

    @property
    def seed(self) -> int:
        """The master seed every generation derives from."""
        return self._seed

    def add_target(self, spec: TargetSpec) -> FollowerPopulation:
        """Register a target and return its lazy follower population."""
        key = spec.screen_name.lower()
        if key in self._by_name:
            raise DuplicateAccountError(spec.screen_name)
        ordinal = len(self._populations)
        population = self._make_population(spec, ordinal)
        self._populations.append(population)
        self._by_name[key] = ordinal
        return population

    def _make_population(self, spec: TargetSpec, ordinal: int) -> FollowerPopulation:
        """Construct the population backend for a newly registered target.

        Subclasses (notably :class:`repro.twitter.columnar.ColumnarWorld`)
        override this to swap in a different substrate while keeping id
        allocation and name registration identical.
        """
        return FollowerPopulation(spec, ordinal, self._seed, self._ref_time)

    def population(self, screen_name: str) -> FollowerPopulation:
        """Look up a registered target's population by handle."""
        key = screen_name.lower()
        if key not in self._by_name:
            raise UnknownAccountError(screen_name)
        return self._populations[self._by_name[key]]

    def targets(self) -> List[FollowerPopulation]:
        """All registered target populations, in registration order."""
        return list(self._populations)

    # -- account resolution --------------------------------------------------

    def _target_account(self, ordinal: int, now: float) -> Account:
        population = self._populations[ordinal]
        spec = population.spec
        last_tweet = None
        statuses = spec.statuses_count
        if statuses > 0:
            last_tweet = max(spec.created_at, now - 2 * HOUR)
        return Account(
            user_id=target_id(ordinal),
            screen_name=spec.screen_name,
            created_at=spec.created_at,
            name=spec.display_name or spec.screen_name,
            description=spec.description,
            location="",
            url="",
            default_profile_image=False,
            verified=spec.verified,
            followers_count=population.size_at(now),
            friends_count=spec.friends_count,
            statuses_count=statuses,
            last_tweet_at=last_tweet,
            behavior=spec.behavior,
            true_label=Label.GENUINE,
        )

    def _ambient_account(self, index: int, now: float) -> Account:
        rng = ambient_rng(self._seed, index)
        persona = PERSONAS[
            "genuine_active" if rng.random() < 0.8 else "genuine_abandoned"]
        return persona.sample(rng, ambient_id(index), f"amb{index}", now)

    def account_by_id(self, user_id: int, now: float) -> Account:
        tag = namespace_of(user_id)
        if tag == TARGET_TAG:
            ordinal = user_id & ((1 << _NAMESPACE_SHIFT) - 1)
            if ordinal >= len(self._populations):
                raise UnknownAccountError(user_id)
            return self._target_account(ordinal, now)
        if tag == FOLLOWER_TAG:
            ordinal, position = decode_follower(user_id)
            if ordinal >= len(self._populations):
                raise UnknownAccountError(user_id)
            population = self._populations[ordinal]
            if position >= population.size_at(now):
                raise UnknownAccountError(user_id)
            return population.account_at(position, now)
        if tag == AMBIENT_TAG:
            index = user_id & ((1 << _NAMESPACE_SHIFT) - 1)
            if index >= AMBIENT_POOL_SIZE:
                raise UnknownAccountError(user_id)
            return self._ambient_account(index, now)
        raise UnknownAccountError(user_id)

    def account_by_name(self, screen_name: str, now: float) -> Account:
        key = screen_name.lower()
        if key in self._by_name:
            return self._target_account(self._by_name[key], now)
        raise UnknownAccountError(screen_name)

    # -- graph queries --------------------------------------------------------

    def follower_count(self, user_id: int, now: float) -> int:
        if namespace_of(user_id) == TARGET_TAG:
            ordinal = user_id & ((1 << _NAMESPACE_SHIFT) - 1)
            if ordinal < len(self._populations):
                return self._populations[ordinal].size_at(now)
        return self.account_by_id(user_id, now).followers_count

    def follower_ids(self, user_id: int, start: int, stop: int,
                     now: float) -> Sequence[int]:
        if namespace_of(user_id) != TARGET_TAG:
            # Leaf accounts' follower lists are not modelled individually;
            # an empty list matches what engines observe for accounts
            # they never audit as targets.
            return []
        ordinal = user_id & ((1 << _NAMESPACE_SHIFT) - 1)
        if ordinal >= len(self._populations):
            raise UnknownAccountError(user_id)
        population = self._populations[ordinal]
        size = population.size_at(now)
        start = max(0, min(start, size))
        stop = max(start, min(stop, size))
        return population.follower_ids(start, stop)

    def friend_count(self, user_id: int, now: float) -> int:
        return self.account_by_id(user_id, now).friends_count

    def friend_ids(self, user_id: int, start: int, stop: int,
                   now: float) -> Sequence[int]:
        count = min(self.friend_count(user_id, now), AMBIENT_POOL_SIZE)
        start = max(0, min(start, count))
        stop = max(start, min(stop, count))
        if stop == start:
            return []
        rng = friends_rng(self._seed, user_id)
        indices = rng.sample(range(AMBIENT_POOL_SIZE), count)
        return [ambient_id(index) for index in indices[start:stop]]

    def timeline(self, user_id: int, count: int, now: float) -> List[Tweet]:
        account = self.account_by_id(user_id, now)
        return self._timelines.recent_tweets(account, count)
