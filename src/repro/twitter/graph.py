"""Fully materialised social graph.

For small-scale studies, property-based tests and the examples, the
library also offers an explicit adjacency-backed graph where every
account and follow edge is a real object.  It implements the same
:class:`~repro.twitter.population.World` interface as the lazy
:class:`SyntheticWorld`, so the API simulator and every engine run
unchanged on either backend.

Follow edges are timestamped; follower/friend lists are maintained in
chronological order of edge creation, matching the semantics verified in
the paper's Section IV-B experiment.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.errors import (
    DuplicateAccountError,
    GraphError,
    UnknownAccountError,
)
from .account import Account
from .population import World
from .timeline import TimelineGenerator
from .tweet import Tweet


@dataclass(frozen=True)
class FollowEdge:
    """A directed, timestamped follow relationship."""

    follower_id: int
    target_id: int
    created_at: float


class _EdgeList:
    """Chronologically ordered edge endpoints with O(log n) insertion."""

    def __init__(self) -> None:
        self._times: List[float] = []
        self._ids: List[int] = []

    def add(self, moment: float, user_id: int) -> None:
        index = bisect.bisect_right(self._times, moment)
        self._times.insert(index, moment)
        self._ids.insert(index, user_id)

    def remove(self, user_id: int) -> None:
        index = self._ids.index(user_id)
        del self._ids[index]
        del self._times[index]

    def ids_until(self, now: float) -> List[int]:
        index = bisect.bisect_right(self._times, now)
        return self._ids[:index]

    def count_until(self, now: float) -> int:
        return bisect.bisect_right(self._times, now)

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._ids


class SocialGraph(World):
    """An explicit, mutable social graph.

    A materialised graph is almost always a *partial* view of the
    network: the accounts' own audiences are not locally present (you
    never crawl all of Twitter).  Counts reported in snapshots therefore
    combine both sources of truth: ``followers_count``/``friends_count``
    is the **larger of the declared profile count and the locally
    materialised edge count** at observation time.  A fresh follower
    with a declared audience of 500 keeps reporting 500; a target whose
    1200 followers were materialised here reports 1200 even if it was
    registered with a zero count.  Listings (``follower_ids`` /
    ``friend_ids``) always come from the materialised edges, in
    chronological order.
    """

    def __init__(self, seed: int = 0) -> None:
        self._accounts: Dict[int, Account] = {}
        self._by_name: Dict[str, int] = {}
        self._followers: Dict[int, _EdgeList] = {}
        self._friends: Dict[int, _EdgeList] = {}
        self._timelines = TimelineGenerator(seed)

    # -- mutation --------------------------------------------------------------

    def add_account(self, account: Account) -> None:
        """Register an account.

        The snapshot's ``followers_count``/``friends_count`` fields are
        kept as the account's *declared* counts; edges added to this
        graph can only raise the reported numbers above them.
        """
        if account.user_id in self._accounts:
            raise DuplicateAccountError(account.user_id)
        key = account.screen_name.lower()
        if key in self._by_name:
            raise DuplicateAccountError(account.screen_name)
        self._accounts[account.user_id] = account
        self._by_name[key] = account.user_id
        self._followers[account.user_id] = _EdgeList()
        self._friends[account.user_id] = _EdgeList()

    def follow(self, follower_id: int, followee_id: int, at: float) -> FollowEdge:
        """Create a follow edge at simulated instant ``at``."""
        self._require(follower_id)
        self._require(followee_id)
        if follower_id == followee_id:
            raise GraphError("an account cannot follow itself")
        if follower_id in self._followers[followee_id]:
            raise GraphError(
                f"{follower_id} already follows {followee_id}")
        self._followers[followee_id].add(at, follower_id)
        self._friends[follower_id].add(at, followee_id)
        return FollowEdge(follower_id, followee_id, at)

    def unfollow(self, follower_id: int, followee_id: int) -> None:
        """Remove an existing follow edge."""
        self._require(follower_id)
        self._require(followee_id)
        if follower_id not in self._followers[followee_id]:
            raise GraphError(f"{follower_id} does not follow {followee_id}")
        self._followers[followee_id].remove(follower_id)
        self._friends[follower_id].remove(followee_id)

    def update_account(self, account: Account) -> None:
        """Replace a registered account's snapshot (live simulations).

        The id and screen name must match the registered entry; edges
        are untouched.
        """
        current = self._require(account.user_id)
        if current.screen_name.lower() != account.screen_name.lower():
            raise GraphError(
                "update_account cannot rename an account "
                f"({current.screen_name!r} -> {account.screen_name!r})")
        self._accounts[account.user_id] = account

    def _require(self, user_id: int) -> Account:
        if user_id not in self._accounts:
            raise UnknownAccountError(user_id)
        return self._accounts[user_id]

    # -- inspection --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._accounts)

    def has_account(self, user_id: int) -> bool:
        """Whether an account with this id is registered."""
        return user_id in self._accounts

    def has_screen_name(self, screen_name: str) -> bool:
        """Whether a handle is already taken (case-insensitive)."""
        return screen_name.lower() in self._by_name

    def is_following(self, follower_id: int, followee_id: int) -> bool:
        """Whether a follow edge currently exists."""
        self._require(follower_id)
        self._require(followee_id)
        return follower_id in self._followers[followee_id]

    def all_account_ids(self) -> List[int]:
        """Ids of every registered account."""
        return list(self._accounts)

    # -- World interface -----------------------------------------------------------

    def account_by_id(self, user_id: int, now: float) -> Account:
        """Snapshot of an account at ``now`` (max of declared/edge counts)."""
        account = self._require(user_id)
        if account.created_at > now:
            raise UnknownAccountError(user_id)
        return account.with_counts(
            followers_count=max(
                account.followers_count,
                self._followers[user_id].count_until(now)),
            friends_count=max(
                account.friends_count,
                self._friends[user_id].count_until(now)),
        )

    def account_by_name(self, screen_name: str, now: float) -> Account:
        """Resolve a handle (case-insensitive) to a snapshot at ``now``."""
        key = screen_name.lower()
        if key not in self._by_name:
            raise UnknownAccountError(screen_name)
        return self.account_by_id(self._by_name[key], now)

    def follower_count(self, user_id: int, now: float) -> int:
        """Materialised follower-edge count at ``now``."""
        self._require(user_id)
        return self._followers[user_id].count_until(now)

    def follower_ids(self, user_id: int, start: int, stop: int,
                     now: float) -> Sequence[int]:
        """Slice of the chronological follower listing at ``now``."""
        self._require(user_id)
        return self._followers[user_id].ids_until(now)[start:stop]

    def friend_count(self, user_id: int, now: float) -> int:
        """Materialised friend-edge count at ``now``."""
        self._require(user_id)
        return self._friends[user_id].count_until(now)

    def friend_ids(self, user_id: int, start: int, stop: int,
                   now: float) -> Sequence[int]:
        """Slice of the chronological friend listing at ``now``."""
        self._require(user_id)
        return self._friends[user_id].ids_until(now)[start:stop]

    def timeline(self, user_id: int, count: int, now: float) -> List[Tweet]:
        """The account's recent tweets visible at ``now``, newest first."""
        account = self.account_by_id(user_id, now)
        tweets = self._timelines.recent_tweets(account, count)
        return [tweet for tweet in tweets if tweet.created_at <= now]
