"""Columnar account schema: the structured dtype and row adapters.

One follower = one row of :data:`ACCOUNT_DTYPE`, a NumPy structured
dtype holding every field of :class:`repro.twitter.account.Account`
(profile observables, behaviour profile, ground-truth label).  The
round trip is exact by construction:

* counts are int64, times are float64 — both store the generated Python
  values without rounding;
* ``last_tweet_at=None`` (never tweeted) is encoded as NaN, the only
  float value the generators never produce;
* strings live in fixed-width unicode columns whose widths exceed the
  longest string any persona sampler can mint; :func:`pack_account`
  *verifies* that on every write and refuses to truncate, so a silent
  bit-identity break is impossible;
* the ground-truth label is stored as an int8 index into
  :data:`repro.twitter.account.LABELS`.

:func:`materialize_account` inverts :func:`pack_account` exactly, and
:func:`user_object_from_row` projects a row straight onto the public
:class:`~repro.api.endpoints.UserObject` shape without building the
intermediate :class:`Account` — the hop the columnar substrate exists
to remove.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import List, Optional, Tuple

import numpy as np

from ...core.errors import ConfigurationError
from ..account import Account, BehaviorProfile, LABELS

#: Fixed string column widths.  Persona samplers mint screen names of at
#: most 15 characters, display names of at most 15, bios of at most 36,
#: locations of at most 11 and urls of at most 34; widths leave headroom
#: and ``pack_account`` raises rather than truncate if a generator ever
#: outgrows them.
STRING_WIDTHS = {
    "screen_name": 20,
    "name": 24,
    "description": 48,
    "location": 16,
    "url": 40,
}

ACCOUNT_DTYPE = np.dtype([
    ("user_id", "<i8"),
    ("screen_name", f"<U{STRING_WIDTHS['screen_name']}"),
    ("created_at", "<f8"),
    ("name", f"<U{STRING_WIDTHS['name']}"),
    ("description", f"<U{STRING_WIDTHS['description']}"),
    ("location", f"<U{STRING_WIDTHS['location']}"),
    ("url", f"<U{STRING_WIDTHS['url']}"),
    ("default_profile_image", "?"),
    ("verified", "?"),
    ("followers_count", "<i8"),
    ("friends_count", "<i8"),
    ("statuses_count", "<i8"),
    ("last_tweet_at", "<f8"),      # NaN == never tweeted
    # Behaviour profile (drives lazy timeline synthesis).
    ("tweets_per_day", "<f8"),
    ("retweet_ratio", "<f8"),
    ("link_ratio", "<f8"),
    ("spam_ratio", "<f8"),
    ("mention_ratio", "<f8"),
    ("hashtag_ratio", "<f8"),
    ("duplicate_pool", "<i8"),
    ("api_source_ratio", "<f8"),
    ("label", "i1"),               # index into account.LABELS
])

_LABEL_INDEX = {label: index for index, label in enumerate(LABELS)}


def pack_account(row: np.void, account: Account) -> None:
    """Write ``account`` into ``row`` in place, refusing lossy writes."""
    for field, width in STRING_WIDTHS.items():
        value = getattr(account, field)
        if len(value) > width:
            raise ConfigurationError(
                f"account {account.user_id} field {field!r} exceeds the "
                f"columnar width {width}: {value!r}")
    row["user_id"] = account.user_id
    row["screen_name"] = account.screen_name
    row["created_at"] = account.created_at
    row["name"] = account.name
    row["description"] = account.description
    row["location"] = account.location
    row["url"] = account.url
    row["default_profile_image"] = account.default_profile_image
    row["verified"] = account.verified
    row["followers_count"] = account.followers_count
    row["friends_count"] = account.friends_count
    row["statuses_count"] = account.statuses_count
    row["last_tweet_at"] = (np.nan if account.last_tweet_at is None
                            else account.last_tweet_at)
    behavior = account.behavior
    row["tweets_per_day"] = behavior.tweets_per_day
    row["retweet_ratio"] = behavior.retweet_ratio
    row["link_ratio"] = behavior.link_ratio
    row["spam_ratio"] = behavior.spam_ratio
    row["mention_ratio"] = behavior.mention_ratio
    row["hashtag_ratio"] = behavior.hashtag_ratio
    row["duplicate_pool"] = behavior.duplicate_pool
    row["api_source_ratio"] = behavior.api_source_ratio
    row["label"] = _LABEL_INDEX[account.true_label]


def _last_tweet_at(row: np.void) -> Optional[float]:
    value = float(row["last_tweet_at"])
    return None if value != value else value


def materialize_account(row: np.void) -> Account:
    """Reconstruct the exact :class:`Account` a row was packed from."""
    return Account(
        user_id=int(row["user_id"]),
        screen_name=str(row["screen_name"]),
        created_at=float(row["created_at"]),
        name=str(row["name"]),
        description=str(row["description"]),
        location=str(row["location"]),
        url=str(row["url"]),
        default_profile_image=bool(row["default_profile_image"]),
        verified=bool(row["verified"]),
        followers_count=int(row["followers_count"]),
        friends_count=int(row["friends_count"]),
        statuses_count=int(row["statuses_count"]),
        last_tweet_at=_last_tweet_at(row),
        behavior=BehaviorProfile(
            tweets_per_day=float(row["tweets_per_day"]),
            retweet_ratio=float(row["retweet_ratio"]),
            link_ratio=float(row["link_ratio"]),
            spam_ratio=float(row["spam_ratio"]),
            mention_ratio=float(row["mention_ratio"]),
            hashtag_ratio=float(row["hashtag_ratio"]),
            duplicate_pool=int(row["duplicate_pool"]),
            api_source_ratio=float(row["api_source_ratio"]),
        ),
        true_label=LABELS[int(row["label"])],
    )


def user_object_from_row(row: np.void):
    """Project a row onto the public API user-object shape directly."""
    from ...api.endpoints import UserObject  # deferred: api imports twitter

    return UserObject(
        user_id=int(row["user_id"]),
        screen_name=str(row["screen_name"]),
        name=str(row["name"]),
        created_at=float(row["created_at"]),
        description=str(row["description"]),
        location=str(row["location"]),
        url=str(row["url"]),
        default_profile_image=bool(row["default_profile_image"]),
        verified=bool(row["verified"]),
        followers_count=int(row["followers_count"]),
        friends_count=int(row["friends_count"]),
        statuses_count=int(row["statuses_count"]),
        last_status_at=_last_tweet_at(row),
    )


class UserRowBlock(Sequence):
    """A batch of account rows posing as a sequence of user objects.

    Indexing and iteration materialise :class:`UserObject` instances
    lazily, so row-oriented consumers keep working; the vectorized FC
    extractor instead calls :meth:`profile_columns` and never touches
    per-row objects at all.
    """

    def __init__(self, rows: np.ndarray) -> None:
        if rows.dtype != ACCOUNT_DTYPE:
            raise ConfigurationError(
                f"expected ACCOUNT_DTYPE rows, got {rows.dtype!r}")
        self._rows = rows

    def __len__(self) -> int:
        return len(self._rows)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return UserRowBlock(self._rows[index])
        return user_object_from_row(self._rows[index])

    @property
    def rows(self) -> np.ndarray:
        """The underlying structured rows (read-mostly)."""
        return self._rows

    @classmethod
    def from_users(cls, users) -> "UserRowBlock":
        """Pack plain user objects into a row block.

        Only the profile fields a :class:`UserObject` carries are
        written; the behaviour columns that drive lazy timeline
        synthesis stay zeroed — callers classify profiles, they do not
        synthesise timelines from the result.  Refuses lossy string
        writes like :func:`pack_account`.
        """
        rows = np.zeros(len(users), dtype=ACCOUNT_DTYPE)
        for row, user in zip(rows, users):
            for field, width in STRING_WIDTHS.items():
                value = getattr(user, field)
                if len(value) > width:
                    raise ConfigurationError(
                        f"user {user.user_id} field {field!r} exceeds the "
                        f"columnar width {width}: {value!r}")
            row["user_id"] = user.user_id
            row["screen_name"] = user.screen_name
            row["created_at"] = user.created_at
            row["name"] = user.name
            row["description"] = user.description
            row["location"] = user.location
            row["url"] = user.url
            row["default_profile_image"] = user.default_profile_image
            row["verified"] = user.verified
            row["followers_count"] = user.followers_count
            row["friends_count"] = user.friends_count
            row["statuses_count"] = user.statuses_count
            row["last_tweet_at"] = (np.nan if user.last_status_at is None
                                    else user.last_status_at)
        return cls(rows)

    def user_ids(self) -> List[int]:
        """The block's user ids, in row order, as Python ints."""
        return [int(v) for v in self._rows["user_id"].tolist()]

    def profile_columns(self) -> Tuple[List[object], ...]:
        """The 11 profile attribute columns, in the order the FC
        extractor's attribute sweep reads them.

        Values are exactly what per-object attribute access would have
        produced: Python ints/floats/strs/bools converted from the row
        scalars (``last_status_at`` keeps ``None`` for never-tweeted).
        """
        rows = self._rows
        return (
            [int(v) for v in rows["followers_count"].tolist()],
            [int(v) for v in rows["friends_count"].tolist()],
            [int(v) for v in rows["statuses_count"].tolist()],
            [float(v) for v in rows["created_at"].tolist()],
            [None if v != v else float(v)
             for v in rows["last_tweet_at"].tolist()],
            [str(v) for v in rows["description"].tolist()],
            [str(v) for v in rows["location"].tolist()],
            [str(v) for v in rows["url"].tolist()],
            [str(v) for v in rows["name"].tolist()],
            [bool(v) for v in rows["default_profile_image"].tolist()],
            [str(v) for v in rows["screen_name"].tolist()],
        )
