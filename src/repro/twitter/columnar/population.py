"""Columnar follower population: the object population's lazy twin.

:class:`ColumnarPopulation` subclasses
:class:`repro.twitter.population.FollowerPopulation` and generates the
*same* accounts (same documented random streams, see
:mod:`repro.twitter.streams`) but stores them as structured-array rows
in a :class:`~repro.twitter.columnar.store.ChunkStore`.  Every
:meth:`account_at` answer round-trips through its row, so the
differential suite exercising this class proves the row encoding is
lossless, not merely that two code paths agree.

Follower-edge ids are likewise served from chunked int64 arrays whose
values equal the object path's arithmetic ids exactly; chunking keeps a
followers/ids page O(page) regardless of where in a 41M-edge list it
falls, and preserves chronological order (the API layer flips pages to
the service's newest-first order, as before).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional, Tuple

import numpy as np

from ...core.errors import ConfigurationError
from ..account import Account
from ..population import (
    _NAMESPACE_SHIFT,
    _POSITION_BITS,
    FOLLOWER_TAG,
    FollowerPopulation,
    TargetSpec,
)
from .schema import UserRowBlock, materialize_account
from .store import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_MAX_CACHED_CHUNKS,
    ChunkStore,
)

#: Edge chunks are pure arithmetic (base + arange) and cheap to rebuild;
#: a handful of cached pages covers cursoring locality.
EDGE_CHUNKS_CACHED = 8


class ColumnarPopulation(FollowerPopulation):
    """Drop-in :class:`FollowerPopulation` backed by columnar chunks."""

    def __init__(self, spec: TargetSpec, ordinal: int, seed: int,
                 ref_time: float, *,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 max_cached_chunks: int = DEFAULT_MAX_CACHED_CHUNKS) -> None:
        super().__init__(spec, ordinal, seed, ref_time)
        self._store = ChunkStore(
            self._generate_account, chunk_size=chunk_size,
            max_cached_chunks=max_cached_chunks)
        self._edge_chunks: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self.edge_chunks_materialized = 0

    @property
    def store(self) -> ChunkStore:
        """The attribute-row chunk store (telemetry lives here)."""
        return self._store

    def _generate_account(self, position: int, now: float) -> Account:
        # The one true generator: the object path's account_at, which
        # draws from the documented streams.  Both substrates therefore
        # share a single generation call site by construction.
        return FollowerPopulation.account_at(self, position, now)

    # -- attribute rows ------------------------------------------------------

    def account_at(self, position: int, now: float) -> Account:
        """Materialise via the row encoding (proves it lossless)."""
        size = self.size_at(now)
        if position >= size:
            raise ConfigurationError(
                f"position {position} >= population size {size}")
        rows = self._store.gather((position,), now, size)
        return materialize_account(rows[0])

    def user_rows(self, positions: Iterable[int], now: float) -> np.ndarray:
        """Structured rows for ascending unique ``positions`` at ``now``."""
        return self._store.gather(positions, now, self.size_at(now))

    def user_block(self, positions: Iterable[int], now: float) -> UserRowBlock:
        """Rows wrapped as a lazily-materialising user-object sequence."""
        return UserRowBlock(self.user_rows(positions, now))

    # -- follower edges ------------------------------------------------------

    def _edge_chunk(self, index: int) -> np.ndarray:
        chunk = self._edge_chunks.get(index)
        if chunk is not None:
            self._edge_chunks.move_to_end(index)
            return chunk
        chunk_size = self._store.chunk_size
        base = ((FOLLOWER_TAG << _NAMESPACE_SHIFT)
                | (self.ordinal << _POSITION_BITS))
        start = index * chunk_size
        chunk = base + np.arange(start, start + chunk_size, dtype=np.int64)
        self.edge_chunks_materialized += 1
        self._edge_chunks[index] = chunk
        if len(self._edge_chunks) > EDGE_CHUNKS_CACHED:
            self._edge_chunks.popitem(last=False)
        return chunk

    def follower_ids(self, start: int, stop: int) -> np.ndarray:
        """Chronological id slice served from chunked edge arrays."""
        if start < 0 or stop < start:
            raise ConfigurationError(f"bad slice [{start}, {stop})")
        if stop == start:
            return np.empty(0, dtype=np.int64)
        chunk_size = self._store.chunk_size
        pieces = []
        index = start // chunk_size
        cursor = start
        while cursor < stop:
            chunk = self._edge_chunk(index)
            chunk_start = index * chunk_size
            lo = cursor - chunk_start
            hi = min(stop - chunk_start, chunk_size)
            pieces.append(chunk[lo:hi])
            cursor = chunk_start + hi
            index += 1
        if len(pieces) == 1:
            return pieces[0].copy()
        return np.concatenate(pieces)

    def substrate_stats(self) -> dict:
        """Telemetry for the perf ``substrate`` measurement class."""
        stats = dict(self._store.stats())
        stats["edge_chunks_materialized"] = self.edge_chunks_materialized
        return stats
