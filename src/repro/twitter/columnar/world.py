"""Columnar synthetic world: SyntheticWorld over columnar populations.

The world keeps :class:`repro.twitter.population.SyntheticWorld`'s id
namespaces, registries and every behavioural contract; only the
population backend changes (via the ``_make_population`` hook) and
``users/lookup`` resolution is re-routed through
:meth:`ColumnarWorld.user_objects`, which groups follower ids by
target, gathers their rows per chunk and projects user objects straight
off the columns — no intermediate :class:`Account` objects on the API
hot path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ...core.errors import UnknownAccountError
from ..population import (
    FOLLOWER_TAG,
    FollowerPopulation,
    SyntheticWorld,
    TargetSpec,
    decode_follower,
    namespace_of,
)
from .population import ColumnarPopulation
from .store import DEFAULT_CHUNK_SIZE, DEFAULT_MAX_CACHED_CHUNKS


class ColumnarWorld(SyntheticWorld):
    """A :class:`SyntheticWorld` whose targets use columnar substrates."""

    def __init__(self, seed: int, ref_time: float, *,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 max_cached_chunks: int = DEFAULT_MAX_CACHED_CHUNKS) -> None:
        super().__init__(seed, ref_time)
        self._chunk_size = chunk_size
        self._max_cached_chunks = max_cached_chunks

    def _make_population(self, spec: TargetSpec,
                         ordinal: int) -> FollowerPopulation:
        return ColumnarPopulation(
            spec, ordinal, self.seed, self.ref_time,
            chunk_size=self._chunk_size,
            max_cached_chunks=self._max_cached_chunks)

    def user_objects(self, user_ids: Sequence[int], now: float) -> List:
        """Columnar ``users/lookup``: batch follower rows per target.

        Output equals the object path's loop exactly — same order, same
        silent omission of unknown ids — but follower profiles are
        gathered as rows and projected onto user objects without
        building accounts.  Non-follower ids (targets, ambient pool)
        take the inherited per-id path.
        """
        from ...api.endpoints import UserObject  # deferred: api imports twitter

        # Pass 1: group resolvable follower positions by target ordinal.
        wanted: Dict[int, set] = {}
        for user_id in user_ids:
            if namespace_of(user_id) != FOLLOWER_TAG:
                continue
            ordinal, position = decode_follower(user_id)
            if ordinal >= len(self._populations):
                continue
            if position >= self._populations[ordinal].size_at(now):
                continue  # not yet followed at ``now`` — unknown, skipped
            wanted.setdefault(ordinal, set()).add(position)

        projected: Dict[int, UserObject] = {}
        for ordinal, positions in wanted.items():
            population = self._populations[ordinal]
            assert isinstance(population, ColumnarPopulation)
            block = population.user_block(sorted(positions), now)
            for user in block:
                projected[user.user_id] = user

        # Pass 2: emit in input order (duplicates included, as before).
        users: List[UserObject] = []
        for user_id in user_ids:
            hit = projected.get(user_id)
            if hit is not None:
                users.append(hit)
                continue
            if namespace_of(user_id) == FOLLOWER_TAG:
                continue  # unresolvable follower id: omitted
            try:
                account = self.account_by_id(user_id, now)
            except UnknownAccountError:
                continue
            users.append(UserObject.from_account(account))
        return users

    def user_row_block(self, user_ids: Sequence[int],
                       now: float) -> Optional["UserRowBlock"]:
        """``users/lookup`` as one structured-row block, when possible.

        The projection behind the engines' columnar classification: the
        same grouping/gathering as :meth:`user_objects`, but the result
        stays in row form (a :class:`UserRowBlock`) so criteria masks
        can read whole columns without materialising user objects.
        Returns ``None`` when any id falls outside the follower
        namespace (targets, ambient accounts) — those have no rows, so
        the caller must take the object path instead.  Order and
        duplicate semantics match :meth:`user_objects`; unresolvable
        follower ids are silently omitted.
        """
        import numpy as np

        from .schema import ACCOUNT_DTYPE, UserRowBlock

        wanted: Dict[int, set] = {}
        for user_id in user_ids:
            if namespace_of(user_id) != FOLLOWER_TAG:
                return None
            ordinal, position = decode_follower(user_id)
            if ordinal >= len(self._populations):
                continue
            if position >= self._populations[ordinal].size_at(now):
                continue
            wanted.setdefault(ordinal, set()).add(position)

        parts = []
        for ordinal, positions in wanted.items():
            population = self._populations[ordinal]
            assert isinstance(population, ColumnarPopulation)
            parts.append(population.user_rows(sorted(positions), now))
        pool = (np.concatenate(parts) if parts
                else np.empty(0, dtype=ACCOUNT_DTYPE))
        index_of = {int(uid): i
                    for i, uid in enumerate(pool["user_id"].tolist())}
        indices = [index_of[uid] for uid in user_ids if uid in index_of]
        return UserRowBlock(pool[np.asarray(indices, dtype=np.intp)])

    def substrate_stats(self) -> Dict[str, int]:
        """Aggregate chunk-store telemetry across all targets."""
        totals: Dict[str, int] = {}
        for population in self._populations:
            if not isinstance(population, ColumnarPopulation):
                continue
            for key, value in population.substrate_stats().items():
                if key == "chunk_size":
                    totals.setdefault(key, value)
                    continue
                totals[key] = totals.get(key, 0) + value
        return totals


def build_columnar_world(seed: int = 42, ref_time: Optional[float] = None, *,
                         chunk_size: int = DEFAULT_CHUNK_SIZE,
                         max_cached_chunks: int = DEFAULT_MAX_CACHED_CHUNKS,
                         ) -> ColumnarWorld:
    """Create an empty columnar world anchored at ``ref_time``."""
    from ...core.timeutil import PAPER_EPOCH

    return ColumnarWorld(
        seed=seed,
        ref_time=PAPER_EPOCH if ref_time is None else ref_time,
        chunk_size=chunk_size,
        max_cached_chunks=max_cached_chunks)


def columnar_twin(world: SyntheticWorld, *,
                  chunk_size: int = DEFAULT_CHUNK_SIZE,
                  max_cached_chunks: int = DEFAULT_MAX_CACHED_CHUNKS,
                  ) -> ColumnarWorld:
    """Columnar clone of ``world``: same seed, ref time and targets.

    The twin regenerates the same accounts from the same streams, which
    is what the differential parity suite compares against.
    """
    twin = ColumnarWorld(
        seed=world.seed, ref_time=world.ref_time,
        chunk_size=chunk_size, max_cached_chunks=max_cached_chunks)
    for population in world.targets():
        twin.add_target(population.spec)
    return twin
