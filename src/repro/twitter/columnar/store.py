"""Chunked lazy column store for follower attribute rows.

Followers are partitioned by arrival position into fixed-size chunks;
chunk ``i`` covers positions ``[i * chunk_size, (i + 1) * chunk_size)``.
Materialising a chunk is a pure function of ``(seed, chunk_index,
observation instant)`` — each row is generated independently off the
follower's documented random streams (see
:mod:`repro.twitter.streams`), so *any* chunk can be built on demand
without generating its predecessors, which is what bounds memory at
Obama scale.

Rows depend on the observation instant ``now`` (persona samplers draw
ages relative to it, and arrival re-anchoring clamps against it), so
the chunk cache is keyed ``(chunk_index, now)``.  Under a pinned batch
epoch every audit shares one ``now`` and the cache pays off across
engines; unpinned serial audits simply regenerate — correctness never
depends on a hit.

:meth:`ChunkStore.gather` serves sparse position sets (audit samples)
without materialising whole chunks: a chunk's rows are generated
individually unless the request wants a dense-enough slice of it to
justify caching the full chunk.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Tuple

import numpy as np

from ...core.errors import ConfigurationError
from ..account import Account
from .schema import ACCOUNT_DTYPE, pack_account

#: Fraction of a chunk a gather must touch before the store densifies
#: (materialises and caches the whole chunk instead of single rows).
DENSIFY_FRACTION = 0.25

DEFAULT_CHUNK_SIZE = 16_384
DEFAULT_MAX_CACHED_CHUNKS = 64


class ChunkStore:
    """LRU-cached, lazily generated structured-array chunks."""

    def __init__(self, generate_account: Callable[[int, float], Account],
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 max_cached_chunks: int = DEFAULT_MAX_CACHED_CHUNKS) -> None:
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1: {chunk_size!r}")
        if max_cached_chunks < 1:
            raise ConfigurationError(
                f"max_cached_chunks must be >= 1: {max_cached_chunks!r}")
        self._generate = generate_account
        self._chunk_size = chunk_size
        self._max_cached = max_cached_chunks
        self._chunks: "OrderedDict[Tuple[int, float], np.ndarray]" = OrderedDict()
        # Substrate telemetry, read by the perf `substrate` class.
        self.chunks_materialized = 0
        self.rows_generated = 0
        self.gather_calls = 0
        self.cache_hits = 0
        self.evictions = 0

    @property
    def chunk_size(self) -> int:
        """Rows per chunk; chunk ``i`` covers ``[i*size, (i+1)*size)``."""
        return self._chunk_size

    def stats(self) -> Dict[str, int]:
        """Counter snapshot (cheap, plain ints)."""
        return {
            "chunk_size": self._chunk_size,
            "chunks_cached": len(self._chunks),
            "chunks_materialized": self.chunks_materialized,
            "rows_generated": self.rows_generated,
            "gather_calls": self.gather_calls,
            "cache_hits": self.cache_hits,
            "evictions": self.evictions,
        }

    def _generate_row(self, out: np.ndarray, offset: int, position: int,
                      now: float) -> None:
        pack_account(out[offset], self._generate(position, now))
        self.rows_generated += 1

    def chunk(self, index: int, now: float, limit: int) -> np.ndarray:
        """The full chunk at ``index`` as seen at ``now``.

        ``limit`` is the population size at ``now``; a trailing chunk is
        clamped to it, so rows past the current size are never generated.
        The returned array is cached — callers must not mutate it.
        """
        key = (index, now)
        cached = self._chunks.get(key)
        if cached is not None:
            self._chunks.move_to_end(key)
            self.cache_hits += 1
            return cached
        start = index * self._chunk_size
        stop = min(start + self._chunk_size, limit)
        if stop <= start:
            raise ConfigurationError(
                f"chunk {index} is empty at limit {limit}")
        rows = np.empty(stop - start, dtype=ACCOUNT_DTYPE)
        for offset, position in enumerate(range(start, stop)):
            self._generate_row(rows, offset, position, now)
        self.chunks_materialized += 1
        self._chunks[key] = rows
        if len(self._chunks) > self._max_cached:
            self._chunks.popitem(last=False)
            self.evictions += 1
        return rows

    def gather(self, positions: Iterable[int], now: float,
               limit: int) -> np.ndarray:
        """Rows for ``positions`` (ascending, unique), packed in order.

        Positions must lie in ``[0, limit)``.  Chunks already cached for
        this ``now`` are sliced; chunks a request covers densely enough
        (>= ``DENSIFY_FRACTION`` of the chunk, or the whole trailing
        chunk) are materialised and cached; remaining sparse rows are
        generated individually without touching the cache.
        """
        self.gather_calls += 1
        wanted = list(positions)
        out = np.empty(len(wanted), dtype=ACCOUNT_DTYPE)
        if not wanted:
            return out
        previous = -1
        for position in wanted:
            if position <= previous:
                raise ConfigurationError(
                    "gather positions must be strictly ascending")
            previous = position
        if wanted[-1] >= limit or wanted[0] < 0:
            raise ConfigurationError(
                f"gather positions out of range [0, {limit})")

        # Group by chunk, preserving output order.
        groups: List[Tuple[int, List[int], List[int]]] = []
        current_chunk = -1
        for out_index, position in enumerate(wanted):
            chunk_index = position // self._chunk_size
            if chunk_index != current_chunk:
                groups.append((chunk_index, [], []))
                current_chunk = chunk_index
            groups[-1][1].append(position)
            groups[-1][2].append(out_index)

        for chunk_index, chunk_positions, out_indices in groups:
            start = chunk_index * self._chunk_size
            span = min(self._chunk_size, limit - start)
            cached = self._chunks.get((chunk_index, now))
            dense = len(chunk_positions) >= max(
                1, int(span * DENSIFY_FRACTION))
            if cached is None and dense:
                cached = self.chunk(chunk_index, now, limit)
            elif cached is not None:
                self._chunks.move_to_end((chunk_index, now))
                self.cache_hits += 1
            if cached is not None:
                offsets = [p - start for p in chunk_positions]
                out[out_indices] = cached[offsets]
            else:
                for out_index, position in zip(out_indices, chunk_positions):
                    self._generate_row(out, out_index, position, now)
        return out
