"""Lazy, chunked, columnar population substrate.

See :mod:`repro.twitter.columnar.schema` for the row encoding,
:mod:`~repro.twitter.columnar.store` for chunked lazy generation,
:mod:`~repro.twitter.columnar.population` for the drop-in population
and :mod:`~repro.twitter.columnar.world` for the world backend.  The
bit-identity contract with the object substrate is enforced by
``tests/twitter/test_columnar_parity.py``.
"""

from .population import ColumnarPopulation, EDGE_CHUNKS_CACHED
from .schema import (
    ACCOUNT_DTYPE,
    STRING_WIDTHS,
    UserRowBlock,
    materialize_account,
    pack_account,
    user_object_from_row,
)
from .store import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_MAX_CACHED_CHUNKS,
    DENSIFY_FRACTION,
    ChunkStore,
)
from .world import ColumnarWorld, build_columnar_world, columnar_twin

__all__ = [
    "ACCOUNT_DTYPE",
    "ChunkStore",
    "ColumnarPopulation",
    "ColumnarWorld",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_MAX_CACHED_CHUNKS",
    "DENSIFY_FRACTION",
    "EDGE_CHUNKS_CACHED",
    "STRING_WIDTHS",
    "UserRowBlock",
    "build_columnar_world",
    "columnar_twin",
    "materialize_account",
    "pack_account",
    "user_object_from_row",
]
