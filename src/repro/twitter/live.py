"""Event-driven live simulation over the materialised graph.

The lazy worlds of :mod:`repro.twitter.population` bake a follower
base's entire history into a static arrival schedule — perfect for
reproducing the paper's measurements, but mute on *dynamics*: accounts
that keep tweeting, audiences that churn, purchases that land while a
monitor watches.  This module adds a classic discrete-event simulation
on top of :class:`~repro.twitter.graph.SocialGraph`:

* an event queue driving the shared :class:`SimClock`;
* recurring **processes** (organic follower growth, audience churn,
  the target's own tweeting);
* one-shot scheduled actions (used by :mod:`repro.market` to deliver
  purchased follower blocks).

Because the graph implements the same ``World`` interface, every
engine, crawler and monitor in the library runs against a live
simulation unchanged — audits can be interleaved with the events that
change their answers.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field, replace
from typing import Callable, List, Mapping, Optional

from ..core.clock import SimClock
from ..core.errors import ConfigurationError
from ..core.ids import IdGenerator
from ..core.rng import make_rng, poisson, weighted_choice
from ..core.timeutil import DAY
from .account import Account
from .graph import SocialGraph
from .personas import PERSONAS

Action = Callable[["LiveSimulation"], None]


@dataclass(order=True)
class _Scheduled:
    time: float
    seq: int
    action: Action = field(compare=False)


class LiveSimulation:
    """A discrete-event simulation bound to one graph and one clock.

    Events fire in timestamp order (FIFO among equal timestamps); the
    clock never runs ahead of the events already executed, so any audit
    issued between ``run_until`` calls observes a consistent world.
    """

    def __init__(self, graph: SocialGraph, clock: SimClock,
                 seed: int = 0) -> None:
        self._graph = graph
        self._clock = clock
        self._queue: List[_Scheduled] = []
        self._sequence = itertools.count()
        self._ids = IdGenerator(worker=3)
        self._names = itertools.count(1)
        self._seed = seed
        self._executed = 0

    @property
    def graph(self) -> SocialGraph:
        """The mutable graph the simulation drives."""
        return self._graph

    @property
    def clock(self) -> SimClock:
        """The simulation's clock (shared with any observer)."""
        return self._clock

    @property
    def executed_events(self) -> int:
        """Events executed since construction."""
        return self._executed

    def now(self) -> float:
        """Current simulated time."""
        return self._clock.now()

    def rng(self, *path: object) -> random.Random:
        """A deterministic child RNG for a named component."""
        return make_rng(self._seed, "live", *path)

    def mint_user_id(self, created_at: float) -> int:
        """A fresh, time-ordered id for a newly created account."""
        return self._ids.next_id(created_at)

    def mint_screen_name(self, prefix: str = "live") -> str:
        """A fresh, unique handle for a newly created account."""
        return f"{prefix}_{next(self._names)}"

    def schedule(self, at: float, action: Action) -> None:
        """Schedule a one-shot action at absolute simulated time ``at``."""
        if at < self._clock.now():
            raise ConfigurationError(
                f"cannot schedule into the past: {at!r} < {self._clock.now()!r}")
        heapq.heappush(
            self._queue, _Scheduled(at, next(self._sequence), action))

    def schedule_in(self, delay: float, action: Action) -> None:
        """Schedule a one-shot action ``delay`` seconds from now."""
        if delay < 0:
            raise ConfigurationError(f"delay must be >= 0: {delay!r}")
        self.schedule(self._clock.now() + delay, action)

    def add_process(self, process: "Process") -> None:
        """Attach a recurring process; it begins firing immediately."""
        process.start(self)

    def run_until(self, until: float) -> int:
        """Execute every event with ``time <= until``; returns the count.

        The clock ends exactly at ``until`` even if the queue empties
        earlier, so callers can interleave audits at precise instants.
        """
        if until < self._clock.now():
            raise ConfigurationError(
                f"cannot run backwards: {until!r} < {self._clock.now()!r}")
        executed = 0
        while self._queue and self._queue[0].time <= until:
            event = heapq.heappop(self._queue)
            self._clock.advance_to(event.time)
            event.action(self)
            executed += 1
        self._clock.advance_to(until)
        self._executed += executed
        return executed

    def run_for(self, duration: float) -> int:
        """Convenience: ``run_until(now + duration)``."""
        return self.run_until(self._clock.now() + duration)

    def pending_events(self) -> int:
        """Events still queued."""
        return len(self._queue)


class Process:
    """A recurring event source.

    Subclasses implement :meth:`fire` (the effect) and
    :meth:`interarrival` (seconds until the next firing).  ``start``
    schedules the first firing one interarrival from now.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._rng: Optional[random.Random] = None
        self._simulation: Optional[LiveSimulation] = None

    def start(self, simulation: LiveSimulation) -> None:
        """Bind to a simulation and schedule the first firing."""
        self._rng = simulation.rng("process", self.name)
        self._simulation = simulation
        self._schedule_next(simulation)

    def _schedule_next(self, simulation: LiveSimulation) -> None:
        delay = self.interarrival(self._rng)
        simulation.schedule_in(delay, self._fire_and_reschedule)

    def _fire_and_reschedule(self, simulation: LiveSimulation) -> None:
        self.fire(simulation, self._rng)
        self._schedule_next(simulation)

    # -- subclass hooks -----------------------------------------------------

    def interarrival(self, rng: random.Random) -> float:
        """Seconds until the next firing."""
        raise NotImplementedError

    def fire(self, simulation: LiveSimulation, rng: random.Random) -> None:
        """Execute one firing's effect on the world."""
        raise NotImplementedError


class OrganicGrowthProcess(Process):
    """Poisson arrivals of new organic followers for one target.

    Each arrival mints an account from ``personas`` (a persona-name
    weight map; default: the natural mix of a public figure's fresh
    audience — mostly active humans, some newbies) and follows the
    target at the arrival instant.
    """

    DEFAULT_MIX: Mapping[str, float] = {
        "genuine_active": 0.7,
        "genuine_newbie": 0.2,
        "genuine_abandoned": 0.05,
        "fake_classic": 0.05,
    }

    def __init__(self, target_id: int, per_day: float,
                 personas: Optional[Mapping[str, float]] = None) -> None:
        super().__init__(f"organic-growth-{target_id}")
        if per_day <= 0:
            raise ConfigurationError(f"per_day must be > 0: {per_day!r}")
        self._target_id = target_id
        self._per_day = per_day
        mix = dict(personas) if personas is not None else dict(self.DEFAULT_MIX)
        unknown = set(mix) - set(PERSONAS)
        if unknown:
            raise ConfigurationError(f"unknown personas: {sorted(unknown)!r}")
        self._personas = mix

    def interarrival(self, rng: random.Random) -> float:
        """Exponential gaps at the configured arrival rate."""
        return rng.expovariate(self._per_day / DAY)

    def fire(self, simulation: LiveSimulation, rng: random.Random) -> None:
        """Mint one follower account and create the follow edge."""
        now = simulation.now()
        names = sorted(self._personas)
        persona = PERSONAS[str(weighted_choice(
            rng, names, [self._personas[name] for name in names]))]
        user_id = simulation.mint_user_id(now)
        # Stylistic handles collide occasionally; resample until unique.
        while True:
            account = persona.sample(
                rng, user_id, simulation.mint_screen_name(), now)
            if not simulation.graph.has_screen_name(account.screen_name):
                break
        if account.created_at > now:
            account = replace(account, created_at=now)
        simulation.graph.add_account(account)
        simulation.graph.follow(user_id, self._target_id, now)


class ChurnProcess(Process):
    """Daily unfollow pressure on a target's audience.

    Once per day, a Poisson-distributed number of current followers
    (mean ``daily_fraction`` of the audience) unfollow.  Churn is what
    breaks the "old list is a suffix of the new list" property the
    paper's Section IV-B experiment relies on — the experiment module's
    checker flags exactly that.
    """

    def __init__(self, target_id: int, daily_fraction: float) -> None:
        super().__init__(f"churn-{target_id}")
        if not 0.0 < daily_fraction < 1.0:
            raise ConfigurationError(
                f"daily_fraction must be in (0, 1): {daily_fraction!r}")
        self._target_id = target_id
        self._daily_fraction = daily_fraction

    def interarrival(self, rng: random.Random) -> float:
        """Fires once per day."""
        return DAY

    def fire(self, simulation: LiveSimulation, rng: random.Random) -> None:
        """Unfollow a Poisson-sized batch of current followers."""
        graph = simulation.graph
        now = simulation.now()
        followers = list(graph.follower_ids(
            self._target_id, 0, graph.follower_count(self._target_id, now),
            now))
        if not followers:
            return
        quitters = poisson(rng, self._daily_fraction * len(followers))
        for user_id in rng.sample(followers,
                                  min(quitters, len(followers))):
            graph.unfollow(user_id, self._target_id)


class TweetingProcess(Process):
    """Keeps one account's tweet counters moving.

    Fires at the account's behavioural tweet rate and bumps
    ``statuses_count``/``last_tweet_at`` in the registered snapshot, so
    activity-based rules observe a living account.
    """

    def __init__(self, account_id: int, per_day: Optional[float] = None) -> None:
        super().__init__(f"tweeting-{account_id}")
        if per_day is not None and per_day <= 0:
            raise ConfigurationError(f"per_day must be > 0: {per_day!r}")
        self._account_id = account_id
        self._per_day = per_day

    def _rate(self) -> float:
        if self._per_day is not None:
            return self._per_day
        account = self._simulation.graph.account_by_id(
            self._account_id, self._simulation.now())
        return max(account.behavior.tweets_per_day, 0.01)

    def interarrival(self, rng: random.Random) -> float:
        """Exponential gaps at the account's tweeting rate."""
        return rng.expovariate(self._rate() / DAY)

    def fire(self, simulation: LiveSimulation, rng: random.Random) -> None:
        """Post one status: bump the counters in the snapshot."""
        graph = simulation.graph
        now = simulation.now()
        account = graph.account_by_id(self._account_id, now)
        graph.update_account(replace(
            account,
            statuses_count=account.statuses_count + 1,
            last_tweet_at=now,
        ))


def follow_block(simulation: LiveSimulation, target_id: int,
                 accounts: List[Account]) -> None:
    """Register and follow a prepared block of accounts *now*.

    Used by the marketplace to deliver a tranche of purchased fakes in
    one instant (they appear consecutively at the head of the
    newest-first listing, exactly like a real delivery).
    """
    now = simulation.now()
    for account in accounts:
        simulation.graph.add_account(account)
        simulation.graph.follow(account.user_id, target_id, now)
