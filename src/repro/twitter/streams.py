"""The single documented stream-split for synthetic-world randomness.

Every stochastic draw in a synthetic world is made from a
``random.Random`` derived from the world's master seed plus a *stream
path* — a short label tuple hashed by :func:`repro.core.rng.derive_seed`.
Historically each call site re-derived its stream inline with ad-hoc
``make_rng(seed, ...)`` calls, which made it easy for two code paths
that must consume *identical* random streams (the object-per-account
substrate and the columnar substrate) to silently drift apart.

This module is now the only place those paths are spelled out.  Both
substrates call the same functions below, so they provably draw from the
same streams; ``tests/twitter/test_streams.py`` pins the derived seeds
and the first draws of each stream so any accidental re-keying fails
loudly.

Stream registry
---------------
========================  ============================================
stream                    path under the master seed
========================  ============================================
follower persona          ``("persona", ordinal, position)``
follower account          ``("account", ordinal, position)``
composition sampling      ``("composition", sample_seed)``
ambient pool account      ``("ambient", index)``
friends/ids shuffle       ``("friends", user_id)``
timeline synthesis        ``("timeline", user_id)``
explicit-graph builder    ``("graph", screen_name)``
========================  ============================================

Follower streams are keyed by ``(target ordinal, arrival position)``;
they deliberately do *not* depend on the observation instant, chunk
size, or any other substrate detail, which is what makes lazy chunked
generation possible: materialising position ``p`` never requires
materialising positions ``0..p-1``.
"""

from __future__ import annotations

import random

from ..core.rng import make_rng


def follower_persona_rng(seed: int, ordinal: int, position: int) -> random.Random:
    """Stream deciding which persona the follower at ``position`` gets."""
    return make_rng(seed, "persona", ordinal, position)


def follower_account_rng(seed: int, ordinal: int, position: int) -> random.Random:
    """Stream the follower's persona sampler draws its snapshot from."""
    return make_rng(seed, "account", ordinal, position)


def composition_rng(seed: int, sample_seed: int) -> random.Random:
    """Stream for uniform position sampling in ground-truth composition."""
    return make_rng(seed, "composition", sample_seed)


def ambient_rng(seed: int, index: int) -> random.Random:
    """Stream generating the ``index``-th shared ambient-pool account."""
    return make_rng(seed, "ambient", index)


def friends_rng(seed: int, user_id: int) -> random.Random:
    """Stream shuffling the ambient pool into a user's friends list."""
    return make_rng(seed, "friends", user_id)


def timeline_rng(seed: int, user_id: int) -> random.Random:
    """Stream synthesising a user's recent timeline."""
    return make_rng(seed, "timeline", user_id)


def graph_rng(seed: int, screen_name: str) -> random.Random:
    """Stream used by :func:`repro.twitter.generator.populate_graph`."""
    return make_rng(seed, "graph", screen_name)
