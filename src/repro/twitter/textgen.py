"""Deterministic tweet-text generation.

The generator produces status text whose *detectable properties* (spam
phrases, links, retweet form, mentions, hashtags, duplicated bodies)
follow the rates declared in a :class:`~repro.twitter.account.BehaviorProfile`.
Analytics engines then re-detect those properties from the text, never
from the profile, so the information flow matches a real crawler's.
"""

from __future__ import annotations

import random
from typing import List, Optional

from .account import BehaviorProfile
from .tweet import SPAM_PHRASES

_ORDINARY_WORDS = (
    "today", "morning", "coffee", "match", "music", "friends", "city",
    "reading", "news", "game", "work", "train", "weekend", "dinner",
    "movie", "travel", "photo", "sun", "rain", "meeting", "concert",
    "book", "team", "goal", "vote", "show", "happy", "tired", "great",
    "finally", "again", "tomorrow", "never", "always", "really",
)

_HASHTAG_WORDS = (
    "news", "follow", "music", "sport", "tv", "italy", "politics",
    "love", "fun", "live", "win", "photo",
)

_SPAM_TAILS = (
    "amazing results guaranteed",
    "you will not believe this",
    "limited offer act now",
    "thousands already joined",
    "see proof inside",
)

_SOURCES_HUMAN = ("web", "Twitter for iPhone", "Twitter for Android")
_SOURCES_AUTOMATION = ("EasyBotDeck", "AutoTweeterPro", "MassFollowTool")


class TweetTextGenerator:
    """Generate tweet texts and sources according to a behaviour profile.

    A generator is seeded per account, so regenerating the same
    account's timeline always yields identical text — a requirement of
    the lazily materialised follower populations.
    """

    def __init__(self, rng: random.Random, profile: BehaviorProfile) -> None:
        self._rng = rng
        self._profile = profile
        # Template pool for accounts that repeat themselves.  Bodies are
        # drawn once so that repeats are *exact* duplicates.
        self._templates: Optional[List[str]] = None
        if profile.duplicate_pool > 0:
            self._templates = [
                self._fresh_body(unique_tag=i) for i in range(profile.duplicate_pool)
            ]

    def _fresh_body(self, unique_tag: Optional[int] = None) -> str:
        """Compose a new tweet body honouring the profile's content rates."""
        rng, profile = self._rng, self._profile
        words = rng.sample(_ORDINARY_WORDS, k=rng.randint(3, 7))
        parts = [" ".join(words)]
        if rng.random() < profile.spam_ratio:
            phrase = rng.choice(SPAM_PHRASES)
            tail = rng.choice(_SPAM_TAILS)
            parts = [f"{phrase} {tail}"]
        if rng.random() < profile.hashtag_ratio:
            parts.append("#" + rng.choice(_HASHTAG_WORDS))
        if rng.random() < profile.mention_ratio:
            parts.append("@user" + str(rng.randint(1, 99999)))
        if rng.random() < profile.link_ratio:
            parts.append("http://t.co/" + format(rng.getrandbits(40), "010x"))
        if unique_tag is not None:
            # Distinguish pool templates from each other without
            # affecting any detector (plain trailing token).
            parts.append(f"x{unique_tag}")
        return " ".join(parts)

    def next_text(self) -> str:
        """Return the text of the account's next status."""
        rng, profile = self._rng, self._profile
        if self._templates is not None:
            body = rng.choice(self._templates)
        else:
            body = self._fresh_body()
        if rng.random() < profile.retweet_ratio:
            return f"RT @user{rng.randint(1, 99999)}: {body}"
        return body

    def next_source(self) -> str:
        """Return the posting client of the account's next status."""
        if self._rng.random() < self._profile.api_source_ratio:
            return self._rng.choice(_SOURCES_AUTOMATION)
        return self._rng.choice(_SOURCES_HUMAN)
