"""Tweet model for the simulated Twitter.

Tweets carry the subset of the real status object the paper's engines
inspect: text, creation time, retweet flag, URL/hashtag/mention
presence, and posting source.  Text-level signals (spam phrases,
duplicated bodies) are detected from the text itself, exactly as a real
crawler would.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import FrozenSet

from ..core.errors import ConfigurationError

#: Spam phrases listed by Socialbakers' published methodology
#: ("more than 30% of the account's tweets use spam phrases (like diet,
#: make money, work from home)", paper Section II-B), extended with a few
#: staples of 2012-2014 Twitter spam so generated spam is not degenerate.
SPAM_PHRASES = (
    "diet",
    "make money",
    "work from home",
    "free followers",
    "lose weight fast",
    "click here",
    "earn cash",
    "miracle cure",
)

_URL_RE = re.compile(r"https?://\S+")
_MENTION_RE = re.compile(r"(?<!\w)@(\w{1,15})")
_HASHTAG_RE = re.compile(r"(?<!\w)#(\w+)")
_RETWEET_RE = re.compile(r"^RT @\w{1,15}:")


@dataclass(frozen=True)
class Tweet:
    """A single status.

    ``source`` mirrors the v1.1 ``source`` field: the client application
    the status was posted from (``"web"``, ``"Twitter for iPhone"``, or a
    third-party automation tool).
    """

    tweet_id: int
    user_id: int
    created_at: float
    text: str
    source: str = "web"

    def __post_init__(self) -> None:
        if self.tweet_id < 0:
            raise ConfigurationError(f"tweet_id must be non-negative: {self.tweet_id!r}")
        if not self.text:
            raise ConfigurationError("tweet text must be non-empty")

    def is_retweet(self) -> bool:
        """Whether the status is a retweet (``RT @user: ...`` form)."""
        return bool(_RETWEET_RE.match(self.text))

    def has_link(self) -> bool:
        """Whether the status body contains a URL."""
        return bool(_URL_RE.search(self.text))

    def mentions(self) -> FrozenSet[str]:
        """Screen names mentioned in the status (including the RT source)."""
        return frozenset(_MENTION_RE.findall(self.text))

    def hashtags(self) -> FrozenSet[str]:
        """Hashtags used in the status."""
        return frozenset(_HASHTAG_RE.findall(self.text))

    def contains_spam_phrase(self) -> bool:
        """Whether the status uses a known spam phrase."""
        lowered = self.text.lower()
        return any(phrase in lowered for phrase in SPAM_PHRASES)

    def body(self) -> str:
        """The comparable body of the tweet, used for duplicate detection.

        Socialbakers' rule fires when "the same tweets are repeated more
        than three times, even when posted to different accounts", so the
        body strips the ``RT @user:`` prefix before comparison.
        """
        return _RETWEET_RE.sub("", self.text).strip()
