"""Simulated Twitter substrate.

Accounts, tweets, timelines, persona archetypes, follower-arrival
schedules, and two interchangeable world backends: the lazy
:class:`SyntheticWorld` (scales to tens of millions of followers) and
the explicit :class:`SocialGraph` (full-fidelity adjacency for small
studies).
"""

from .account import Account, BehaviorProfile, Label, LABELS
from .columnar import (
    ColumnarPopulation,
    ColumnarWorld,
    build_columnar_world,
    columnar_twin,
)
from .generator import (
    add_simple_target,
    build_world,
    make_target_spec,
    populate_graph,
)
from .graph import FollowEdge, SocialGraph
from .live import (
    ChurnProcess,
    LiveSimulation,
    OrganicGrowthProcess,
    Process,
    TweetingProcess,
    follow_block,
)
from .personas import (
    DEFAULT_LABEL_MIXES,
    INACTIVITY_HORIZON,
    PERSONAS,
    Persona,
    persona_mix_from_labels,
)
from .population import (
    AMBIENT_POOL_SIZE,
    FollowerPopulation,
    FollowerSegmentSpec,
    PostRefBurst,
    SyntheticWorld,
    TargetSpec,
    World,
    ambient_id,
    decode_follower,
    fake_purchase_burst,
    follower_id,
    namespace_of,
    target_id,
    tilted_segments,
    uniform_segments,
)
from .textgen import TweetTextGenerator
from .timeline import TIMELINE_CAP, TimelineGenerator
from .tweet import SPAM_PHRASES, Tweet
from .workload import ArrivalSchedule, SegmentWindow, even_schedule

__all__ = [
    "AMBIENT_POOL_SIZE",
    "Account",
    "ArrivalSchedule",
    "BehaviorProfile",
    "ChurnProcess",
    "ColumnarPopulation",
    "ColumnarWorld",
    "DEFAULT_LABEL_MIXES",
    "FollowEdge",
    "FollowerPopulation",
    "FollowerSegmentSpec",
    "INACTIVITY_HORIZON",
    "LABELS",
    "Label",
    "LiveSimulation",
    "OrganicGrowthProcess",
    "PERSONAS",
    "Persona",
    "PostRefBurst",
    "Process",
    "SPAM_PHRASES",
    "SegmentWindow",
    "SocialGraph",
    "SyntheticWorld",
    "TIMELINE_CAP",
    "TargetSpec",
    "TimelineGenerator",
    "Tweet",
    "TweetingProcess",
    "TweetTextGenerator",
    "World",
    "add_simple_target",
    "ambient_id",
    "build_columnar_world",
    "build_world",
    "columnar_twin",
    "decode_follower",
    "even_schedule",
    "fake_purchase_burst",
    "follow_block",
    "follower_id",
    "make_target_spec",
    "namespace_of",
    "persona_mix_from_labels",
    "populate_graph",
    "target_id",
    "tilted_segments",
    "uniform_segments",
]
