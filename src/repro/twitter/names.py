"""Stylistic screen-name generation.

Screen names are a real detection signal: mass-created fakes carry
machine-minted handles (random consonant runs, long digit tails,
promo keywords), while humans pick name-like handles with at most a
birth-year or a couple of digits.  The rule sets of the era looked at
exactly this, and the feature catalogue exposes it
(``name_digit_fraction``, ``name_length``).

Generators are pure functions of the supplied RNG, so lazily
regenerated accounts always get the same handle.  The combined space is
large (tens of millions of human handles), making collisions across a
simulation rare; call sites that *require* uniqueness (the materialised
graph) retry with the same RNG stream on collision.
"""

from __future__ import annotations

import random
import string

_FIRST_NAMES = (
    "maria", "anna", "luca", "marco", "paolo", "giulia", "sara", "elena",
    "john", "mike", "emma", "lucy", "david", "laura", "carla", "diego",
    "jose", "ana", "pierre", "claire", "hans", "ingrid", "ali", "yuki",
    "chen", "nina", "ivan", "olga", "tom", "kate",
)

_LAST_NAMES = (
    "rossi", "russo", "ferrari", "bianchi", "romano", "ricci", "marino",
    "greco", "smith", "jones", "brown", "taylor", "garcia", "lopez",
    "martin", "bernard", "dubois", "muller", "schmidt", "tanaka", "kim",
    "wang", "novak", "silva", "santos", "costa", "petrov", "larsen",
    "nielsen", "kowalski",
)

_PROMO_WORDS = (
    "deals", "followers", "cash", "promo", "winbig", "gratis", "offers",
    "social", "likes", "viral", "boost",
)

_SEPARATORS = ("", "_", ".")


def human_screen_name(rng: random.Random) -> str:
    """A handle a person would pick: name-like, few or no digits."""
    first = rng.choice(_FIRST_NAMES)
    last = rng.choice(_LAST_NAMES)
    separator = rng.choice(_SEPARATORS)
    roll = rng.random()
    if roll < 0.35:
        suffix = ""
    elif roll < 0.70:
        suffix = str(rng.randint(70, 99))       # a birth year
    else:
        suffix = str(rng.randint(1, 999))
    handle = f"{first}{separator}{last}{suffix}"
    return handle[:15]


def bot_screen_name(rng: random.Random) -> str:
    """A machine-minted handle: digit tails, promo words, random runs."""
    style = rng.random()
    if style < 0.4:
        # Promo word plus a long numeric tail.
        word = rng.choice(_PROMO_WORDS)
        tail = "".join(rng.choice(string.digits) for __ in range(rng.randint(4, 7)))
        handle = f"{word}{tail}"
    elif style < 0.7:
        # Name fragment + heavy digits (registration-farm pattern).
        first = rng.choice(_FIRST_NAMES)[:4]
        tail = "".join(rng.choice(string.digits) for __ in range(rng.randint(5, 8)))
        handle = f"{first}{tail}"
    else:
        # Random alphanumeric run.
        handle = "".join(
            rng.choice(string.ascii_lowercase + string.digits)
            for __ in range(rng.randint(8, 14)))
    return handle[:15]


def display_name(rng: random.Random) -> str:
    """A human display name ("Maria Ricci")."""
    return (f"{rng.choice(_FIRST_NAMES).title()} "
            f"{rng.choice(_LAST_NAMES).title()}")


def digit_fraction(screen_name: str) -> float:
    """Fraction of a handle's characters that are digits."""
    if not screen_name:
        return 0.0
    return sum(1 for c in screen_name if c.isdigit()) / len(screen_name)
