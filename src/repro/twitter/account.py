"""Account model for the simulated Twitter.

An :class:`Account` is a *snapshot* of a user profile at some simulated
instant, carrying exactly the observable fields the real v1.1
``users/lookup`` endpoint exposed (counts, profile metadata, embedded
last status date) plus two simulation-only extras that never cross the
API boundary: the generating :class:`BehaviorProfile` and the ground
truth :class:`Label`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

from ..core.errors import ConfigurationError


class Label(enum.Enum):
    """Ground-truth class of an account, following the paper's taxonomy.

    The paper (and its reference classifier, Section III) partitions a
    follower base into three disjoint classes:

    * ``GENUINE`` — a real, engaged user;
    * ``INACTIVE`` — a real user who never tweeted or whose last tweet is
      older than 90 days;
    * ``FAKE`` — an account created to inflate follower counts.
    """

    GENUINE = "genuine"
    INACTIVE = "inactive"
    FAKE = "fake"


#: Canonical ordering used by reports (matches Table III column order).
LABELS = (Label.INACTIVE, Label.FAKE, Label.GENUINE)


@dataclass(frozen=True)
class BehaviorProfile:
    """Long-run tweeting behaviour of an account.

    These rates drive the deterministic timeline generator and therefore
    every timeline-derived feature (retweet fraction, link fraction,
    spam-phrase fraction, duplicate tweets) that the Socialbakers
    criteria and the literature feature sets consume.

    Attributes
    ----------
    tweets_per_day:
        Mean tweeting rate while the account is active.
    retweet_ratio:
        Fraction of tweets that are retweets.
    link_ratio:
        Fraction of tweets containing a URL.
    spam_ratio:
        Fraction of tweets containing a known spam phrase
        ("diet", "make money", "work from home", ...).
    mention_ratio:
        Fraction of tweets mentioning another user.
    hashtag_ratio:
        Fraction of tweets carrying at least one hashtag.
    duplicate_pool:
        Size of the template pool the account draws its tweet bodies
        from.  ``0`` means every tweet is unique; a small positive pool
        makes the account repeat identical tweets, which trips
        Socialbakers' "same tweets repeated more than three times" rule.
    api_source_ratio:
        Fraction of tweets posted through an automation API rather than
        an official client — a classic bot signal from the literature.
    """

    tweets_per_day: float = 1.0
    retweet_ratio: float = 0.2
    link_ratio: float = 0.25
    spam_ratio: float = 0.0
    mention_ratio: float = 0.3
    hashtag_ratio: float = 0.2
    duplicate_pool: int = 0
    api_source_ratio: float = 0.05

    def __post_init__(self) -> None:
        for name in ("retweet_ratio", "link_ratio", "spam_ratio",
                     "mention_ratio", "hashtag_ratio", "api_source_ratio"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]: {value!r}")
        if self.tweets_per_day < 0:
            raise ConfigurationError(
                f"tweets_per_day must be non-negative: {self.tweets_per_day!r}"
            )
        if self.duplicate_pool < 0:
            raise ConfigurationError(
                f"duplicate_pool must be non-negative: {self.duplicate_pool!r}"
            )


@dataclass(frozen=True)
class Account:
    """A profile snapshot, as observable through ``users/lookup``.

    ``behavior`` and ``true_label`` are simulation internals: the API
    layer strips them before handing data to any analytics engine (see
    ``repro.api.endpoints.UserObject``).
    """

    user_id: int
    screen_name: str
    created_at: float
    name: str = ""
    description: str = ""
    location: str = ""
    url: str = ""
    default_profile_image: bool = False
    verified: bool = False
    followers_count: int = 0
    friends_count: int = 0
    statuses_count: int = 0
    #: Creation time of the most recent tweet; ``None`` if never tweeted.
    last_tweet_at: Optional[float] = None
    behavior: BehaviorProfile = field(default=BehaviorProfile())
    true_label: Optional[Label] = None

    def __post_init__(self) -> None:
        if self.user_id < 0:
            raise ConfigurationError(f"user_id must be non-negative: {self.user_id!r}")
        if not self.screen_name:
            raise ConfigurationError("screen_name must be non-empty")
        for name in ("followers_count", "friends_count", "statuses_count"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.statuses_count == 0 and self.last_tweet_at is not None:
            raise ConfigurationError(
                "an account with zero tweets cannot have a last_tweet_at"
            )
        if self.statuses_count > 0 and self.last_tweet_at is None:
            raise ConfigurationError(
                "an account with tweets must have a last_tweet_at"
            )
        if self.last_tweet_at is not None and self.last_tweet_at < self.created_at:
            raise ConfigurationError("last tweet cannot predate account creation")

    # -- derived observables ------------------------------------------------

    def age_at(self, now: float) -> float:
        """Account age in seconds at simulated instant ``now``."""
        return max(0.0, now - self.created_at)

    def friends_followers_ratio(self) -> float:
        """following/followers ratio, the analytics' favourite signal.

        Returns ``friends_count`` when the account has no followers (the
        convention used by the rule sets: an account following 200 users
        with zero followers is maximally suspicious).
        """
        if self.followers_count == 0:
            return float(self.friends_count)
        return self.friends_count / self.followers_count

    def has_bio(self) -> bool:
        """Whether the profile description is filled in."""
        return bool(self.description.strip())

    def has_location(self) -> bool:
        """Whether the profile location is filled in."""
        return bool(self.location.strip())

    def has_url(self) -> bool:
        """Whether the profile links an external URL."""
        return bool(self.url.strip())

    def has_ever_tweeted(self) -> bool:
        """Whether the account posted at least one status."""
        return self.statuses_count > 0

    def last_tweet_age(self, now: float) -> Optional[float]:
        """Seconds since the last tweet, or ``None`` if never tweeted."""
        if self.last_tweet_at is None:
            return None
        return max(0.0, now - self.last_tweet_at)

    def with_counts(self, *, followers_count: Optional[int] = None,
                    friends_count: Optional[int] = None,
                    statuses_count: Optional[int] = None) -> "Account":
        """Return a copy with some counts replaced (snapshots are frozen)."""
        updates = {}
        if followers_count is not None:
            updates["followers_count"] = followers_count
        if friends_count is not None:
            updates["friends_count"] = friends_count
        if statuses_count is not None:
            updates["statuses_count"] = statuses_count
        return replace(self, **updates)
