"""Follower-arrival schedules.

The paper's Section IV-B experiment hinges on *when* each follower
started following the target: Twitter returns follower lists in reverse
chronological order of following, so head-of-list samples see only the
newest cohort.  An :class:`ArrivalSchedule` maps every follower position
(0 = earliest follower) to a deterministic arrival instant, supports the
inverse query ("how many followers had arrived by time t?"), and keeps
growing past the reference instant so daily-snapshot experiments observe
fresh arrivals.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError
from ..core.timeutil import DAY


@dataclass(frozen=True)
class SegmentWindow:
    """A contiguous block of arrivals inside one time window.

    Attributes
    ----------
    count:
        Number of followers arriving in this segment.
    start, end:
        Segment time window (epoch seconds); arrivals fall in
        ``[start, end)``.
    gamma:
        Intra-segment pacing exponent.  ``1.0`` spreads arrivals evenly;
        ``< 1`` front-loads them; ``> 1`` back-loads them (a crescendo).
        A *burst* (e.g. a purchased block of fakes delivered overnight)
        is simply a segment with a very short window.
    """

    count: int
    start: float
    end: float
    gamma: float = 1.0

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ConfigurationError(f"segment count must be >= 0: {self.count!r}")
        if self.end < self.start:
            raise ConfigurationError("segment window must not be inverted")
        if self.gamma <= 0:
            raise ConfigurationError(f"gamma must be positive: {self.gamma!r}")

    def arrival_time(self, local_position: int) -> float:
        """Arrival instant of the ``local_position``-th follower (0-based)."""
        if not 0 <= local_position < self.count:
            raise ConfigurationError(
                f"position {local_position} outside segment of {self.count}")
        if self.count == 1:
            fraction = 0.5
        else:
            fraction = (local_position + 0.5) / self.count
        return self.start + (self.end - self.start) * (fraction ** self.gamma)


class ArrivalSchedule:
    """Deterministic arrival times for an entire follower base.

    The schedule is a sequence of :class:`SegmentWindow` blocks covering
    positions ``0 .. N-1`` (the historical base as of the reference
    instant), followed by an open-ended steady *trickle* of
    ``post_ref_daily`` new followers per day after the last segment ends
    — this is what the daily-snapshot ordering experiment observes.

    ``post_ref_bursts`` adds discrete arrival blocks *after* the
    reference instant: each ``(at, count)`` delivers ``count`` followers
    at exactly the epoch ``at``, interleaved with the trickle in arrival
    order — the "bought a block of fakes mid-monitoring" scenario the
    incremental-audit experiments inject.  A schedule with no bursts is
    bit-identical to one built before bursts existed.
    """

    def __init__(self, segments: Sequence[SegmentWindow],
                 post_ref_daily: float = 0.0,
                 post_ref_bursts: Sequence[Tuple[float, int]] = ()) -> None:
        if not segments:
            raise ConfigurationError("an arrival schedule needs >= 1 segment")
        if post_ref_daily < 0:
            raise ConfigurationError(
                f"post_ref_daily must be non-negative: {post_ref_daily!r}")
        previous_end = None
        for segment in segments:
            if previous_end is not None and segment.start < previous_end:
                raise ConfigurationError(
                    "segments must be chronological and non-overlapping")
            previous_end = segment.end
        self._segments: Tuple[SegmentWindow, ...] = tuple(segments)
        self._offsets: List[int] = []
        offset = 0
        for segment in self._segments:
            self._offsets.append(offset)
            offset += segment.count
        self._base_count = offset
        self._ref_time = self._segments[-1].end
        self._post_ref_daily = float(post_ref_daily)
        bursts = sorted((float(at), int(count)) for at, count in post_ref_bursts)
        for at, count in bursts:
            if at < self._ref_time:
                raise ConfigurationError(
                    f"burst at {at!r} predates the reference instant "
                    f"{self._ref_time!r}")
            if count < 1:
                raise ConfigurationError(
                    f"burst count must be >= 1: {count!r}")
        self._bursts: Tuple[Tuple[float, int], ...] = tuple(bursts)

    @property
    def base_count(self) -> int:
        """Followers arrived by the reference instant."""
        return self._base_count

    @property
    def ref_time(self) -> float:
        """End of the last historical segment (the reference instant)."""
        return self._ref_time

    @property
    def segments(self) -> Tuple[SegmentWindow, ...]:
        """The historical segments, in chronological order."""
        return self._segments

    @property
    def bursts(self) -> Tuple[Tuple[float, int], ...]:
        """Post-reference ``(at, count)`` bursts, in chronological order."""
        return self._bursts

    def _trickle_count(self, now: float) -> int:
        """Trickle arrivals by ``now`` (the :meth:`size_at` convention)."""
        if now < self._ref_time or self._post_ref_daily <= 0:
            return 0
        return int((now - self._ref_time) / DAY * self._post_ref_daily)

    def _locate_post_ref(self, extra: int) -> Tuple[Optional[int], int]:
        """Map post-reference index ``extra`` to its arrival block.

        Returns ``(burst_index, local)`` for a burst member, or
        ``(None, k)`` for the ``k``-th trickle arrival.  Positions
        interleave in arrival order using the same trickle-count
        formula as :meth:`size_at`, so the two stay exact inverses.
        """
        prior = 0
        for index, (at, count) in enumerate(self._bursts):
            before = self._trickle_count(at) + prior
            if extra < before:
                break
            if extra < before + count:
                return index, extra - before
            prior += count
        return None, extra - prior

    def segment_of(self, position: int) -> Tuple[int, SegmentWindow]:
        """Return ``(segment_index, segment)`` containing ``position``.

        Post-reference trickle positions map to a pseudo segment index
        ``len(segments)`` and burst members of burst ``i`` to
        ``len(segments) + 1 + i``; the returned windows are synthesised
        on the fly (a burst's window is the zero-length ``[at, at]``).
        """
        if position < 0:
            raise ConfigurationError(f"position must be >= 0: {position!r}")
        if position >= self._base_count:
            extra = position - self._base_count
            if self._post_ref_daily <= 0 and not self._bursts:
                raise ConfigurationError(
                    f"position {position} beyond a non-growing schedule "
                    f"of {self._base_count}")
            burst_index, local = self._locate_post_ref(extra)
            if burst_index is not None:
                at, count = self._bursts[burst_index]
                return len(self._segments) + 1 + burst_index, SegmentWindow(
                    count=count, start=at, end=at)
            if self._post_ref_daily <= 0:
                raise ConfigurationError(
                    f"position {position} beyond a non-growing schedule "
                    f"of {self._base_count} and its bursts")
            day_span = DAY / self._post_ref_daily
            start = self._ref_time + local * day_span
            return len(self._segments), SegmentWindow(
                count=1, start=start, end=start + day_span)
        index = bisect.bisect_right(self._offsets, position) - 1
        return index, self._segments[index]

    def arrival_time(self, position: int) -> float:
        """Arrival instant of the follower at global ``position``."""
        index, segment = self.segment_of(position)
        if index >= len(self._segments):
            # Trickle windows hold one arrival; burst windows are
            # zero-length, so every member arrives at the burst instant.
            return segment.arrival_time(0)
        return segment.arrival_time(position - self._offsets[index])

    def size_at(self, now: float) -> int:
        """Number of followers whose arrival time is ``<= now``.

        Monotone in ``now``; exact inverse of :meth:`arrival_time` (it
        binary-searches the arrival sequence, which is non-decreasing).
        """
        if now >= self._ref_time:
            # The first trickle arrival happens one inter-arrival gap
            # after the reference instant, so flooring is exact.
            extra = self._trickle_count(now)
            extra += sum(count for at, count in self._bursts if at <= now)
            return self._base_count + extra
        lo, hi = 0, self._base_count
        while lo < hi:
            mid = (lo + hi) // 2
            if self.arrival_time(mid) <= now:
                lo = mid + 1
            else:
                hi = mid
        return lo


def even_schedule(count: int, start: float, end: float,
                  post_ref_daily: float = 0.0) -> ArrivalSchedule:
    """Convenience: a single evenly paced segment over ``[start, end)``."""
    return ArrivalSchedule(
        [SegmentWindow(count=count, start=start, end=end)],
        post_ref_daily=post_ref_daily,
    )
