"""Deterministic, lazily materialised user timelines.

The real ``statuses/user_timeline`` endpoint returns a user's most
recent tweets, newest first, capped at 3200 statuses (paper, Section
IV-B).  Follower populations in this reproduction are generated lazily,
so timelines are synthesised *on request* as a pure function of the
account snapshot and the master seed: fetching the same timeline twice
yields identical tweets.
"""

from __future__ import annotations

from typing import List

from ..core.ids import snowflake
from ..core.timeutil import DAY
from .account import Account
from .streams import timeline_rng
from .textgen import TweetTextGenerator
from .tweet import Tweet

#: The v1.1 API ceiling on retrievable timeline depth.
TIMELINE_CAP = 3200


class TimelineGenerator:
    """Synthesise an account's recent timeline from its snapshot.

    Tweet times walk backwards from ``account.last_tweet_at`` with
    exponential inter-tweet gaps whose mean matches the account's
    ``tweets_per_day`` rate, clamped at the account creation time.  Text
    and source follow the account's :class:`BehaviorProfile` via
    :class:`TweetTextGenerator`.
    """

    def __init__(self, seed: int) -> None:
        self._seed = seed

    def recent_tweets(self, account: Account, count: int) -> List[Tweet]:
        """Return up to ``count`` most recent tweets, newest first.

        The result is empty for accounts that never tweeted, and never
        exceeds ``min(count, statuses_count, TIMELINE_CAP)``.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative: {count!r}")
        if account.statuses_count == 0 or account.last_tweet_at is None:
            return []
        available = min(account.statuses_count, TIMELINE_CAP)
        n = min(count, available)
        if n == 0:
            return []

        rng = timeline_rng(self._seed, account.user_id)
        textgen = TweetTextGenerator(rng, account.behavior)
        mean_gap = DAY / max(account.behavior.tweets_per_day, 1e-3)

        tweets: List[Tweet] = []
        moment = account.last_tweet_at
        for index in range(n):
            if index > 0:
                moment = max(account.created_at, moment - rng.expovariate(1.0 / mean_gap))
            tweets.append(
                Tweet(
                    tweet_id=snowflake(
                        moment,
                        worker=account.user_id % 1024,
                        sequence=index % 4096,
                    ),
                    user_id=account.user_id,
                    created_at=moment,
                    text=textgen.next_text(),
                    source=textgen.next_source(),
                )
            )
        return tweets
