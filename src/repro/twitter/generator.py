"""High-level builders for synthetic Twitter worlds.

These helpers compose the lower-level pieces (personas, arrival
schedules, lazy populations, the materialised graph) into ready-to-audit
scenarios: "an account with N followers of which x% inactive, y% fake,
with a recency gradient and an optional purchased burst".
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from ..core.errors import ConfigurationError
from ..core.ids import IdGenerator
from ..core.timeutil import PAPER_EPOCH, YEAR
from .account import Account, Label
from .graph import SocialGraph
from .personas import PERSONAS, persona_mix_from_labels
from .population import (
    FollowerSegmentSpec,
    PostRefBurst,
    SyntheticWorld,
    TargetSpec,
    tilted_segments,
    uniform_segments,
)
from .streams import graph_rng


def build_world(seed: int = 42, ref_time: float = PAPER_EPOCH) -> SyntheticWorld:
    """Create an empty lazy world anchored at ``ref_time``."""
    return SyntheticWorld(seed=seed, ref_time=ref_time)


def make_target_spec(
        screen_name: str,
        followers: int,
        inactive: float,
        fake: float,
        genuine: float,
        *,
        tilt: float = 0.5,
        pieces: int = 4,
        fake_burst_fraction: float = 0.0,
        fake_burst_position: float = 0.95,
        created_years_before: float = 4.0,
        ref_time: float = PAPER_EPOCH,
        daily_new_followers: float = 0.0,
        post_ref_bursts: Sequence[PostRefBurst] = (),
        verified: bool = False,
        statuses_count: int = 2500,
) -> TargetSpec:
    """Build a :class:`TargetSpec` from a label composition.

    Parameters mirror the experimental knobs the paper's findings hinge
    on:

    * ``tilt`` introduces the recency gradient (older followers more
      often inactive) that biases head-of-list samples;
    * ``fake_burst_fraction`` carves that share of the fake mass out of
      the gradient and delivers it as a single *burst* — the "bought
      10K fake followers" scenario of Section II-D;
    * ``fake_burst_position`` places the burst in arrival order: ``1.0``
      means the fakes are the very latest followers (a just-bought
      block, filling the head of the newest-first listing), while the
      default ``0.95`` models a purchase a few months before
      observation, with organic followers accumulated on top of it
      since — the Romney-style pattern of 2012-2013.

    The overall (inactive, fake, genuine) composition is preserved
    exactly regardless of tilt, burst size and burst position.
    """
    if not 0.0 <= fake_burst_fraction <= 1.0:
        raise ConfigurationError(
            f"fake_burst_fraction must be in [0, 1]: {fake_burst_fraction!r}")
    if not 0.0 <= fake_burst_position <= 1.0:
        raise ConfigurationError(
            f"fake_burst_position must be in [0, 1]: {fake_burst_position!r}")
    total = inactive + fake + genuine
    if total <= 0:
        raise ConfigurationError("label fractions must sum to > 0")
    inactive, fake, genuine = inactive / total, fake / total, genuine / total

    burst = fake * fake_burst_fraction
    organic_mass = 1.0 - burst
    segments: List[FollowerSegmentSpec]
    if organic_mass <= 0:
        segments = []
    else:
        organic = tilted_segments(
            inactive / organic_mass,
            (fake - burst) / organic_mass,
            genuine / organic_mass,
            tilt=tilt,
            pieces=pieces,
        )
        segments = [
            FollowerSegmentSpec(
                fraction=segment.fraction * organic_mass,
                personas=segment.personas,
                duration_frac=segment.duration_frac,
                gamma=segment.gamma,
            )
            for segment in organic
        ]
    if burst > 0:
        # A purchased block is delivered within a sliver of time
        # (duration_frac ~ 0) at the requested point of the arrival
        # order; everything after it arrived organically since the buy.
        burst_segment = FollowerSegmentSpec(
            fraction=burst,
            personas=persona_mix_from_labels(0.0, 1.0, 0.0),
            duration_frac=0.001,
        )
        segments = _splice_burst(segments, burst_segment,
                                 fake_burst_position, organic_mass)
    return TargetSpec(
        screen_name=screen_name,
        followers=followers,
        segments=segments,
        created_at=max(ref_time - created_years_before * YEAR,
                       PAPER_EPOCH - 7 * YEAR),
        daily_new_followers=daily_new_followers,
        post_ref_bursts=post_ref_bursts,
        verified=verified,
        statuses_count=statuses_count,
        display_name=screen_name.replace("_", " ").title(),
    )


def _splice_burst(organic: List[FollowerSegmentSpec],
                  burst: FollowerSegmentSpec,
                  position: float,
                  organic_mass: float) -> List[FollowerSegmentSpec]:
    """Insert ``burst`` so that ``position`` of the *organic* mass
    precedes it, splitting the straddled organic cohort if needed."""
    if not organic:
        return [burst]
    target = position * organic_mass
    result: List[FollowerSegmentSpec] = []
    cumulative = 0.0
    inserted = False
    for segment in organic:
        if not inserted and cumulative + segment.fraction >= target - 1e-12:
            before = target - cumulative
            after = segment.fraction - before
            if before > 1e-9:
                result.append(FollowerSegmentSpec(
                    fraction=before, personas=segment.personas,
                    duration_frac=before, gamma=segment.gamma))
            result.append(burst)
            if after > 1e-9:
                result.append(FollowerSegmentSpec(
                    fraction=after, personas=segment.personas,
                    duration_frac=after, gamma=segment.gamma))
            inserted = True
        else:
            result.append(segment)
        cumulative += segment.fraction
    if not inserted:
        result.append(burst)
    return result


def add_simple_target(world: SyntheticWorld, screen_name: str, followers: int,
                      inactive: float, fake: float, genuine: float,
                      **kwargs) -> None:
    """Shorthand: build a spec via :func:`make_target_spec` and register it."""
    world.add_target(make_target_spec(
        screen_name, followers, inactive, fake, genuine,
        ref_time=world.ref_time, **kwargs))


def populate_graph(
        graph: SocialGraph,
        target: Account,
        follower_labels: Sequence[Label],
        *,
        seed: int = 7,
        ref_time: float = PAPER_EPOCH,
        follow_window_years: float = 3.0,
        label_mixes: Optional[Mapping[Label, Mapping[str, float]]] = None,
) -> List[int]:
    """Materialise a follower base around ``target`` in an explicit graph.

    ``follower_labels`` gives the ground-truth label of each follower in
    arrival order (index 0 follows first).  Returns the minted follower
    ids, in the same order.
    """
    if not graph.has_account(target.user_id):
        graph.add_account(target)
    ids = IdGenerator(worker=1)
    rng = graph_rng(seed, target.screen_name)
    window = follow_window_years * YEAR
    minted: List[int] = []
    for index, label in enumerate(follower_labels):
        mixes = label_mixes or None
        mix = persona_mix_from_labels(
            1.0 if label is Label.INACTIVE else 0.0,
            1.0 if label is Label.FAKE else 0.0,
            1.0 if label is Label.GENUINE else 0.0,
            label_mixes=mixes,
        )
        names = sorted(mix)
        weights = [mix[name] for name in names]
        pick = rng.choices(names, weights=weights, k=1)[0]
        persona = PERSONAS[pick]
        followed_at = ref_time - window + window * (index + 0.5) / len(follower_labels)
        created_at = followed_at - rng.uniform(0.1, 2.0) * YEAR
        user_id = ids.next_id(created_at)
        # Stylistic handles collide occasionally; resample until unique.
        while True:
            account = persona.sample(
                rng, user_id, f"{target.screen_name[:6]}_f{index}", ref_time)
            if not graph.has_screen_name(account.screen_name):
                break
        graph.add_account(account)
        graph.follow(user_id, target.user_id, followed_at)
        minted.append(user_id)
    return minted
