"""Persona library: parameterised account archetypes.

Each persona is a generative archetype observed in the fake-follower
literature the paper builds on ([8], [9], [13]-[15]): engaged humans,
abandoned accounts, dormant "egg" fakes, classic purchased followers and
active spam bots.  A persona carries the ground-truth :class:`Label` the
paper's taxonomy assigns to accounts of that kind, and a sampler that
draws a concrete :class:`Account` snapshot from the archetype's
distributions.

The samplers enforce the behavioural definitions exactly: any persona
labelled ``INACTIVE`` produces accounts that never tweeted or whose last
tweet is older than 90 days at observation time, and personas labelled
``GENUINE``/``FAKE`` produce accounts with recent activity — so ground
truth coincides with what a perfect observer applying the paper's
published definitions would conclude.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

from ..core.errors import ConfigurationError
from ..core.rng import bounded_int_lognormal
from ..core.timeutil import DAY, TWITTER_LAUNCH, YEAR
from .account import Account, BehaviorProfile, Label
from .names import bot_screen_name, display_name, human_screen_name

#: The paper's inactivity horizon: last tweet older than 90 days.
INACTIVITY_HORIZON = 90 * DAY

_BIO_SNIPPETS = (
    "Love music, football and good food.",
    "Proud parent. Opinions are my own.",
    "Journalist and coffee addict.",
    "Engineer by day, guitarist by night.",
    "Living one day at a time.",
    "Photographer. Traveller. Dreamer.",
)

_LOCATIONS = (
    "Rome, Italy", "Milan", "Pisa", "London", "Paris",
    "New York", "Madrid", "Berlin", "Turin",
)


def _created_at(rng: random.Random, now: float,
                min_age: float, max_age: float) -> float:
    """Draw a creation time between ``min_age`` and ``max_age`` before now,
    never earlier than Twitter's launch."""
    age = rng.uniform(min_age, max_age)
    return max(TWITTER_LAUNCH, now - age)


def _recent_last_tweet(rng: random.Random, now: float, created_at: float,
                       max_age: float) -> float:
    """Draw a last-tweet time within ``max_age`` of now (an *active* account)."""
    age = rng.uniform(0.0, max_age)
    return max(created_at, now - age)


def _stale_last_tweet(rng: random.Random, now: float, created_at: float,
                      max_age: float) -> Optional[float]:
    """Draw a last-tweet time strictly older than the inactivity horizon.

    Returns ``None`` (never tweeted) when the account is too young to
    have a tweet older than the horizon.
    """
    oldest = now - min(max_age, now - created_at)
    newest = now - INACTIVITY_HORIZON * 1.01
    if oldest >= newest:
        return None
    return rng.uniform(oldest, newest)


@dataclass(frozen=True)
class Persona:
    """A named account archetype with its ground-truth label."""

    name: str
    label: Label
    sampler: Callable[[random.Random, int, str, float], Account]

    def sample(self, rng: random.Random, user_id: int,
               screen_name: str, now: float) -> Account:
        """Draw a concrete account snapshot at observation time ``now``.

        ``screen_name`` is a fallback handle; samplers normally mint a
        stylistic one from ``rng`` (see :mod:`repro.twitter.names`), so
        handle *shape* is itself a class signal, as it is on the real
        platform.
        """
        account = self.sampler(rng, user_id, screen_name, now)
        return account


# ---------------------------------------------------------------------------
# Genuine personas
# ---------------------------------------------------------------------------

def _sample_genuine_active(rng: random.Random, user_id: int,
                           screen_name: str, now: float) -> Account:
    """An engaged human: balanced graph counts, steady original tweeting."""
    created = _created_at(rng, now, 0.5 * YEAR, 7 * YEAR)
    screen_name = human_screen_name(rng)
    behavior = BehaviorProfile(
        tweets_per_day=rng.uniform(0.3, 6.0),
        retweet_ratio=rng.uniform(0.1, 0.4),
        link_ratio=rng.uniform(0.1, 0.4),
        spam_ratio=0.0,
        mention_ratio=rng.uniform(0.2, 0.5),
        hashtag_ratio=rng.uniform(0.1, 0.35),
        duplicate_pool=0,
        # Plenty of real humans schedule posts through third-party
        # clients (Buffer, HootSuite — the paper's own introduction
        # lists them), so source alone must not separate the classes.
        api_source_ratio=rng.uniform(0.0, 0.45),
    )
    years = (now - created) / YEAR
    statuses = bounded_int_lognormal(
        rng, mean_log=5.0 + 0.3 * years, sigma_log=1.0, low=20, high=60000)
    return Account(
        user_id=user_id,
        screen_name=screen_name,
        created_at=created,
        name=display_name(rng),
        description=rng.choice(_BIO_SNIPPETS) if rng.random() < 0.85 else "",
        location=rng.choice(_LOCATIONS) if rng.random() < 0.7 else "",
        url="http://example.org/" + screen_name if rng.random() < 0.25 else "",
        default_profile_image=rng.random() < 0.04,
        followers_count=bounded_int_lognormal(rng, 4.6, 1.2, 10, 100000),
        friends_count=bounded_int_lognormal(rng, 5.2, 1.0, 20, 5000),
        statuses_count=statuses,
        last_tweet_at=_recent_last_tweet(rng, now, created, 20 * DAY),
        behavior=behavior,
        true_label=Label.GENUINE,
    )


def _sample_genuine_newbie(rng: random.Random, user_id: int,
                           screen_name: str, now: float) -> Account:
    """A recently joined human: thin profile, few tweets, few followers.

    Newbies are the accounts that crude rule sets most often mistake for
    fakes ("few or no followers and few or no tweets").
    """
    created = _created_at(rng, now, 5 * DAY, 120 * DAY)
    screen_name = human_screen_name(rng)
    behavior = BehaviorProfile(
        tweets_per_day=rng.uniform(0.1, 1.5),
        retweet_ratio=rng.uniform(0.2, 0.6),
        link_ratio=rng.uniform(0.05, 0.3),
        spam_ratio=0.0,
        mention_ratio=rng.uniform(0.1, 0.4),
        hashtag_ratio=rng.uniform(0.05, 0.3),
        duplicate_pool=0,
        api_source_ratio=rng.uniform(0.0, 0.15),
    )
    return Account(
        user_id=user_id,
        screen_name=screen_name,
        created_at=created,
        name=display_name(rng),
        description=rng.choice(_BIO_SNIPPETS) if rng.random() < 0.4 else "",
        location=rng.choice(_LOCATIONS) if rng.random() < 0.35 else "",
        url="",
        default_profile_image=rng.random() < 0.35,
        followers_count=rng.randint(0, 40),
        friends_count=rng.randint(10, 250),
        statuses_count=rng.randint(1, 60),
        last_tweet_at=_recent_last_tweet(rng, now, created, 15 * DAY),
        behavior=behavior,
        true_label=Label.GENUINE,
    )


# ---------------------------------------------------------------------------
# Inactive personas
# ---------------------------------------------------------------------------

def _sample_genuine_abandoned(rng: random.Random, user_id: int,
                              screen_name: str, now: float) -> Account:
    """A real user who tried Twitter and drifted away.

    Either never tweeted, or last tweeted well over 90 days ago.
    """
    created = _created_at(rng, now, 1.0 * YEAR, 7 * YEAR)
    screen_name = human_screen_name(rng)
    never_tweeted = rng.random() < 0.3
    last_tweet = None if never_tweeted else _stale_last_tweet(
        rng, now, created, 5 * YEAR)
    statuses = 0 if last_tweet is None else rng.randint(1, 300)
    behavior = BehaviorProfile(
        tweets_per_day=rng.uniform(0.05, 0.8),
        retweet_ratio=rng.uniform(0.1, 0.5),
        link_ratio=rng.uniform(0.05, 0.35),
        spam_ratio=0.0,
        mention_ratio=rng.uniform(0.1, 0.4),
        hashtag_ratio=rng.uniform(0.05, 0.25),
        duplicate_pool=0,
        api_source_ratio=rng.uniform(0.0, 0.05),
    )
    return Account(
        user_id=user_id,
        screen_name=screen_name,
        created_at=created,
        name=display_name(rng),
        description=rng.choice(_BIO_SNIPPETS) if rng.random() < 0.55 else "",
        location=rng.choice(_LOCATIONS) if rng.random() < 0.45 else "",
        url="",
        default_profile_image=rng.random() < 0.25,
        followers_count=rng.randint(0, 120),
        friends_count=rng.randint(5, 400),
        statuses_count=statuses,
        last_tweet_at=last_tweet,
        behavior=behavior,
        true_label=Label.INACTIVE,
    )


def _sample_fake_egg_dormant(rng: random.Random, user_id: int,
                             screen_name: str, now: float) -> Account:
    """A dormant mass-created fake: default egg avatar, empty profile,
    never tweeted (or one stale tweet), follows hundreds of accounts.

    Behaviourally inactive, so labelled ``INACTIVE`` per the paper's
    definitions — but its *profile* shape is the classic fake signature
    the rule-based tools key on.
    """
    created = _created_at(rng, now, 0.5 * YEAR, 3 * YEAR)
    screen_name = bot_screen_name(rng)
    never_tweeted = rng.random() < 0.8
    last_tweet = None if never_tweeted else _stale_last_tweet(
        rng, now, created, 2 * YEAR)
    statuses = 0 if last_tweet is None else rng.randint(1, 5)
    behavior = BehaviorProfile(
        tweets_per_day=0.01,
        retweet_ratio=0.1,
        link_ratio=rng.uniform(0.5, 1.0),
        spam_ratio=rng.uniform(0.3, 0.9),
        mention_ratio=0.05,
        hashtag_ratio=0.1,
        duplicate_pool=rng.randint(1, 3),
        api_source_ratio=0.9,
    )
    return Account(
        user_id=user_id,
        screen_name=screen_name,
        created_at=created,
        name="",
        description="",
        location="",
        url="",
        default_profile_image=rng.random() < 0.75,
        followers_count=rng.randint(0, 15),
        friends_count=rng.randint(150, 2500),
        statuses_count=statuses,
        last_tweet_at=last_tweet,
        behavior=behavior,
        true_label=Label.INACTIVE,
    )


# ---------------------------------------------------------------------------
# Fake personas
# ---------------------------------------------------------------------------

def _sample_fake_classic(rng: random.Random, user_id: int,
                         screen_name: str, now: float) -> Account:
    """A purchased follower kept minimally alive by its operator.

    A handful of recent low-effort tweets, no real audience, follows a
    lot of accounts (the founder of StatusPeople's "most meaningful"
    signal: "fake accounts tend to follow a lot of people but don't have
    many followers").
    """
    created = _created_at(rng, now, 60 * DAY, 2 * YEAR)
    screen_name = bot_screen_name(rng)
    behavior = BehaviorProfile(
        tweets_per_day=rng.uniform(0.02, 0.3),
        retweet_ratio=rng.uniform(0.3, 0.8),
        link_ratio=rng.uniform(0.3, 0.8),
        spam_ratio=rng.uniform(0.1, 0.5),
        mention_ratio=rng.uniform(0.0, 0.2),
        hashtag_ratio=rng.uniform(0.0, 0.3),
        duplicate_pool=rng.randint(1, 4),
        api_source_ratio=rng.uniform(0.6, 1.0),
    )
    return Account(
        user_id=user_id,
        screen_name=screen_name,
        created_at=created,
        name=screen_name[:6] if rng.random() < 0.5 else "",
        description="",
        location="",
        url="",
        default_profile_image=rng.random() < 0.6,
        followers_count=rng.randint(0, 30),
        friends_count=rng.randint(200, 3000),
        statuses_count=rng.randint(1, 25),
        last_tweet_at=_recent_last_tweet(rng, now, created, 80 * DAY),
        behavior=behavior,
        true_label=Label.FAKE,
    )


def _sample_fake_spammer(rng: random.Random, user_id: int,
                         screen_name: str, now: float) -> Account:
    """An active spam bot: floods links and duplicated promotional tweets.

    Trips Socialbakers' content rules (spam phrases, >90% links or
    retweets, repeated tweets) and the literature's URL-ratio features.
    """
    created = _created_at(rng, now, 30 * DAY, 1.5 * YEAR)
    screen_name = bot_screen_name(rng)
    mostly_retweets = rng.random() < 0.3
    behavior = BehaviorProfile(
        tweets_per_day=rng.uniform(5.0, 60.0),
        retweet_ratio=0.95 if mostly_retweets else rng.uniform(0.0, 0.2),
        link_ratio=rng.uniform(0.2, 0.5) if mostly_retweets else rng.uniform(0.92, 1.0),
        spam_ratio=rng.uniform(0.4, 0.95),
        mention_ratio=rng.uniform(0.0, 0.3),
        hashtag_ratio=rng.uniform(0.2, 0.6),
        duplicate_pool=rng.randint(2, 8),
        api_source_ratio=rng.uniform(0.85, 1.0),
    )
    return Account(
        user_id=user_id,
        screen_name=screen_name,
        created_at=created,
        name=screen_name[:8],
        description="" if rng.random() < 0.7 else "Best deals online!",
        location="",
        url="http://spam.example.com" if rng.random() < 0.4 else "",
        default_profile_image=rng.random() < 0.45,
        followers_count=rng.randint(0, 80),
        friends_count=rng.randint(500, 5000),
        statuses_count=rng.randint(200, 20000),
        last_tweet_at=_recent_last_tweet(rng, now, created, 3 * DAY),
        behavior=behavior,
        true_label=Label.FAKE,
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

GENUINE_ACTIVE = Persona("genuine_active", Label.GENUINE, _sample_genuine_active)
GENUINE_NEWBIE = Persona("genuine_newbie", Label.GENUINE, _sample_genuine_newbie)
GENUINE_ABANDONED = Persona(
    "genuine_abandoned", Label.INACTIVE, _sample_genuine_abandoned)
FAKE_EGG_DORMANT = Persona(
    "fake_egg_dormant", Label.INACTIVE, _sample_fake_egg_dormant)
FAKE_CLASSIC = Persona("fake_classic", Label.FAKE, _sample_fake_classic)
FAKE_SPAMMER = Persona("fake_spammer", Label.FAKE, _sample_fake_spammer)

PERSONAS: Dict[str, Persona] = {
    persona.name: persona
    for persona in (
        GENUINE_ACTIVE,
        GENUINE_NEWBIE,
        GENUINE_ABANDONED,
        FAKE_EGG_DORMANT,
        FAKE_CLASSIC,
        FAKE_SPAMMER,
    )
}

#: How a label-level composition translates into concrete personas when a
#: caller specifies only (inactive, fake, genuine) fractions.
DEFAULT_LABEL_MIXES: Dict[Label, Dict[str, float]] = {
    Label.GENUINE: {"genuine_active": 0.85, "genuine_newbie": 0.15},
    Label.INACTIVE: {"genuine_abandoned": 0.7, "fake_egg_dormant": 0.3},
    Label.FAKE: {"fake_classic": 0.6, "fake_spammer": 0.4},
}


def persona_mix_from_labels(
        inactive: float, fake: float, genuine: float,
        label_mixes: Optional[Mapping[Label, Mapping[str, float]]] = None,
) -> Dict[str, float]:
    """Expand an (inactive, fake, genuine) composition into persona weights.

    The three fractions must be non-negative and sum to 1 (within a
    small tolerance, since paper tables carry rounded percentages).
    """
    fractions: Tuple[Tuple[Label, float], ...] = (
        (Label.INACTIVE, inactive), (Label.FAKE, fake), (Label.GENUINE, genuine))
    total = inactive + fake + genuine
    if any(value < 0 for _, value in fractions):
        raise ConfigurationError("label fractions must be non-negative")
    if not 0.98 <= total <= 1.02:
        raise ConfigurationError(f"label fractions must sum to ~1, got {total!r}")
    mixes = label_mixes if label_mixes is not None else DEFAULT_LABEL_MIXES
    weights: Dict[str, float] = {}
    for label, fraction in fractions:
        for persona_name, weight in mixes[label].items():
            if persona_name not in PERSONAS:
                raise ConfigurationError(f"unknown persona: {persona_name!r}")
            weights[persona_name] = weights.get(persona_name, 0.0) + fraction * weight / total
    return {name: weight for name, weight in weights.items() if weight > 0.0}
