"""Shared audit types: the request, the report, the engine contract.

Every fake-follower engine in this reproduction — the three commercial
analytics and the Fake Project classifier — answers an audit request
with the same shape the paper tabulates in Table III: the percentages
of inactive, fake and genuine followers, plus the metadata the timing
experiment (Table II) needs (response time, cache status, sample size).

This module also defines the unified entry point every engine shares:

* :class:`AuditRequest` — what to audit and how (priority, cache
  bypass, pinned observation instant, deterministic sampling index);
* :class:`Auditor` — the structural protocol all engines satisfy
  (``audit`` for a blocking answer, ``begin_audit`` for resumable
  acquisition steps the batch scheduler interleaves);
* :func:`build_engines` — the one factory the experiments, the CLI and
  ``repro.quick_audit`` use instead of hand-rolled engine dicts.

``audit()`` takes an :class:`AuditRequest`, full stop: the legacy
string form ``engine.audit("handle")`` (deprecated through PR 7) has
been removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

try:  # pragma: no cover - Protocol is stdlib from 3.8 on
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - ancient interpreters only
    Protocol = object

    def runtime_checkable(cls):
        """Fallback no-op decorator when typing.Protocol is missing."""
        return cls

from .core.errors import ConfigurationError

#: Canonical engine order, matching the paper's table columns.
ENGINE_NAMES: Tuple[str, ...] = (
    "fc", "twitteraudit", "statuspeople", "socialbakers")


@dataclass(frozen=True)
class AuditReport:
    """Result of one fake-follower audit of one target account.

    Percentages are expressed on a 0-100 scale, as in the paper's
    tables.  ``inactive_pct`` is ``None`` for tools that do not report
    inactivity as a class (Twitteraudit, see Table III's footnote).
    """

    tool: str
    target: str
    followers_count: int
    sample_size: int
    fake_pct: float
    genuine_pct: float
    inactive_pct: Optional[float]
    response_seconds: float
    cached: bool
    #: Simulated instant the underlying analysis was computed (for a
    #: cached answer this predates the request, as Twitteraudit's
    #: "evaluated 7 months ago" notes make visible).
    assessed_at: float
    #: Fraction (0-1) of the intended acquisition actually achieved.
    #: 1.0 on a clean run; below 1.0 the engine degraded gracefully
    #: under API failures and the percentages describe a partial
    #: sample; 0.0 means no data could be acquired at all.
    completeness: float = 1.0
    #: Injected API failures observed while producing this result
    #: (including ones recovered by retry).
    errors_seen: int = 0
    details: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.followers_count < 0:
            raise ConfigurationError("followers_count must be >= 0")
        if self.sample_size < 0:
            raise ConfigurationError("sample_size must be >= 0")
        if self.response_seconds < 0:
            raise ConfigurationError("response_seconds must be >= 0")
        if not -1e-9 <= self.completeness <= 1.0 + 1e-9:
            raise ConfigurationError(
                f"completeness must be in [0, 1]: {self.completeness!r}")
        if self.errors_seen < 0:
            raise ConfigurationError("errors_seen must be >= 0")
        parts = [self.fake_pct, self.genuine_pct]
        if self.inactive_pct is not None:
            parts.append(self.inactive_pct)
        for value in parts:
            if not -1e-9 <= value <= 100.0 + 1e-9:
                raise ConfigurationError(
                    f"percentages must be in [0, 100]: {value!r}")
        total = sum(parts)
        if self.completeness == 0.0 and total == 0.0:
            # A fully failed audit reports no composition at all.
            return
        if not 99.0 <= total <= 101.0:
            raise ConfigurationError(
                f"percentages must sum to ~100, got {total!r}")

    def as_fractions(self) -> Mapping[str, float]:
        """The composition on a 0-1 scale, keyed like the paper's columns."""
        result = {
            "fake": self.fake_pct / 100.0,
            "good": self.genuine_pct / 100.0,
        }
        if self.inactive_pct is not None:
            result["inact"] = self.inactive_pct / 100.0
        return result


@dataclass(frozen=True)
class AuditRequest:
    """One audit to perform: the target plus scheduling directives.

    ``engine`` names the engine the request is meant for; ``None``
    means "whichever engine it is handed to" (the batch scheduler fills
    it in).  ``as_of`` pins the simulated observation instant: every
    world read behind the audit sees the social graph frozen at that
    time, which is what makes a batched run's percentages identical to
    a serial run's regardless of when each acquisition step lands on
    the clock.  ``audit_index`` overrides the engine's internal
    per-audit sampling counter so a scheduler can reproduce the exact
    RNG stream of a serial run; leave it ``None`` outside schedulers.

    ``mode`` selects between a ``"full"`` audit (crawl and classify the
    engine's whole sampling frame) and a ``"delta"`` re-audit, which
    walks only the newest head of ``followers/ids`` until it re-finds a
    previously captured watermark anchor and merges the new arrivals'
    verdicts with the watermarked baseline (see
    :mod:`repro.sched.incremental`).  A delta request with no usable
    watermark silently degrades to a full audit.
    """

    target: str
    engine: Optional[str] = None
    force_refresh: bool = False
    priority: int = 0
    as_of: Optional[float] = None
    audit_index: Optional[int] = None
    mode: str = "full"

    def __post_init__(self) -> None:
        if not self.target or not self.target.strip():
            raise ConfigurationError("target must be a non-empty handle")
        if self.audit_index is not None and self.audit_index < 1:
            raise ConfigurationError(
                f"audit_index must be >= 1: {self.audit_index!r}")
        if self.mode not in ("full", "delta"):
            raise ConfigurationError(
                f"mode must be 'full' or 'delta': {self.mode!r}")

    def bound_to(self, engine_name: str, **changes) -> "AuditRequest":
        """A copy bound to one engine (optionally updating fields)."""
        merged = dict(
            target=self.target, engine=engine_name,
            force_refresh=self.force_refresh, priority=self.priority,
            as_of=self.as_of, audit_index=self.audit_index,
            mode=self.mode)
        merged.update(changes)
        return AuditRequest(**merged)


@runtime_checkable
class Auditor(Protocol):
    """Structural contract every fake-follower engine satisfies.

    Engines expose a blocking :meth:`audit` (one call, one report) and
    a resumable :meth:`begin_audit` (a generator that yields between
    acquisition phases and *returns* the report), which is what the
    batch scheduler drives so many audits can interleave across
    simulated rate-limit windows.
    """

    #: Engine identifier used in reports and scheduler lanes.
    name: str
    #: Whether the engine reports "inactive" as a separate class.
    reports_inactive: bool

    def audit(self, request: "AuditRequest") -> AuditReport:
        """Audit one target and return the finished report."""
        ...  # pragma: no cover - protocol signature only

    def begin_audit(self, request: "AuditRequest"):
        """Start a resumable audit; a generator returning the report."""
        ...  # pragma: no cover - protocol signature only


def coerce_request(value: AuditRequest, *, engine_name: str) -> AuditRequest:
    """Validate an ``audit()`` argument and bind it to the engine.

    Only :class:`AuditRequest` is accepted (the legacy string form was
    removed); a request addressed to a *different* engine is rejected
    loudly rather than silently mislabelled.
    """
    if not isinstance(value, AuditRequest):
        raise ConfigurationError(
            f"audit() takes an AuditRequest (the string form was "
            f"removed; wrap the handle in AuditRequest(target=...)): "
            f"{value!r}")
    if value.engine is not None and value.engine != engine_name:
        raise ConfigurationError(
            f"request addressed to engine {value.engine!r} was handed "
            f"to {engine_name!r}")
    if value.engine is None:
        return value.bound_to(engine_name)
    return value


def drain_steps(steps) -> AuditReport:
    """Run a ``begin_audit`` generator to completion, returning its report.

    The blocking ``audit()`` entry point of every engine is exactly
    this: the same resumable step chain the scheduler interleaves, run
    back-to-back on the engine's own clock.
    """
    while True:
        try:
            next(steps)
        except StopIteration as stop:
            return stop.value


def engine_infos(engines: Mapping[str, "Auditor"]) -> Dict[str, Mapping]:
    """Structured metadata for a dict of engines, keyed by name.

    Every engine exposes :meth:`info` returning an
    :class:`repro.analytics.criteria.EngineInfo`; this flattens the lot
    to plain dicts for report headers and status pages.
    """
    return {name: engine.info().as_dict() for name, engine in engines.items()}


def build_engines(world, clock, detector=None, seed: int = 5, *,
                  faults=None, retry=None,
                  engines: Optional[Sequence[str]] = None,
                  acquisition_cache=None,
                  sb_daily_quota: Optional[int] = None,
                  sp_config=None,
                  batch: Union[bool, str] = "auto",
                  provenance=None) -> Dict[str, "Auditor"]:
    """Build the paper's audit engines over one world and one clock.

    The single factory behind every experiment, the CLI and
    ``repro.quick_audit``.  ``engines`` selects a subset of
    :data:`ENGINE_NAMES` (default: all four); ``faults``/``retry`` make
    every engine's client crawl under the same injected API weather;
    ``acquisition_cache`` plugs a shared :class:`repro.sched`
    follower-page/profile cache into every client; ``sb_daily_quota``
    overrides Socialbakers' free-tier quota (experiment runners lift it
    to ``10**9`` because they do in one session what the authors spread
    over days); ``sp_config`` selects a StatusPeople sampling
    configuration; ``batch`` sets every engine's columnar-classification
    knob (``"auto"``/``True``/``False`` — verdicts are bit-identical
    either way, only the wall clock differs); ``provenance`` hands one
    :class:`repro.obs.provenance.ProvenanceCollector` to every engine
    so fresh classifications record which rules fired (pure
    observation — verdict bytes never change).  Imports are deferred
    so ``repro.audit`` stays a leaf module the engines themselves can
    import.
    """
    from .analytics.socialbakers import SocialbakersFakeFollowerCheck
    from .analytics.statuspeople import StatusPeopleFakers
    from .analytics.twitteraudit import Twitteraudit
    from .fc.engine import FakeClassifierEngine

    names = tuple(engines) if engines is not None else ENGINE_NAMES
    unknown = set(names) - set(ENGINE_NAMES)
    if unknown:
        raise ConfigurationError(
            f"unknown engines: {sorted(unknown)!r}; "
            f"choose from {ENGINE_NAMES}")
    common = dict(faults=faults, retry=retry, seed=seed, batch=batch,
                  provenance=provenance)
    if acquisition_cache is not None:
        common["acquisition_cache"] = acquisition_cache
    sb_kwargs = dict(common)
    if sb_daily_quota is not None:
        sb_kwargs["daily_quota"] = sb_daily_quota
    sp_kwargs = dict(common)
    if sp_config is not None:
        sp_kwargs["config"] = sp_config
    factories = {
        "fc": lambda: FakeClassifierEngine(world, clock, detector, **common),
        "twitteraudit": lambda: Twitteraudit(world, clock, **common),
        "statuspeople": lambda: StatusPeopleFakers(world, clock, **sp_kwargs),
        "socialbakers": lambda: SocialbakersFakeFollowerCheck(
            world, clock, **sb_kwargs),
    }
    return {name: factories[name]() for name in names}
