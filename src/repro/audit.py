"""Shared audit-report types.

Every fake-follower engine in this reproduction — the three commercial
analytics and the Fake Project classifier — answers an audit request
with the same shape the paper tabulates in Table III: the percentages
of inactive, fake and genuine followers, plus the metadata the timing
experiment (Table II) needs (response time, cache status, sample size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from .core.errors import ConfigurationError


@dataclass(frozen=True)
class AuditReport:
    """Result of one fake-follower audit of one target account.

    Percentages are expressed on a 0-100 scale, as in the paper's
    tables.  ``inactive_pct`` is ``None`` for tools that do not report
    inactivity as a class (Twitteraudit, see Table III's footnote).
    """

    tool: str
    target: str
    followers_count: int
    sample_size: int
    fake_pct: float
    genuine_pct: float
    inactive_pct: Optional[float]
    response_seconds: float
    cached: bool
    #: Simulated instant the underlying analysis was computed (for a
    #: cached answer this predates the request, as Twitteraudit's
    #: "evaluated 7 months ago" notes make visible).
    assessed_at: float
    #: Fraction (0-1) of the intended acquisition actually achieved.
    #: 1.0 on a clean run; below 1.0 the engine degraded gracefully
    #: under API failures and the percentages describe a partial
    #: sample; 0.0 means no data could be acquired at all.
    completeness: float = 1.0
    #: Injected API failures observed while producing this result
    #: (including ones recovered by retry).
    errors_seen: int = 0
    details: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.followers_count < 0:
            raise ConfigurationError("followers_count must be >= 0")
        if self.sample_size < 0:
            raise ConfigurationError("sample_size must be >= 0")
        if self.response_seconds < 0:
            raise ConfigurationError("response_seconds must be >= 0")
        if not -1e-9 <= self.completeness <= 1.0 + 1e-9:
            raise ConfigurationError(
                f"completeness must be in [0, 1]: {self.completeness!r}")
        if self.errors_seen < 0:
            raise ConfigurationError("errors_seen must be >= 0")
        parts = [self.fake_pct, self.genuine_pct]
        if self.inactive_pct is not None:
            parts.append(self.inactive_pct)
        for value in parts:
            if not -1e-9 <= value <= 100.0 + 1e-9:
                raise ConfigurationError(
                    f"percentages must be in [0, 100]: {value!r}")
        total = sum(parts)
        if self.completeness == 0.0 and total == 0.0:
            # A fully failed audit reports no composition at all.
            return
        if not 99.0 <= total <= 101.0:
            raise ConfigurationError(
                f"percentages must sum to ~100, got {total!r}")

    def as_fractions(self) -> Mapping[str, float]:
        """The composition on a 0-1 scale, keyed like the paper's columns."""
        result = {
            "fake": self.fake_pct / 100.0,
            "good": self.genuine_pct / 100.0,
        }
        if self.inactive_pct is not None:
            result["inact"] = self.inactive_pct / 100.0
        return result
