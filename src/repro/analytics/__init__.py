"""The commercial fake-follower analytics the paper puts under scrutiny."""

from .base import (
    AnalysisOutcome,
    CommercialAnalytic,
    ResultCache,
    percentages,
)
from .criteria import (
    Criteria,
    EngineInfo,
    SampleBlock,
    VerdictArray,
    build_sample_block,
    scalar_classify,
)
from .socialbakers import (
    SB_DAILY_QUOTA,
    SB_SAMPLE,
    SocialbakersFakeFollowerCheck,
)
from .statuspeople import (
    DEEP_DIVE_CONFIG,
    DEFAULT_CONFIG,
    LAUNCH_CONFIG,
    FakersConfig,
    SP_INACTIVITY_HORIZON,
    StatusPeopleCriteria,
    StatusPeopleFakers,
    is_inactive,
    is_spam,
    spam_score,
)
from .webapp import (
    AppSession,
    DEFAULT_PERMISSIONS,
    HostedCheckerApp,
)
from .twitteraudit import (
    RealScore,
    TA_MAX_POINTS,
    TA_SAMPLE,
    Twitteraudit,
    TwitterauditCriteria,
    real_score,
)

__all__ = [
    "AnalysisOutcome",
    "AppSession",
    "CommercialAnalytic",
    "Criteria",
    "DEFAULT_PERMISSIONS",
    "EngineInfo",
    "HostedCheckerApp",
    "DEEP_DIVE_CONFIG",
    "DEFAULT_CONFIG",
    "FakersConfig",
    "LAUNCH_CONFIG",
    "RealScore",
    "ResultCache",
    "SB_DAILY_QUOTA",
    "SB_SAMPLE",
    "SP_INACTIVITY_HORIZON",
    "SampleBlock",
    "SocialbakersFakeFollowerCheck",
    "StatusPeopleCriteria",
    "StatusPeopleFakers",
    "TA_MAX_POINTS",
    "TA_SAMPLE",
    "Twitteraudit",
    "TwitterauditCriteria",
    "VerdictArray",
    "build_sample_block",
    "is_inactive",
    "is_spam",
    "percentages",
    "real_score",
    "scalar_classify",
    "spam_score",
]
