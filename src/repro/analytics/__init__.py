"""The commercial fake-follower analytics the paper puts under scrutiny."""

from .base import (
    AnalysisOutcome,
    CommercialAnalytic,
    ResultCache,
    percentages,
)
from .socialbakers import (
    SB_DAILY_QUOTA,
    SB_SAMPLE,
    SocialbakersFakeFollowerCheck,
)
from .statuspeople import (
    DEEP_DIVE_CONFIG,
    DEFAULT_CONFIG,
    LAUNCH_CONFIG,
    FakersConfig,
    SP_INACTIVITY_HORIZON,
    StatusPeopleFakers,
    is_inactive,
    is_spam,
    spam_score,
)
from .webapp import (
    AppSession,
    DEFAULT_PERMISSIONS,
    HostedCheckerApp,
)
from .twitteraudit import (
    RealScore,
    TA_MAX_POINTS,
    TA_SAMPLE,
    Twitteraudit,
    real_score,
)

__all__ = [
    "AnalysisOutcome",
    "AppSession",
    "CommercialAnalytic",
    "DEFAULT_PERMISSIONS",
    "HostedCheckerApp",
    "DEEP_DIVE_CONFIG",
    "DEFAULT_CONFIG",
    "FakersConfig",
    "LAUNCH_CONFIG",
    "RealScore",
    "ResultCache",
    "SB_DAILY_QUOTA",
    "SB_SAMPLE",
    "SP_INACTIVITY_HORIZON",
    "SocialbakersFakeFollowerCheck",
    "StatusPeopleFakers",
    "TA_MAX_POINTS",
    "TA_SAMPLE",
    "Twitteraudit",
    "is_inactive",
    "is_spam",
    "percentages",
    "real_score",
    "spam_score",
]
