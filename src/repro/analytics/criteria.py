"""The unified batch-classification contract of the audit engines.

Every engine applies *criteria* to a sample of follower profiles (and
optionally their timelines).  This module defines the shared shape of
that step:

* :class:`Criteria` — scalar ``classify(user, timeline, now)`` (one
  verdict label per account, the historical behaviour) plus an optional
  columnar ``classify_block(block, now)`` over a :class:`SampleBlock`
  of NumPy columns;
* :class:`VerdictArray` — per-account verdict codes with label-ordered
  ``counts()`` and engine-specific ``extras`` (histograms etc.);
* :class:`SampleBlock` — the profile columns of one sample, built once
  per classification from either a columnar-substrate
  :class:`~repro.twitter.columnar.schema.UserRowBlock` or a plain list
  of user objects, with the derived columns every rule set shares
  (friends/followers ratio, account age, last-status age, bio/location
  presence) computed lazily;
* :class:`EngineInfo` — the uniform engine metadata block
  (``CommercialAnalytic.info()``) that replaced the ad-hoc
  ``"criteria": "..."`` strings in report details.

The columnar path carries the same bit-identity contract as
:mod:`repro.fc.columnar`: every mask pipeline reproduces the scalar
rules' float operations exactly, so ``classify_block`` and a
``classify`` loop return identical verdicts — only the wall clock
differs.  NumPy resolution is delegated to the FC module's single
seam, so monkeypatching either module's ``_import_numpy`` simulates a
NumPy-less host for every engine at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError
from ..fc import columnar as _fc_columnar


def _import_numpy():
    """Resolve NumPy via the FC columnar seam (monkeypatchable here too)."""
    return _fc_columnar._import_numpy()


def numpy_available() -> bool:
    """Whether the columnar criteria paths can run at all."""
    return _import_numpy() is not None


@dataclass(frozen=True)
class EngineInfo:
    """Uniform engine metadata: one structured block per engine.

    ``batch_capable`` is a static capability fact — whether the
    engine's criteria implement a columnar path at all, *not* whether
    the current run uses it — so report details stay byte-identical
    across ``batch=`` knob settings.
    """

    name: str
    frame_policy: str
    criteria_id: str
    reports_inactive: bool
    batch_capable: bool

    def as_dict(self) -> Dict[str, object]:
        """A plain JSON-serialisable mapping for report details."""
        return {
            "name": self.name,
            "frame_policy": self.frame_policy,
            "criteria_id": self.criteria_id,
            "reports_inactive": self.reports_inactive,
            "batch_capable": self.batch_capable,
        }


@dataclass
class VerdictArray:
    """Per-account verdicts: codes indexing into ``labels``.

    ``codes`` is an int64 NumPy array on the columnar path or a plain
    list of ints on the scalar path; ``extras`` carries whatever
    engine-specific aggregates the criteria computed alongside the
    verdicts (Twitteraudit's histograms and quality sum).
    """

    labels: Tuple[str, ...]
    codes: Sequence[int]
    extras: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.codes)

    def counts(self) -> Dict[str, int]:
        """Verdict tallies as ``{label: count}`` in label order."""
        np = _import_numpy()
        codes = self.codes
        if np is not None and isinstance(codes, np.ndarray):
            tally = np.bincount(codes, minlength=len(self.labels))
            return {label: int(tally[index])
                    for index, label in enumerate(self.labels)}
        tally = [0] * len(self.labels)
        for code in codes:
            tally[code] += 1
        return {label: tally[index]
                for index, label in enumerate(self.labels)}


def scalar_classify(criteria, users, timelines, now: float,
                    sink=None) -> VerdictArray:
    """The generic scalar loop: one ``classify`` call per account.

    With a :class:`~repro.obs.provenance.ProvenanceSink` attached the
    loop runs :meth:`Criteria.explain` instead, collecting each rule's
    per-user fire bits; ``explain`` mirrors ``classify`` exactly, so
    the verdict codes are identical either way (the differential
    parity suite proves it).
    """
    index = {label: code for code, label in enumerate(criteria.labels)}
    if timelines is None:
        pairs = [(user, None) for user in users]
    else:
        pairs = list(zip(users, timelines))
    if sink is None:
        codes = [index[criteria.classify(user, timeline, now)]
                 for user, timeline in pairs]
    else:
        fires = {rule: [] for rule in criteria.rule_ids}
        codes = []
        for user, timeline in pairs:
            label, fired = criteria.explain(user, timeline, now)
            codes.append(index[label])
            fired_set = set(fired)
            for rule in criteria.rule_ids:
                fires[rule].append(rule in fired_set)
        for rule in criteria.rule_ids:
            sink.add(rule, fires[rule])
    return VerdictArray(labels=tuple(criteria.labels), codes=codes)


class Criteria:
    """Base contract of an engine's classification criteria.

    Subclasses implement scalar :meth:`classify`; those with a
    columnar mask pipeline additionally override :meth:`classify_block`
    and set ``batch_capable = True``.  ``labels`` fixes the verdict
    vocabulary *and* the key order of :meth:`VerdictArray.counts` —
    engines rely on that order when feeding
    :func:`~repro.analytics.base.percentages`.
    """

    name: str = "criteria"
    needs_timeline: bool = False
    labels: Tuple[str, ...] = ()
    #: Whether :meth:`classify_block` is implemented (static fact).
    batch_capable: bool = False
    #: Stable rule identifiers, in evaluation order.  Part of the
    #: observable wire format: goldens, metric series and dashboards
    #: key on these strings — renaming one is a breaking change (see
    #: docs/observability.md, "RuleId stability").
    rule_ids: Tuple[str, ...] = ()

    def classify(self, user, timeline, now: float) -> str:
        """Classify one account; returns a label from ``labels``."""
        raise NotImplementedError

    def explain(self, user, timeline, now: float) -> Tuple[str, Tuple[str, ...]]:
        """Classify one account and name the rules that fired.

        Must agree with :meth:`classify` on the label for every input.
        The default reports no rules (criteria without a rule registry
        still classify; they just have nothing to attribute).
        """
        return self.classify(user, timeline, now), ()

    def classify_all(self, users, timelines, now: float,
                     sink=None) -> VerdictArray:
        """Scalar classification of a whole sample (existing behaviour).

        ``sink`` optionally collects per-rule fire masks; attaching one
        never changes the verdicts.
        """
        return scalar_classify(self, users, timelines, now, sink=sink)

    def classify_block(self, block: "SampleBlock", now: float,
                       sink=None) -> Optional[VerdictArray]:
        """Columnar classification, or ``None`` for "not supported"."""
        return None


class SampleBlock:
    """The profile columns of one sample, plus lazy derived columns.

    Construction performs exactly one attribute sweep (or, for a
    columnar-substrate :class:`UserRowBlock`, zero — the block hands
    over ready-made columns); every derived column a rule set needs is
    computed once on first use and shared between rules.  All float
    math mirrors the scalar user-object observables bit for bit:
    ``last_status_at`` keeps NaN for never-tweeted (so age columns
    propagate NaN and must be paired with :attr:`never_tweeted`), and
    the friends/followers ratio reproduces the scalar zero-follower
    fallback exactly.
    """

    def __init__(self, np, users, timelines=None) -> None:
        self.np = np
        self._users = users
        self._timelines = timelines
        rows = getattr(users, "rows", None)
        if rows is not None and getattr(rows, "dtype", None) is not None \
                and rows.dtype.names is not None:
            # Columnar-substrate fast path: the UserRowBlock's
            # structured rows already hold every eager column in its
            # exact dtype (int64 counters, float64 instants with NaN
            # encoding never-tweeted, bool flag) — take field views
            # and skip the Python-object round trip entirely.
            self.followers = rows["followers_count"]
            self.friends = rows["friends_count"]
            self.statuses = rows["statuses_count"]
            self.created_at = rows["created_at"]
            self.last_status_at = rows["last_tweet_at"]
            self.default_image = rows["default_profile_image"]
            self._descriptions = rows["description"]
            self._locations = rows["location"]
            self._ff_ratio = None
            self._has_bio = None
            self._has_location = None
            self._never_tweeted = None
            self._timeline_stats = None
            return
        profile_columns = getattr(users, "profile_columns", None)
        if profile_columns is not None:
            columns = profile_columns()
        else:
            rows = [_fc_columnar._PROFILE_FIELDS(user) for user in users]
            if rows:
                columns = tuple(list(column) for column in zip(*rows))
            else:
                columns = tuple([] for _ in range(11))
        (followers, friends, statuses, created_at, last_status_at,
         descriptions, locations, _urls, _names, default_images,
         _screen_names) = columns
        self.followers = np.asarray(followers, dtype=np.int64)
        self.friends = np.asarray(friends, dtype=np.int64)
        self.statuses = np.asarray(statuses, dtype=np.int64)
        self.created_at = np.asarray(created_at, dtype=np.float64)
        self.last_status_at = np.array(
            [np.nan if value is None else value for value in last_status_at],
            dtype=np.float64)
        self.default_image = np.asarray(default_images, dtype=bool)
        self._descriptions = descriptions
        self._locations = locations
        self._ff_ratio = None
        self._has_bio = None
        self._has_location = None
        self._never_tweeted = None
        self._timeline_stats = None

    def __len__(self) -> int:
        return len(self.followers)

    @property
    def ff_ratio(self):
        """``friends_followers_ratio()`` as a float64 column.

        Bit-identical to the scalar observable: int64/int64 division is
        correctly rounded like Python ``int / int``, and zero-follower
        rows take the ``float(friends_count)`` fallback.
        """
        if self._ff_ratio is None:
            np = self.np
            unfollowed = self.followers == 0
            denominator = np.where(unfollowed, 1, self.followers)
            self._ff_ratio = np.where(
                unfollowed, self.friends.astype(np.float64),
                self.friends / denominator)
        return self._ff_ratio

    def _nonblank(self, texts):
        """``bool(text.strip())`` as a boolean column.

        On the structured-rows fast path ``texts`` is a ``U``-dtype
        field view, stripped vectorized; ``str.strip`` applied per
        element and ``np.char.strip`` remove the same whitespace, so
        the two branches agree exactly.
        """
        np = self.np
        if isinstance(texts, np.ndarray):
            return np.char.strip(texts) != ""
        return np.asarray([bool(text.strip()) for text in texts], dtype=bool)

    @property
    def has_bio(self):
        """``has_bio()`` as a boolean column."""
        if self._has_bio is None:
            self._has_bio = self._nonblank(self._descriptions)
        return self._has_bio

    @property
    def has_location(self):
        """``has_location()`` as a boolean column."""
        if self._has_location is None:
            self._has_location = self._nonblank(self._locations)
        return self._has_location

    @property
    def never_tweeted(self):
        """Rows with no last status (the NaN encoding of ``None``)."""
        if self._never_tweeted is None:
            self._never_tweeted = self.np.isnan(self.last_status_at)
        return self._never_tweeted

    def age_at(self, now: float):
        """``age_at(now)`` column (always finite)."""
        return self.np.maximum(0.0, now - self.created_at)

    def last_status_age(self, now: float):
        """``last_status_age(now)`` column; NaN where never tweeted.

        NaN compares ``False`` against any threshold, so pure
        "older than" masks are safe — but pair explicit never-tweeted
        semantics with :attr:`never_tweeted`.
        """
        return self.np.maximum(0.0, now - self.last_status_at)

    def timeline_stats(self):
        """The one-pass timeline fraction columns (class-B sweep)."""
        if self._timeline_stats is None:
            if self._timelines is None:
                raise ConfigurationError(
                    "sample block was built without timelines")
            from ..api.columns import timeline_stat_columns
            self._timeline_stats = timeline_stat_columns(
                self.np, self._timelines)
        return self._timeline_stats


def build_sample_block(users, timelines=None) -> Optional[SampleBlock]:
    """Build a :class:`SampleBlock`, or ``None`` when NumPy is absent."""
    np = _import_numpy()
    if np is None:
        return None
    return SampleBlock(np, users, timelines)
