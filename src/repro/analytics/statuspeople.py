"""StatusPeople "Fakers" (paper, Section II-A).

Launched July 2012 by the UK company StatusPeople, repeatedly cited by
mainstream media.  The paper documents three historical configurations
of its sampling, all of them head-of-list:

* at launch: assess 1000 records across a follower base of up to 100 K;
* after the October 2012 Twitter API change: 700 records across 35 K
  (the configuration active during the paper's experiments — the
  default here);
* the November 2013 "Deep Dive" for mega accounts: 33 K records across
  the first 1.25 M, internal-only.

Classification is by "a number of simple spam criteria": "on a very
basic level spam accounts tend to have few or no followers and few or
no tweets.  But in contrast they tend to follow a lot of other
accounts", with the follower/friend relationship being "the most
meaningful" signal per the founder's interview.  On activity, the
founder defines an active user as "someone who is engaging with the
platform — producing and sharing content", which we encode as a
30-day last-tweet horizon — notably stricter than the 90-day notion
used by Socialbakers and FC.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Optional

from ..api.endpoints import UserObject
from ..core.errors import ConfigurationError
from ..core.timeutil import DAY
from .base import AnalysisOutcome, CommercialAnalytic, percentages
from .criteria import Criteria, SampleBlock, VerdictArray


@dataclass(frozen=True)
class FakersConfig:
    """One historical sampling configuration of the Fakers app."""

    label: str
    head: int
    sample: int

    def __post_init__(self) -> None:
        if not 0 < self.sample <= self.head:
            raise ConfigurationError(
                f"sample must be in (0, head]: {self.sample!r}")


#: July 2012 launch configuration.
LAUNCH_CONFIG = FakersConfig("launch-2012", head=100_000, sample=1000)
#: Post API-change configuration (18 Oct 2012) — the paper-era default.
DEFAULT_CONFIG = FakersConfig("post-api-change", head=35_000, sample=700)
#: November 2013 "Deep Dive" for the most-followed accounts.
DEEP_DIVE_CONFIG = FakersConfig("deep-dive", head=1_250_000, sample=33_000)

#: Last-tweet age beyond which StatusPeople counts a follower inactive.
SP_INACTIVITY_HORIZON = 30 * DAY


def spam_score(user: UserObject) -> float:
    """StatusPeople's "simple spam criteria", as points.

    Weights are undisclosed; these encode the published statements with
    the follower/friend relationship carrying the most weight.
    """
    score = 0.0
    if user.followers_count <= 25:
        score += 1.0
    if user.statuses_count <= 20:
        score += 1.0
    if user.friends_count >= 150:
        score += 1.0
    if user.friends_followers_ratio() >= 20.0:
        score += 2.0
    return score


def is_spam(user: UserObject, threshold: float = 3.0) -> bool:
    """Fake verdict of the Fakers criteria."""
    return spam_score(user) >= threshold


def is_inactive(user: UserObject, now: float) -> bool:
    """Not "producing and sharing content" within the 30-day horizon."""
    age = user.last_status_age(now)
    return age is None or age > SP_INACTIVITY_HORIZON


class StatusPeopleCriteria(Criteria):
    """The Fakers spam/inactivity rules behind the batch-criteria API.

    Scalar classification delegates to the module-level rule functions
    (the historical behaviour); the columnar path expresses the same
    four spam predicates as weighted boolean masks.  Point weights are
    exact multiples of 0.5 with sums well under 2^53, so the
    mask-weighted sum is bit-identical to the scalar accumulation.
    """

    name = "sp-spam-points"
    needs_timeline = False
    labels = ("fake", "inactive", "good")
    batch_capable = True
    rule_ids = (
        "sp.few_followers",
        "sp.few_tweets",
        "sp.mass_following",
        "sp.ratio_20",
        "sp.inactive_30d",
    )

    def __init__(self, threshold: float = 3.0) -> None:
        self._threshold = threshold

    def classify(self, user: UserObject, timeline, now: float) -> str:
        if is_spam(user, self._threshold):
            return "fake"
        if is_inactive(user, now):
            return "inactive"
        return "good"

    def explain(self, user: UserObject, timeline, now: float):
        fired = []
        if user.followers_count <= 25:
            fired.append("sp.few_followers")
        if user.statuses_count <= 20:
            fired.append("sp.few_tweets")
        if user.friends_count >= 150:
            fired.append("sp.mass_following")
        if user.friends_followers_ratio() >= 20.0:
            fired.append("sp.ratio_20")
        if is_inactive(user, now):
            fired.append("sp.inactive_30d")
        return self.classify(user, timeline, now), tuple(fired)

    def classify_block(self, block: SampleBlock, now: float,
                       sink=None) -> Optional[VerdictArray]:
        np = block.np
        few_followers = block.followers <= 25
        few_tweets = block.statuses <= 20
        mass_following = block.friends >= 150
        ratio_20 = block.ff_ratio >= 20.0
        score = (few_followers * 1.0
                 + few_tweets * 1.0
                 + mass_following * 1.0
                 + ratio_20 * 2.0)
        spam = score >= self._threshold
        # NaN last-status ages compare False against the horizon, so
        # never-tweeted rows need the explicit mask.
        inactive = block.never_tweeted | (
            block.last_status_age(now) > SP_INACTIVITY_HORIZON)
        if sink is not None:
            sink.add("sp.few_followers", few_followers)
            sink.add("sp.few_tweets", few_tweets)
            sink.add("sp.mass_following", mass_following)
            sink.add("sp.ratio_20", ratio_20)
            sink.add("sp.inactive_30d", inactive)
        codes = np.where(spam, 0, np.where(inactive, 1, 2)).astype(np.int64)
        return VerdictArray(labels=self.labels, codes=codes)


class StatusPeopleFakers(CommercialAnalytic):
    """The Fakers app: head-of-list sample, profile-only spam criteria.

    Runs a modest serial crawler (its ~25 s fresh-analysis times in
    Table II are consistent with ~14 sequential API calls).
    """

    name = "statuspeople"
    reports_inactive = True

    def __init__(self, world, clock, *, config: FakersConfig = DEFAULT_CONFIG,
                 **kwargs) -> None:
        kwargs.setdefault("credentials", 4)
        kwargs.setdefault("parallelism", 1)
        super().__init__(world, clock, **kwargs)
        self._config = config
        self._criteria = StatusPeopleCriteria()

    @property
    def config(self) -> FakersConfig:
        """The active sampling configuration."""
        return self._config

    @property
    def frame_policy(self) -> str:
        """The sampling frame of the active Fakers configuration."""
        return (f"newest {self._config.head} follower ids, "
                f"random sample of {self._config.sample}")

    def _analyze_steps(self, screen_name: str):
        """Head-of-list sample classified by the spam/inactivity rules."""
        target, users, __ = yield from self._fetch_head_sample(
            screen_name,
            head=self._config.head,
            sample=self._config.sample,
            with_timelines=False,
        )
        now = self._analysis_now()
        counts = self._classify_sample(users, None, now).counts()
        total = max(1, len(users))
        pct = percentages(counts, total)
        return AnalysisOutcome(
            followers_count=target.followers_count,
            sample_size=len(users),
            fake_pct=pct["fake"],
            genuine_pct=pct["good"],
            inactive_pct=pct["inactive"],
            details={
                "config": self._config.label,
                "head": self._config.head,
                "engine": self.info().as_dict(),
            },
        )
