"""The hosted web-application layer of the commercial tools.

Section II of the paper describes the user-facing flow all three tools
share: "a Twitter user inputs the name of the Twitter account she wants
to check.  The application, then, requests the user to authorize itself
to use her Twitter account and to access her profile, clearly listing
the kind of operations it could do after that such authorization is
granted.  Finally, the application starts the analysis."

:class:`HostedCheckerApp` wraps any engine with that flow: OAuth-style
authorization (with the permission list shown to the user), session
handling, per-session daily usage limits, and the report page.  It is
what the paper's authors actually *clicked through* — the engines
behind it are what they measured.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from ..audit import AuditReport, AuditRequest
from ..core.errors import (
    AuthorizationError,
    ConfigurationError,
    QuotaExceededError,
)
from ..core.timeutil import DAY

#: The operations the authorization screen lists, mirroring what a
#: read-scope Twitter app of the era disclosed.
DEFAULT_PERMISSIONS: Tuple[str, ...] = (
    "Read Tweets from your timeline.",
    "See who you follow, and follow new people.",
    "Update your profile.",
    "Post Tweets for you.",
)


@dataclass(frozen=True)
class AppSession:
    """An authorized user session with a hosted checker."""

    token: str
    user_handle: str
    granted_at: float
    permissions: Tuple[str, ...]


class HostedCheckerApp:
    """Authorization, quotas and report pages around one engine.

    Parameters
    ----------
    engine:
        Any object with an ``audit(AuditRequest) -> AuditReport`` method
        (all four engines in this library qualify).
    daily_checks_per_user:
        Usage allowance per authorized user per day; ``None`` disables
        the limit.  Socialbakers' documented free tier was ten.
    permissions:
        The operation list shown on the authorization screen.
    """

    def __init__(self, engine, *,
                 daily_checks_per_user: Optional[int] = None,
                 permissions: Tuple[str, ...] = DEFAULT_PERMISSIONS) -> None:
        if daily_checks_per_user is not None and daily_checks_per_user < 1:
            raise ConfigurationError(
                "daily_checks_per_user must be >= 1 or None: "
                f"{daily_checks_per_user!r}")
        if not permissions:
            raise ConfigurationError(
                "the authorization screen must list at least one operation")
        self._engine = engine
        self._daily_limit = daily_checks_per_user
        self._permissions = tuple(permissions)
        self._sessions: Dict[str, AppSession] = {}
        self._usage: Dict[str, Tuple[int, int]] = {}  # token -> (day, used)
        self._token_counter = itertools.count(1)

    @property
    def engine(self):
        """The analysis engine behind the web front."""
        return self._engine

    @property
    def permissions(self) -> Tuple[str, ...]:
        """The operations disclosed on the authorization screen."""
        return self._permissions

    def authorization_screen(self) -> str:
        """The text a user reads before granting access."""
        name = getattr(self._engine, "name", "this application")
        lines = [f"Authorize {name} to use your account?",
                 "This application will be able to:"]
        lines.extend(f"  - {operation}" for operation in self._permissions)
        return "\n".join(lines)

    def authorize(self, user_handle: str) -> AppSession:
        """Grant access; returns the session used for later checks."""
        if not user_handle.strip():
            raise ConfigurationError("user_handle must be non-empty")
        clock = self._engine.client.clock
        session = AppSession(
            token=f"tok-{next(self._token_counter)}",
            user_handle=user_handle,
            granted_at=clock.now(),
            permissions=self._permissions,
        )
        self._sessions[session.token] = session
        return session

    def revoke(self, session: AppSession) -> None:
        """Revoke a session (the user un-authorizes the app)."""
        self._sessions.pop(session.token, None)

    def check(self, session: AppSession,
              target: Union[AuditRequest, str]) -> AuditReport:
        """Run one fake-follower check as an authorized user.

        ``target`` is a handle (the form field of the hosted apps) or a
        full :class:`~repro.audit.AuditRequest`; either way the user's
        daily quota is charged before the engine runs — exactly as the
        hosted tools billed a click, whether or not the answer came
        from a cache or a batch.
        """
        if session.token not in self._sessions:
            raise AuthorizationError(
                "session is not authorized (or has been revoked); "
                "call authorize() first")
        self._charge_quota(session)
        if isinstance(target, str):
            target = AuditRequest(target=target,
                                  engine=getattr(self._engine, "name", None))
        return self._engine.audit(target)

    def status_page(self) -> str:
        """The operator-facing health page of the hosted service.

        Reads the active streaming-telemetry plane (``repro.obs.live``)
        when one is attached: active alerts, SLO burn rates, and the
        engine's recent audit throughput.  Without live telemetry the
        page degrades to a static "no telemetry" banner, the honest
        answer for an uninstrumented deployment.
        """
        from ..obs.runtime import get_observability
        name = getattr(self._engine, "name", "service")
        lines = [f"{name} service status",
                 f"  authorized sessions: {len(self._sessions)}"]
        info = getattr(self._engine, "info", None)
        if info is not None:
            detail = info()
            lines.append(
                f"  engine: criteria {detail.criteria_id}; "
                f"frame {detail.frame_policy}; "
                f"batch {'on' if detail.batch_capable else 'off'}")
        live = get_observability().live
        if live is None:
            lines.append("  live telemetry: not attached")
            return "\n".join(lines)
        active = live.alerts.active()
        fired, resolved = live.alerts.counts()
        lines.append(
            f"  alerts: {len(active)} active ({fired} fired, "
            f"{resolved} resolved)"
            + (": " + ", ".join(active) if active else ""))
        for status in live.slos.statuses():
            flag = "FIRING" if status.firing else "ok"
            lines.append(
                f"  slo {status.spec.name}: burn fast "
                f"{status.fast_burn:.2f} / slow {status.slow_burn:.2f} "
                f"[{flag}]")
        streams = live.streams()
        audit_stream = streams.get(f"audits.{name}")
        if audit_stream is not None:
            lines.append(
                f"  audits completed: {audit_stream.total_count}")
        return "\n".join(lines)

    def report_page(self, report: AuditReport) -> str:
        """Render the result the way the hosted tools presented it."""
        lines = [
            f"Results for @{report.target} "
            f"({report.followers_count} followers)",
            f"  fake:     {report.fake_pct}%",
        ]
        if report.inactive_pct is not None:
            lines.append(f"  inactive: {report.inactive_pct}%")
        lines.append(f"  good:     {report.genuine_pct}%")
        if report.cached:
            # Only Twitteraudit disclosed staleness; the page surfaces
            # it for every tool, which is what the paper asks for.
            lines.append("  (served from a previously computed analysis)")
        return "\n".join(lines)

    # -- internals ----------------------------------------------------------

    def _charge_quota(self, session: AppSession) -> None:
        if self._daily_limit is None:
            return
        clock = self._engine.client.clock
        today = int(clock.now() // DAY)
        day, used = self._usage.get(session.token, (today, 0))
        if day != today:
            day, used = today, 0
        if used >= self._daily_limit:
            raise QuotaExceededError(
                f"daily limit of {self._daily_limit} checks reached")
        self._usage[session.token] = (day, used + 1)
