"""Twitteraudit (paper, Section II-C).

Online since 2012, run by two individuals (@davc and @grossnasty).
"Given each follower of an account, the application computes a score
based on i) the number of its tweets, ii) the date of the last tweet,
and iii) the ratio of followers to friends, taking a random sample of
5K Twitter followers."  How the score combines is undisclosed; the
output charts reveal the three criteria "can sum up to five" real
points per follower.

Distinctive observable behaviours reproduced here:

* it does **not** report inactive followers as a class (Table III's
  footnote) — dormant accounts simply score low and land in "fake";
* it is the only tool that displays the assessment date, which is how
  the paper caught it serving a result "evaluated 7 months ago" in 3
  seconds (Table II, @pinucciotwit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..api.endpoints import UserObject
from ..core.timeutil import DAY
from .base import AnalysisOutcome, CommercialAnalytic
from .criteria import Criteria, SampleBlock, VerdictArray

#: "taking a random sample of 5K Twitter followers" — one API page,
#: which is necessarily the newest 5000.
TA_SAMPLE = 5000

#: Real-point scale maximum ("a maximum scale of 5").
TA_MAX_POINTS = 5.0


@dataclass(frozen=True)
class RealScore:
    """A follower's "real points" breakdown (the audit's third chart)."""

    tweets_points: float
    recency_points: float
    ratio_points: float

    @property
    def total(self) -> float:
        """Summed real points (0-5)."""
        return self.tweets_points + self.recency_points + self.ratio_points

    @property
    def quality(self) -> float:
        """The 0-1 "quality score" of the audit's second chart."""
        return self.total / TA_MAX_POINTS


def real_score(user: UserObject, now: float) -> RealScore:
    """Score one follower on the three published criteria (max 5).

    The breakpoints are undisclosed; these encode the obvious reading:
    an account that tweets, tweeted recently, and is followed at least
    as much as it follows, earns full points.
    """
    if user.statuses_count >= 50:
        tweets = 1.5
    elif user.statuses_count >= 5:
        tweets = 0.75
    else:
        tweets = 0.0
    age = user.last_status_age(now)
    if age is None:
        recency = 0.0
    elif age <= 30 * DAY:
        recency = 1.5
    elif age <= 180 * DAY:
        recency = 0.75
    else:
        recency = 0.0
    ratio = user.friends_followers_ratio()
    if ratio <= 1.0:
        ratio_points = 2.0
    elif ratio <= 5.0:
        ratio_points = 1.0
    else:
        ratio_points = 0.0
    return RealScore(tweets, recency, ratio_points)


def _ta_fired(user: UserObject, now: float):
    """Deficiency rules of one follower, in registry order."""
    fired = []
    if user.statuses_count < 5:
        fired.append("ta.no_tweets")
    elif user.statuses_count < 50:
        fired.append("ta.few_tweets")
    age = user.last_status_age(now)
    if age is None or age > 30 * DAY:
        fired.append("ta.stale_30d")
    if age is None or age > 180 * DAY:
        fired.append("ta.stale_180d")
    ratio = user.friends_followers_ratio()
    if ratio > 1.0:
        fired.append("ta.ratio_over_1")
    if ratio > 5.0:
        fired.append("ta.ratio_over_5")
    return tuple(fired)


class TwitterauditCriteria(Criteria):
    """The 3-criterion RealScore rules behind the batch-criteria API.

    Both paths carry the audit's chart aggregates in the verdict
    array's ``extras``: the 0-5 real-points histogram, the quality
    decile histogram, and the running quality sum (accumulated in user
    order on *both* paths — a NumPy pairwise sum would round
    differently).  All point values are multiples of 0.25, so the
    columnar nested-``where`` scoring is bit-identical to the scalar
    branch ladder.
    """

    name = "ta-real-points"
    needs_timeline = False
    labels = ("fake", "not sure", "real")
    batch_capable = True
    #: Deficiency rules: each names a way a follower *loses* real
    #: points (the audit penalises absences, unlike the spam-points
    #: engines which accumulate positives).
    rule_ids = (
        "ta.no_tweets",
        "ta.few_tweets",
        "ta.stale_30d",
        "ta.stale_180d",
        "ta.ratio_over_1",
        "ta.ratio_over_5",
    )

    def __init__(self, fake_threshold: float = 2.5) -> None:
        self._fake_threshold = fake_threshold

    def classify(self, user: UserObject, timeline, now: float) -> str:
        total = real_score(user, now).total
        if total < self._fake_threshold:
            return "fake"
        if total < self._fake_threshold + 1.0:
            return "not sure"
        return "real"

    def explain(self, user: UserObject, timeline, now: float):
        return self.classify(user, timeline, now), _ta_fired(user, now)

    def classify_all(self, users, timelines, now: float,
                     sink=None) -> VerdictArray:
        histogram: Dict[int, int] = {points: 0 for points in range(6)}
        quality_histogram: Dict[int, int] = {decile: 0
                                             for decile in range(10)}
        quality_sum = 0.0
        codes = []
        fires = ({rule: [] for rule in self.rule_ids}
                 if sink is not None else None)
        for user in users:
            score = real_score(user, now)
            histogram[min(5, int(score.total))] += 1
            quality_histogram[min(9, int(score.quality * 10))] += 1
            quality_sum += score.quality
            if score.total < self._fake_threshold:
                codes.append(0)
            elif score.total < self._fake_threshold + 1.0:
                codes.append(1)
            else:
                codes.append(2)
            if fires is not None:
                fired = set(_ta_fired(user, now))
                for rule in self.rule_ids:
                    fires[rule].append(rule in fired)
        if fires is not None:
            for rule in self.rule_ids:
                sink.add(rule, fires[rule])
        return VerdictArray(labels=self.labels, codes=codes, extras={
            "real_points_histogram": histogram,
            "quality_histogram": quality_histogram,
            "quality_sum": quality_sum,
        })

    def classify_block(self, block: SampleBlock, now: float,
                       sink=None) -> Optional[VerdictArray]:
        np = block.np
        statuses = block.statuses
        tweets = np.where(statuses >= 50, 1.5,
                          np.where(statuses >= 5, 0.75, 0.0))
        age = block.last_status_age(now)
        recency = np.where(block.never_tweeted, 0.0,
                           np.where(age <= 30 * DAY, 1.5,
                                    np.where(age <= 180 * DAY, 0.75, 0.0)))
        ratio = block.ff_ratio
        ratio_points = np.where(ratio <= 1.0, 2.0,
                                np.where(ratio <= 5.0, 1.0, 0.0))
        if sink is not None:
            # The deficiency masks restate the scoring breakpoints as
            # booleans; they read the same columns the scores were
            # computed from, never the scores themselves.
            stale = block.never_tweeted | (age > 30 * DAY)
            sink.add("ta.no_tweets", statuses < 5)
            sink.add("ta.few_tweets", (statuses >= 5) & (statuses < 50))
            sink.add("ta.stale_30d", stale)
            sink.add("ta.stale_180d",
                     block.never_tweeted | (age > 180 * DAY))
            sink.add("ta.ratio_over_1", ratio > 1.0)
            sink.add("ta.ratio_over_5", ratio > 5.0)
        # Left-associated like RealScore.total's scalar sum.
        total = (tweets + recency) + ratio_points
        quality = total / TA_MAX_POINTS
        buckets = np.minimum(5, total.astype(np.int64))
        deciles = np.minimum(9, (quality * 10.0).astype(np.int64))
        bucket_counts = np.bincount(buckets, minlength=6)
        decile_counts = np.bincount(deciles, minlength=10)
        # Ordered accumulation on Python floats, matching the scalar
        # ``quality_sum += score.quality`` loop bit for bit.
        quality_sum = 0.0
        for value in quality.tolist():
            quality_sum += value
        threshold = self._fake_threshold
        codes = np.where(total < threshold, 0,
                         np.where(total < threshold + 1.0, 1, 2)
                         ).astype(np.int64)
        return VerdictArray(labels=self.labels, codes=codes, extras={
            "real_points_histogram": {points: int(bucket_counts[points])
                                      for points in range(6)},
            "quality_histogram": {decile: int(decile_counts[decile])
                                  for decile in range(10)},
            "quality_sum": quality_sum,
        })


class Twitteraudit(CommercialAnalytic):
    """The Twitteraudit checker: one 5000-id page, 3-criterion scoring."""

    name = "twitteraudit"
    reports_inactive = False

    def __init__(self, world, clock, *, fake_threshold: float = 2.5,
                 **kwargs) -> None:
        # A small two-worker crawler: 52 requests in ~50 s (Table II).
        kwargs.setdefault("credentials", 8)
        kwargs.setdefault("parallelism", 2)
        super().__init__(world, clock, **kwargs)
        self._fake_threshold = fake_threshold
        self._criteria = TwitterauditCriteria(fake_threshold=fake_threshold)

    @property
    def frame_policy(self) -> str:
        """The sampling frame: the one newest 5000-id page."""
        return f"newest {TA_SAMPLE} followers (one id page)"

    def _analyze_steps(self, screen_name: str):
        """One newest-5000 page, scored on the three public criteria."""
        target, users, __ = yield from self._fetch_head_sample(
            screen_name,
            head=TA_SAMPLE,
            sample=TA_SAMPLE,
            with_timelines=False,
        )
        now = self._analysis_now()
        verdicts = self._classify_sample(users, None, now)
        counts = verdicts.counts()
        total = max(1, len(users))
        fake_pct = round(100.0 * counts["fake"] / total, 1)
        quality_sum = verdicts.extras["quality_sum"]
        return AnalysisOutcome(
            followers_count=target.followers_count,
            sample_size=len(users),
            fake_pct=fake_pct,
            genuine_pct=round(100.0 - fake_pct, 1),
            inactive_pct=None,
            details={
                # Data behind the three charts of a Twitteraudit report
                # (paper, Section II-C): the fake/not-sure/real verdict,
                # the per-follower "quality score", and the per-follower
                # "real points" on the 5-point scale.
                "verdict_counts": counts,
                "quality_histogram": verdicts.extras["quality_histogram"],
                "real_points_histogram":
                    verdicts.extras["real_points_histogram"],
                "mean_quality_score": quality_sum / total,
                "engine": self.info().as_dict(),
            },
        )
