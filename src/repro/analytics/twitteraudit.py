"""Twitteraudit (paper, Section II-C).

Online since 2012, run by two individuals (@davc and @grossnasty).
"Given each follower of an account, the application computes a score
based on i) the number of its tweets, ii) the date of the last tweet,
and iii) the ratio of followers to friends, taking a random sample of
5K Twitter followers."  How the score combines is undisclosed; the
output charts reveal the three criteria "can sum up to five" real
points per follower.

Distinctive observable behaviours reproduced here:

* it does **not** report inactive followers as a class (Table III's
  footnote) — dormant accounts simply score low and land in "fake";
* it is the only tool that displays the assessment date, which is how
  the paper caught it serving a result "evaluated 7 months ago" in 3
  seconds (Table II, @pinucciotwit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..api.endpoints import UserObject
from ..core.timeutil import DAY
from .base import AnalysisOutcome, CommercialAnalytic

#: "taking a random sample of 5K Twitter followers" — one API page,
#: which is necessarily the newest 5000.
TA_SAMPLE = 5000

#: Real-point scale maximum ("a maximum scale of 5").
TA_MAX_POINTS = 5.0


@dataclass(frozen=True)
class RealScore:
    """A follower's "real points" breakdown (the audit's third chart)."""

    tweets_points: float
    recency_points: float
    ratio_points: float

    @property
    def total(self) -> float:
        """Summed real points (0-5)."""
        return self.tweets_points + self.recency_points + self.ratio_points

    @property
    def quality(self) -> float:
        """The 0-1 "quality score" of the audit's second chart."""
        return self.total / TA_MAX_POINTS


def real_score(user: UserObject, now: float) -> RealScore:
    """Score one follower on the three published criteria (max 5).

    The breakpoints are undisclosed; these encode the obvious reading:
    an account that tweets, tweeted recently, and is followed at least
    as much as it follows, earns full points.
    """
    if user.statuses_count >= 50:
        tweets = 1.5
    elif user.statuses_count >= 5:
        tweets = 0.75
    else:
        tweets = 0.0
    age = user.last_status_age(now)
    if age is None:
        recency = 0.0
    elif age <= 30 * DAY:
        recency = 1.5
    elif age <= 180 * DAY:
        recency = 0.75
    else:
        recency = 0.0
    ratio = user.friends_followers_ratio()
    if ratio <= 1.0:
        ratio_points = 2.0
    elif ratio <= 5.0:
        ratio_points = 1.0
    else:
        ratio_points = 0.0
    return RealScore(tweets, recency, ratio_points)


class Twitteraudit(CommercialAnalytic):
    """The Twitteraudit checker: one 5000-id page, 3-criterion scoring."""

    name = "twitteraudit"
    reports_inactive = False

    def __init__(self, world, clock, *, fake_threshold: float = 2.5,
                 **kwargs) -> None:
        # A small two-worker crawler: 52 requests in ~50 s (Table II).
        kwargs.setdefault("credentials", 8)
        kwargs.setdefault("parallelism", 2)
        super().__init__(world, clock, **kwargs)
        self._fake_threshold = fake_threshold

    def _analyze_steps(self, screen_name: str):
        """One newest-5000 page, scored on the three public criteria."""
        target, users, __ = yield from self._fetch_head_sample(
            screen_name,
            head=TA_SAMPLE,
            sample=TA_SAMPLE,
            with_timelines=False,
        )
        now = self._analysis_now()
        fake = 0
        histogram: Dict[int, int] = {points: 0 for points in range(6)}
        quality_histogram: Dict[int, int] = {decile: 0 for decile in range(10)}
        verdicts = {"fake": 0, "not sure": 0, "real": 0}
        quality_sum = 0.0
        for user in users:
            score = real_score(user, now)
            histogram[min(5, int(score.total))] += 1
            quality_histogram[min(9, int(score.quality * 10))] += 1
            quality_sum += score.quality
            if score.total < self._fake_threshold:
                fake += 1
                verdicts["fake"] += 1
            elif score.total < self._fake_threshold + 1.0:
                verdicts["not sure"] += 1
            else:
                verdicts["real"] += 1
        total = max(1, len(users))
        fake_pct = round(100.0 * fake / total, 1)
        return AnalysisOutcome(
            followers_count=target.followers_count,
            sample_size=len(users),
            fake_pct=fake_pct,
            genuine_pct=round(100.0 - fake_pct, 1),
            inactive_pct=None,
            details={
                # Data behind the three charts of a Twitteraudit report
                # (paper, Section II-C): the fake/not-sure/real verdict,
                # the per-follower "quality score", and the per-follower
                # "real points" on the 5-point scale.
                "verdict_counts": verdicts,
                "quality_histogram": quality_histogram,
                "real_points_histogram": histogram,
                "mean_quality_score": quality_sum / total,
                "criteria": "tweets count / last tweet date / "
                            "followers-friends ratio (max 5 points)",
            },
        )
