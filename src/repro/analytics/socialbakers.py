"""Socialbakers "Fake Follower Check (BETA)" (paper, Section II-B).

Launched November 2012 by the Czech social-media analytics company.
Unusually, its criteria are published (and re-implemented verbatim in
:class:`repro.fc.rulesets.SocialbakersCriteria`); what remains
undisclosed are the point weights and the suspicion threshold.

Operationally the tool considers "up to 2000 followers per account",
declares "a small error margin of roughly 10-15%", and is limited to
ten audits per day per user — all reproduced here.  Because several of
its criteria are content rules (spam phrases, retweet/link ratios,
repeated tweets), it must fetch sampled followers' timelines; its
~10 s response times in Table II are therefore only possible with a
massively parallel crawler, which we model explicitly.

A structural consequence of its published flow — only accounts first
marked *suspicious* are ever tested for inactivity — is that its
"inactive" percentages sit far below FC's, and ordinary abandoned
accounts are reported as genuine.  Table III shows exactly that.
"""

from __future__ import annotations

from ..core.errors import QuotaExceededError
from ..core.timeutil import DAY
from ..fc.rulesets import SocialbakersCriteria
from .base import AnalysisOutcome, CommercialAnalytic, percentages

#: Followers considered per audit ("up to 2000 followers per account").
SB_SAMPLE = 2000
#: Free-tier usage limit ("can be used ten times a day").
SB_DAILY_QUOTA = 10


class SocialbakersFakeFollowerCheck(CommercialAnalytic):
    """The Fake Follower Check: newest-2000 frame, published criteria."""

    name = "socialbakers"
    reports_inactive = True

    def __init__(self, world, clock, *, threshold: float = 3.0,
                 daily_quota: int = SB_DAILY_QUOTA, **kwargs) -> None:
        # A fleet-scale crawler: 2000 profiles + 2000 timelines in ~8 s.
        kwargs.setdefault("credentials", 64)
        kwargs.setdefault("parallelism", 512)
        super().__init__(world, clock, **kwargs)
        self._criteria = SocialbakersCriteria(threshold=threshold)
        self._daily_quota = daily_quota
        self._quota_day: int = -1
        self._quota_used = 0

    @property
    def frame_policy(self) -> str:
        """The sampling frame: newest-2000 with timelines."""
        return f"newest {SB_SAMPLE} followers with timelines"

    def _admit(self, request) -> None:
        """Enforce the free tier's ten-per-day usage quota.

        Charged per admitted audit — batched, cached and coalesced
        requests all count, exactly as a click on the hosted app did.
        """
        day = int(self._clock.now() // DAY)
        if day != self._quota_day:
            self._quota_day = day
            self._quota_used = 0
        if self._quota_used >= self._daily_quota:
            raise QuotaExceededError(
                f"Socialbakers free tier allows {self._daily_quota} "
                f"checks per day")
        self._quota_used += 1

    def _analyze_steps(self, screen_name: str):
        """Newest-2000 frame with timelines, classified by the rules."""
        target, users, timelines = yield from self._fetch_head_sample(
            screen_name,
            head=SB_SAMPLE,
            sample=SB_SAMPLE,
            with_timelines=True,
        )
        now = self._analysis_now()
        assert timelines is not None
        tallies = self._classify_sample(users, timelines, now).counts()
        counts = {"fake": tallies["fake"], "inactive": tallies["inactive"],
                  "good": tallies["genuine"]}
        total = max(1, len(users))
        pct = percentages(counts, total)
        return AnalysisOutcome(
            followers_count=target.followers_count,
            sample_size=len(users),
            fake_pct=pct["fake"],
            genuine_pct=pct["good"],
            inactive_pct=pct["inactive"],
            details={
                "declared_error_margin": "10-15%",
                "engine": self.info().as_dict(),
                "inactivity_tested_on": "suspicious accounts only",
            },
        )
