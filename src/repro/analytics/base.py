"""Common machinery of the commercial fake-follower analytics.

Section II of the paper distils the workflow all three surveyed tools
share: resolve the target, collect a (head-of-list) batch of follower
names, sample within it, look up the sampled profiles, apply the tool's
proprietary criteria, and return fake/inactive/genuine percentages —
with aggressive *result caching*, which the response-time experiment
(Table II) exposes: cached audits answer in 2-5 s regardless of target
size.

:class:`CommercialAnalytic` implements that skeleton; each concrete
tool supplies its sampling configuration and its classification rules.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..api.client import TwitterApiClient
from ..api.crawler import Crawler
from ..api.endpoints import UserObject
from ..audit import AuditReport, AuditRequest, coerce_request, drain_steps
from ..core.clock import SimClock, Stopwatch
from ..core.errors import ConfigurationError, RetryableApiError
from ..core.rng import make_rng
from ..faults.plan import FaultPlan
from ..faults.retry import RetryPolicy
from ..obs.metrics import CacheInfo
from ..obs.runtime import get_observability
from ..twitter.population import World
from ..twitter.tweet import Tweet
from .criteria import (
    Criteria,
    EngineInfo,
    VerdictArray,
    build_sample_block,
    numpy_available,
)


@dataclass(frozen=True)
class AnalysisOutcome:
    """Raw output of one tool's analysis pass (before report assembly).

    ``completeness`` and ``errors_seen`` describe how cleanly the
    acquisition went (see :class:`~repro.audit.AuditReport`); subclass
    ``_analyze`` hooks leave them at their defaults and the audit
    wrapper fills them in from the client's fault accounting.
    """

    followers_count: int
    sample_size: int
    fake_pct: float
    genuine_pct: float
    inactive_pct: Optional[float]
    details: Dict[str, object] = field(default_factory=dict)
    completeness: float = 1.0
    errors_seen: int = 0


class ResultCache:
    """Audit-result cache with optional expiry and an optional bound.

    The surveyed tools never disclose their caching policy; what the
    paper *observes* is that repeat audits return in < 5 s and that
    Twitteraudit happily serves results "evaluated 7 months ago", so
    the default is an unbounded TTL.  Long batch runs can bound the
    memory with ``max_entries``: the least-recently-*used* entry is
    evicted first (a hit refreshes recency), and every eviction ticks
    the ``result_cache_evictions_total`` counter.
    """

    def __init__(self, ttl: Optional[float] = None,
                 name: str = "audit",
                 max_entries: Optional[int] = None) -> None:
        if ttl is not None and ttl <= 0:
            raise ConfigurationError(f"ttl must be positive: {ttl!r}")
        if max_entries is not None and max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1 or None: {max_entries!r}")
        self._ttl = ttl
        self._name = name
        self._max_entries = max_entries
        self._entries: "OrderedDict[str, Tuple[AnalysisOutcome, float]]" = \
            OrderedDict()
        #: Plain-int lookup tallies (the metric counters below are
        #: shared no-op singletons when observability is off, so
        #: ``cache_info()`` keeps its own counts).
        self.hits = 0
        self.misses = 0
        self.expired = 0
        #: Entries dropped by the LRU bound since construction.
        self.evictions = 0
        obs = get_observability()
        registry = obs.registry
        self._registry = registry
        obs.register_cache(self)
        help_text = "result-cache lookups by outcome"
        self._hits = registry.counter(
            "cache_events_total", help=help_text, cache=name, event="hit")
        self._misses = registry.counter(
            "cache_events_total", help=help_text, cache=name, event="miss")
        self._expirations = registry.counter(
            "cache_events_total", help=help_text, cache=name, event="expired")
        # The eviction counter is created lazily on the first eviction
        # so unbounded caches (the default) register no extra series
        # and existing metric exports stay byte-identical.
        self._evictions_counter = None

    def get(self, key: str, now: float) -> Optional[Tuple[AnalysisOutcome, float]]:
        """Return ``(outcome, computed_at)`` if cached and fresh."""
        normalized = key.lower()
        entry = self._entries.get(normalized)
        if entry is None:
            self.misses += 1
            self._misses.inc()
            return None
        __, computed_at = entry
        if self._ttl is not None and now - computed_at > self._ttl:
            del self._entries[normalized]
            self.expired += 1
            self._expirations.inc()
            return None
        self._entries.move_to_end(normalized)
        self.hits += 1
        self._hits.inc()
        return entry

    def put(self, key: str, outcome: AnalysisOutcome, computed_at: float) -> None:
        """Store an analysis outcome computed at ``computed_at``."""
        normalized = key.lower()
        self._entries[normalized] = (outcome, computed_at)
        self._entries.move_to_end(normalized)
        while (self._max_entries is not None
               and len(self._entries) > self._max_entries):
            self._entries.popitem(last=False)
            self.evictions += 1
            if self._evictions_counter is None:
                self._evictions_counter = self._registry.counter(
                    "result_cache_evictions_total",
                    help="entries dropped by the LRU bound",
                    cache=self._name)
            self._evictions_counter.inc()

    def size(self) -> int:
        """Live entry count (same as ``len()``, named for monitors)."""
        return len(self._entries)

    def cache_info(self) -> CacheInfo:
        """The uniform snapshot shape shared with the other caches.

        An expired lookup counts as a miss here — the caller did not
        get an answer — even though the metric series keeps hit /
        miss / expired as three separate outcomes.
        """
        return CacheInfo(name=self._name, hits=self.hits,
                         misses=self.misses + self.expired,
                         evictions=self.evictions,
                         size=len(self._entries))

    def __contains__(self, key: str) -> bool:
        return key.lower() in self._entries

    def __len__(self) -> int:
        return len(self._entries)


class CommercialAnalytic:
    """Skeleton of a closed-source fake-follower checking service.

    Parameters
    ----------
    world, clock:
        The simulated Twitter and the shared virtual clock.
    credentials, parallelism, request_latency:
        The tool's crawling infrastructure.  The paper's Table II
        response times imply very different fleets: StatusPeople runs a
        modest serial crawler, Twitteraudit a couple of workers,
        Socialbakers a massively parallel one.
    cache_serve_seconds:
        Simulated latency of answering from cache (the 2-5 s responses
        of Table II's repeat audits).
    processing_seconds:
        Fixed post-crawl computation time added to fresh analyses.
    batch:
        Columnar classification knob, mirroring the FC engine's:
        ``"auto"`` (default) and ``True`` classify through the
        criteria's NumPy mask pipeline when available, ``False`` forces
        the scalar per-user loop.  Verdicts are bit-identical either
        way — only the wall clock differs.
    provenance:
        Optional :class:`~repro.obs.provenance.ProvenanceCollector`.
        When set, every fresh classification records which criteria
        rules fired per account; the aggregate rides in
        ``details["provenance"]``.  Verdicts are unchanged.
    seed:
        Seed for the tool's internal sampling.
    """

    #: Tool identifier used in reports (subclasses override).
    name = "analytic"
    #: Whether the tool reports "inactive" as a separate class.
    reports_inactive = True

    def __init__(self, world: World, clock: SimClock, *,
                 credentials: int = 1,
                 parallelism: int = 1,
                 request_latency: float = 1.9,
                 cache_serve_seconds: float = 2.5,
                 processing_seconds: float = 1.0,
                 cache_ttl: Optional[float] = None,
                 cache_max_entries: Optional[int] = None,
                 faults: Optional[FaultPlan] = None,
                 retry: Optional[RetryPolicy] = None,
                 acquisition_cache=None,
                 batch: Union[bool, str] = "auto",
                 provenance=None,
                 seed: int = 99) -> None:
        if batch not in (True, False, "auto"):
            raise ConfigurationError(
                f"batch must be True, False or 'auto': {batch!r}")
        self._clock = clock
        self._client = TwitterApiClient(
            world, clock,
            credentials=credentials,
            parallelism=parallelism,
            request_latency=request_latency,
            faults=faults,
            retry=retry,
            acquisition_cache=acquisition_cache,
        )
        self._crawler = Crawler(self._client)
        self._cache = ResultCache(ttl=cache_ttl, name=self.name,
                                  max_entries=cache_max_entries)
        self._obs = get_observability()
        self._tracer = self._obs.tracer
        self._cache_serve_seconds = cache_serve_seconds
        self._processing_seconds = processing_seconds
        self._seed = seed
        self._audit_counter = 0
        self._last_completeness = 1.0
        self._active_request: Optional[AuditRequest] = None
        self._batch_mode = batch
        #: Raw verdict counts of the most recent classification; the
        #: delta auditor reads these to seed a watermark, since reports
        #: only carry rounded percentages.
        self.last_verdict_counts: Optional[Dict[str, int]] = None
        #: Optional :class:`~repro.obs.provenance.ProvenanceCollector`;
        #: when set, every fresh classification records per-rule fire
        #: masks (a pure observation — verdict bytes never change).
        self._provenance = provenance
        self._last_provenance = None
        self._obs.register_engine(self)
        #: The engine's classification criteria; concrete tools set
        #: this in their constructors (``None`` keeps legacy
        #: ``_analyze`` subclasses working without one).
        self._criteria: Optional[Criteria] = None

    @property
    def client(self) -> TwitterApiClient:
        """The tool's API client (exposes its call log and clock)."""
        return self._client

    @property
    def cache(self) -> ResultCache:
        """The tool's result cache."""
        return self._cache

    @property
    def criteria(self) -> Optional[Criteria]:
        """The engine's classification criteria (``None`` for legacy
        subclasses that classify inside ``_analyze`` directly)."""
        return self._criteria

    @property
    def frame_policy(self) -> str:
        """Human-readable description of the sampling frame."""
        return "head-of-list sample"

    def info(self) -> EngineInfo:
        """The uniform engine metadata block (see :class:`EngineInfo`)."""
        criteria = self._criteria
        return EngineInfo(
            name=self.name,
            frame_policy=self.frame_policy,
            criteria_id=criteria.name if criteria is not None else "custom",
            reports_inactive=self.reports_inactive,
            batch_capable=bool(criteria is not None
                               and criteria.batch_capable),
        )

    def batch_active(self) -> bool:
        """Whether classifications run on the columnar mask pipeline."""
        return (self._batch_mode is not False
                and self._criteria is not None
                and self._criteria.batch_capable
                and numpy_available())

    # -- public API -----------------------------------------------------------

    def audit(self, request: AuditRequest) -> AuditReport:
        """Audit a target, serving from cache when possible.

        Takes an :class:`~repro.audit.AuditRequest` (the unified entry
        point; the legacy string form was removed).  The returned
        report's ``response_seconds`` is simulated wall time as an end
        user would experience it, which is how Table II was measured.
        This blocking form simply drains :meth:`begin_audit`'s step
        chain on the engine's own clock.
        """
        request = coerce_request(request, engine_name=self.name)
        self._admit(request)
        with self._tracer.span("audit", self._clock, tool=self.name,
                               target=request.target) as span:
            report = drain_steps(self._audit_steps(request))
            span.set_attribute("cached", report.cached)
            span.set_attribute("fake_pct", report.fake_pct)
            span.set_attribute("genuine_pct", report.genuine_pct)
            if report.completeness < 1.0:
                span.set_attribute("completeness", report.completeness)
            return report

    def begin_audit(self, request: AuditRequest):
        """Start a resumable audit: a generator over acquisition phases.

        Each ``next()`` advances one phase (profile resolution, frame
        paging, sample lookup, timelines, classification) and the
        generator *returns* the finished :class:`AuditReport`.  No
        ``audit`` span is opened here — a span held across interleaved
        steps of many engines would corrupt the tracer's nesting; the
        batch scheduler records per-request timing in its own report.
        """
        request = coerce_request(request, engine_name=self.name)
        self._admit(request)
        return self._audit_steps(request)

    def prewarm(self, screen_names: Sequence[str]) -> None:
        """Analyse targets ahead of user requests, populating the cache.

        Reproduces the behaviour the paper caught StatusPeople at: the
        reports of three popular accounts "were displayed after 2
        seconds only (without mentioning if the analysis had been
        performed in advance)".
        """
        for screen_name in screen_names:
            if screen_name not in self._cache:
                with self._tracer.span("audit.prewarm", self._clock,
                                       tool=self.name, target=screen_name):
                    outcome = drain_steps(self._fresh_outcome_steps(
                        AuditRequest(target=screen_name, engine=self.name)))
                    if outcome.completeness > 0.0:
                        self._cache.put(screen_name, outcome,
                                        self._clock.now())

    # -- subclass hooks ---------------------------------------------------------

    def _admit(self, request: AuditRequest) -> None:
        """Admission hook run before any audit work (quota checks)."""

    def _analyze(self, screen_name: str) -> AnalysisOutcome:
        """Run a fresh analysis, charging all API costs to the clock."""
        raise NotImplementedError

    def _analyze_steps(self, screen_name: str):
        """Generator hook: the analysis split at acquisition phases.

        The bundled tools override this with ``yield from
        self._fetch_head_sample(...)``; the default delegates to the
        legacy one-shot :meth:`_analyze` so external subclasses that
        never heard of resumable audits keep working unchanged.
        """
        return self._analyze(screen_name)
        yield  # pragma: no cover - marks this function as a generator

    # -- the resumable audit pipeline -------------------------------------------

    def _audit_steps(self, request: AuditRequest):
        """The audit state machine: cache check, acquisition, report."""
        self._client.pin_observation(request.as_of)
        stopwatch = Stopwatch(self._clock)
        cached = None if request.force_refresh else self._cache.get(
            request.target, self._clock.now())
        if cached is not None:
            outcome, computed_at = cached
            with self._tracer.span("audit.cache_serve", self._clock,
                                   tool=self.name, target=request.target):
                self._clock.advance(self._cache_serve_seconds)
            return self._report(request.target, outcome,
                                stopwatch.elapsed(), cached=True,
                                assessed_at=computed_at)
        self._client.reset_budgets()
        outcome = yield from self._fresh_outcome_steps(request)
        with self._tracer.span("audit.classify", self._clock,
                               tool=self.name, target=request.target):
            self._clock.advance(self._processing_seconds)
        computed_at = self._clock.now()
        if outcome.completeness > 0.0:
            # A fully failed audit is never cached: the tool retries
            # from scratch on the next request instead of serving an
            # empty result forever.
            self._cache.put(request.target, outcome, computed_at)
        return self._report(request.target, outcome,
                            stopwatch.elapsed(), cached=False,
                            assessed_at=computed_at)

    def _fresh_outcome_steps(self, request: AuditRequest):
        """Run ``_analyze_steps`` with completeness/fault accounting.

        An acquisition failure that survives the retry layer degrades to
        an empty outcome (``completeness == 0.0``) instead of raising —
        the surveyed services show an apologetic banner, not a stack
        trace.
        """
        faults_before = self._client.faults_seen
        self._last_completeness = 1.0
        self._last_provenance = None
        self._active_request = request
        try:
            outcome = yield from self._analyze_steps(request.target)
            completeness = self._last_completeness
        except RetryableApiError as error:
            outcome = AnalysisOutcome(
                followers_count=0,
                sample_size=0,
                fake_pct=0.0,
                genuine_pct=0.0,
                inactive_pct=0.0 if self.reports_inactive else None,
                details={"degraded": type(error).__name__},
            )
            completeness = 0.0
        finally:
            self._active_request = None
        details = outcome.details
        if self._last_provenance is not None:
            details = dict(details)
            details["provenance"] = self._last_provenance.stats.as_dict()
        return replace(
            outcome,
            details=details,
            completeness=completeness,
            errors_seen=self._client.faults_seen - faults_before,
        )

    # -- helpers ------------------------------------------------------------------

    def _analysis_now(self) -> float:
        """The instant classification rules evaluate ages against.

        The client's pinned observation instant when a scheduler set
        one (so batched and serial audits classify identically), the
        live clock otherwise.
        """
        pinned = self._client.observed_at
        return pinned if pinned is not None else self._clock.now()

    def _classify_sample(self, users, timelines, now: float) -> VerdictArray:
        """Classify one sample through the criteria's best path.

        The single code path shared by all the rule-based engines:
        under ``batch=True``/``"auto"`` the sample is packed into a
        :class:`~repro.analytics.criteria.SampleBlock` and classified
        by the criteria's columnar mask pipeline; ``batch=False``, a
        NumPy-less host, or criteria without a columnar path all fall
        back to the scalar per-user loop.  Verdicts are bit-identical
        across paths by contract.
        """
        criteria = self._criteria
        if criteria is None:
            raise ConfigurationError(
                f"engine {self.name!r} defines no criteria; override "
                f"_analyze_steps or set self._criteria")
        sink = None
        if self._provenance is not None and criteria.rule_ids:
            from ..obs.provenance import ProvenanceSink  # deferred: cycle
            sink = ProvenanceSink()
        verdicts = None
        if self._batch_mode is not False and criteria.batch_capable:
            block = build_sample_block(users, timelines)
            if block is not None:
                verdicts = criteria.classify_block(block, now, sink=sink)
        if verdicts is None:
            verdicts = criteria.classify_all(users, timelines, now,
                                             sink=sink)
        if sink is not None:
            request = self._active_request
            target = request.target if request is not None else ""
            self._last_provenance = self._provenance.record(
                self.name, target, verdicts, sink,
                _sample_user_ids(users), now)
        self.last_verdict_counts = dict(verdicts.counts())
        if self._obs.enabled:
            self._obs.note_verdicts(self.name, verdicts.counts())
        return verdicts

    def classify_sample(self, users, timelines, now: float) -> VerdictArray:
        """Classify an ad-hoc sample through the engine's verdict path.

        Public entry point for the delta auditor: identical to the
        classification phase of a full audit (columnar masks under
        ``batch``, scalar fallback otherwise), with the raw counts
        recorded in :attr:`last_verdict_counts`; only acquisition is
        the caller's business.
        """
        return self._classify_sample(users, timelines, now)

    def _sampling_rng(self):
        """A fresh, deterministic RNG per analysis run.

        An :class:`AuditRequest` carrying an explicit ``audit_index``
        pins the stream (schedulers use this to replicate a serial
        run's sampling exactly); otherwise the engine's own audit
        counter advances.
        """
        request = self._active_request
        if request is not None and request.audit_index is not None:
            return make_rng(self._seed, self.name, request.audit_index)
        self._audit_counter += 1
        return make_rng(self._seed, self.name, self._audit_counter)

    def _fetch_head_sample(
            self, screen_name: str, *,
            head: int, sample: int,
            with_timelines: bool = False,
    ):
        """The shared acquisition pattern of all three tools.

        Fetch the target profile, pull up to ``head`` follower ids from
        the head of the (newest-first) listing, randomly sample
        ``sample`` of them, and look the sample up — optionally with one
        timeline page each.  This is exactly the biased scheme of
        Section II-D: random *within* the head, but the head is the
        frame.

        A generator: it yields between acquisition phases (so the batch
        scheduler can interleave many audits across rate-limit windows)
        and *returns* ``(target, users, timelines)`` — consume it with
        ``yield from`` inside ``_analyze_steps``.
        """
        target = self._client.users_show(screen_name=screen_name)
        yield
        head_ids = self._crawler.fetch_newest_follower_ids(
            screen_name, max_ids=head)
        yield
        rng = self._sampling_rng()
        if sample < len(head_ids):
            sampled_ids = rng.sample(head_ids, sample)
        else:
            sampled_ids = list(head_ids)
        if self.batch_active():
            # Columnar classification ahead: ask for the sample as a
            # row block so a columnar world can skip per-user object
            # construction entirely.  Falls back to the object list on
            # object worlds and cached acquisitions; either shape
            # classifies identically.
            users = self._crawler.lookup_users_block(sampled_ids)
        else:
            users = self._crawler.lookup_users(sampled_ids)
        # Completeness = frame completeness x sample completeness: how
        # much of the intended head frame was paged in, times how much
        # of the intended within-frame sample actually resolved.
        expected_frame = min(head, target.followers_count)
        frame_part = (min(1.0, len(head_ids) / expected_frame)
                      if expected_frame > 0 else 1.0)
        expected_sample = min(sample, len(head_ids))
        sample_part = (min(1.0, len(users) / expected_sample)
                       if expected_sample > 0 else 1.0)
        self._last_completeness = frame_part * sample_part
        timelines: Optional[List[List[Tweet]]] = None
        if with_timelines:
            yield
            ids_of = getattr(users, "user_ids", None)
            sample_user_ids = (ids_of() if ids_of is not None
                               else [user.user_id for user in users])
            by_id = self._crawler.fetch_timelines(
                sample_user_ids, per_user=200)
            timelines = [by_id[uid] for uid in sample_user_ids]
            if users:
                # Degraded-to-empty timelines silently bias activity
                # rules, so they count against completeness too.
                self._last_completeness *= (
                    1.0 - self._crawler.last_timeline_shortfall / len(users))
        return target, users, timelines

    def _report(self, screen_name: str, outcome: AnalysisOutcome,
                response_seconds: float, *, cached: bool,
                assessed_at: float) -> AuditReport:
        live = self._obs.live
        if live is not None:
            live.on_audit(self.name, assessed_at, cached=cached,
                          completeness=outcome.completeness)
        return AuditReport(
            tool=self.name,
            target=screen_name,
            followers_count=outcome.followers_count,
            sample_size=outcome.sample_size,
            fake_pct=outcome.fake_pct,
            genuine_pct=outcome.genuine_pct,
            inactive_pct=outcome.inactive_pct if self.reports_inactive else None,
            response_seconds=response_seconds,
            cached=cached,
            assessed_at=assessed_at,
            completeness=outcome.completeness,
            errors_seen=outcome.errors_seen,
            details=dict(outcome.details),
        )


def _sample_user_ids(users) -> List[int]:
    """The user ids of a classified sample, in classification order.

    Handles both sample shapes the engines feed the criteria: a
    columnar :class:`~repro.twitter.columnar.schema.UserRowBlock`
    (exposing ``user_ids()``) and a plain sequence of
    :class:`~repro.api.endpoints.UserObject`.
    """
    ids_of = getattr(users, "user_ids", None)
    if callable(ids_of):
        return [int(uid) for uid in ids_of()]
    return [int(user.user_id) for user in users]


def percentages(counts: Dict[str, int], total: int) -> Dict[str, float]:
    """Convert class counts to percentages summing to exactly 100.

    Uses largest-remainder rounding on one decimal so reports always
    satisfy the :class:`AuditReport` sum invariant.
    """
    if total <= 0:
        raise ConfigurationError("total must be positive")
    raw = {key: 100.0 * value / total for key, value in counts.items()}
    floored = {key: round(value, 1) for key, value in raw.items()}
    deficit = round(100.0 - sum(floored.values()), 1)
    if abs(deficit) >= 0.05 and floored:
        largest = max(raw, key=lambda key: raw[key])
        floored[largest] = round(floored[largest] + deficit, 1)
    return floored
