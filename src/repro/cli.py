"""Command-line interface: run any of the paper's experiments.

Examples
--------
::

    repro table1                 # API rate limits (Table I)
    repro ordering --days 5      # follower-list ordering (Sec. IV-B)
    repro table2                 # response times (Table II)
    repro table3                 # analysis results (Table III)
    repro acquisition            # Obama-scale crawl-time model
    repro burst                  # 100K genuine + 10K bought demo
    repro deepdive               # Fakers vs Deep Dive
    repro samplesize             # n = 9604 arithmetic + coverage
    repro tacharts               # the three Twitteraudit report charts
    repro explain RobDWaller     # rule-level verdict provenance
    repro monitor                # growth monitoring / burst detection
    repro monitor --ticks 200 --dashboard   # live fleet telemetry
    repro stats trace.jsonl      # digest a (possibly mid-run) trace
    repro chaos --faults bursty  # engine robustness under API faults
    repro run chaos              # alias form: run <experiment>
    repro all                    # everything, one report

Any experiment accepts ``--faults SCENARIO`` (plus ``--fault-seed``) to
rerun it under deterministic injected API failures; see docs/faults.md.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Optional, Sequence

from .audit import ENGINE_NAMES, AuditRequest
from .core.clock import SimClock
from .core.errors import ConfigurationError
from .core.timeutil import DAY, PAPER_EPOCH, isoformat
from .sched import BatchAuditScheduler
from .experiments import (
    ascii_bar_chart,
    average_accounts,
    build_paper_world,
    run_acquisition_experiment,
    run_all,
    run_deepdive_comparison,
    run_detection_latency,
    run_ordering_experiment,
    run_purchased_burst_demo,
    run_response_time_experiment,
    run_sample_size_experiment,
    run_ta_charts,
    run_table1,
    run_table3,
    validate_world,
)
from .experiments import run_chaos_experiment
from .experiments.monitor_fleet import FleetSpec, run_monitor_fleet
from .experiments.testbed import AVERAGE
from .faults import named_plan
from .faults.plan import SCENARIOS
from .growth import GrowthMonitor
from .obs import (
    activate,
    console_summary,
    deactivate,
    load_trace_jsonl,
    snapshot_to_json,
    stats_line,
    write_metrics_prom,
    write_trace_jsonl,
)
from .twitter.generator import add_simple_target, build_world


def _run_monitor_demo(*, seed: int, days: int) -> str:
    """Watch a clean and a burst-buying account for ``days`` days."""
    world = build_world(seed=seed)
    add_simple_target(world, "organic", 60_000, 0.3, 0.05, 0.65,
                      daily_new_followers=120)
    add_simple_target(world, "buyer", 60_000, 0.25, 0.18, 0.57,
                      fake_burst_fraction=0.85, fake_burst_position=0.995,
                      created_years_before=1.0, daily_new_followers=120)
    sections = []
    for handle in ("organic", "buyer"):
        clock = SimClock(PAPER_EPOCH - days * DAY)
        report = GrowthMonitor(world, clock).watch(handle, days=days)
        chart = ascii_bar_chart(
            [(f"day {day:2d}", float(count))
             for day, count in enumerate(report.series.arrivals)],
            title=f"@{handle}: new followers per day",
        )
        if report.suspicious:
            event = report.bursts[0]
            verdict = (f"ALERT: burst on {isoformat(event.start_time)[:10]} "
                       f"(z = {event.z_score:.1f}); estimated purchased "
                       f"block ~{report.purchased_estimate}")
        else:
            verdict = "no anomaly detected"
        sections.append(chart + "\n" + verdict)
    return "\n\n".join(sections)


def _run_monitor_fleet(args, seed: int) -> str:
    """The fleet mode of ``repro monitor`` (``--ticks`` given)."""
    spec = FleetSpec(
        seed=seed,
        accounts=args.accounts,
        ticks=args.ticks,
        slo_objective=args.slo,
        serial=getattr(args, "serial", False),
        provenance=getattr(args, "provenance", False),
        columnar=getattr(args, "columnar", False),
        delta=getattr(args, "delta", False),
        reaudit_every=getattr(args, "reaudit_every", 0) or 0,
    )
    result = run_monitor_fleet(spec)
    lines = []
    if args.dashboard:
        cadence = max(1, args.cadence)
        shown = [frame for index, frame in enumerate(result.frames)
                 if index % cadence == 0 or index == len(result.frames) - 1]
        lines.extend("\n".join(shown).splitlines())
        lines.append("")
    lines.append(result.summary())
    if args.alerts_out:
        result.alerts.write(args.alerts_out)
        lines.append(f"alert log written to {args.alerts_out}")
    if args.snapshots_out:
        with open(args.snapshots_out, "w", encoding="utf-8") as handle:
            for snapshot in result.snapshots:
                handle.write(snapshot_to_json(snapshot) + "\n")
        lines.append(f"snapshots written to {args.snapshots_out}")
    return "\n".join(lines)


def _run_stats(args) -> str:
    """The ``stats`` subcommand: digest one or more trace dumps."""
    sections = []
    for path in args.files:
        spans, truncated = load_trace_jsonl(path)
        by_name = {}
        for span in spans:
            name = str(span.get("name", "?"))
            count, seconds = by_name.get(name, (0, 0.0))
            by_name[name] = (count + 1,
                             seconds + float(span.get("duration") or 0.0))
        total = sum(float(span.get("duration") or 0.0) for span in spans)
        lines = [f"{path}: {len(spans)} spans, {total:.1f}s total"
                 + (" (truncated final line dropped)" if truncated else "")]
        for name in sorted(by_name):
            count, seconds = by_name[name]
            lines.append(f"  {name:<24} n={count:<6} {seconds:10.1f}s")
        sections.append("\n".join(lines))
    return "\n\n".join(sections)


def _add_obs_flags(parser: argparse.ArgumentParser, *,
                   suppress: bool = False) -> None:
    """Attach ``--trace-out`` / ``--metrics-out`` to a parser.

    The flags live on the top-level parser *and* on every subparser so
    they are accepted on either side of the subcommand; subparsers use
    ``SUPPRESS`` defaults so they never clobber a value parsed earlier.
    """
    default = argparse.SUPPRESS if suppress else None
    parser.add_argument("--trace-out", metavar="FILE.jsonl", default=default,
                        help="record sim-clock spans and write them as "
                             "JSON lines (enables observability)")
    parser.add_argument("--metrics-out", metavar="FILE.prom", default=default,
                        help="write Prometheus-style metrics of the run "
                             "(enables observability)")


def _add_serial_flag(parser: argparse.ArgumentParser) -> None:
    """Attach ``--serial``: fall back to the legacy one-at-a-time loop."""
    parser.add_argument("--serial", action="store_true",
                        help="run audits one at a time (the paper's serial "
                             "methodology) instead of the batch scheduler")


def _add_fault_flags(parser: argparse.ArgumentParser, *,
                     suppress: bool = False) -> None:
    """Attach ``--faults`` / ``--fault-seed``; same placement rules as
    the observability flags."""
    parser.add_argument("--faults", metavar="SCENARIO",
                        choices=sorted(SCENARIOS),
                        default=argparse.SUPPRESS if suppress else None,
                        help="inject deterministic API faults from a named "
                             f"scenario ({', '.join(sorted(SCENARIOS))})")
    parser.add_argument("--fault-seed", type=int, metavar="N",
                        default=argparse.SUPPRESS if suppress else 7,
                        help="seed of the fault plan's random stream "
                             "(default: 7)")


def _fault_plan(args):
    """The :class:`FaultPlan` selected on the command line, or ``None``."""
    name = getattr(args, "faults", None)
    if not name:
        return None
    return named_plan(name, seed=args.fault_seed)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A Criticism to Society (as seen by "
                    "Twitter analytics)' - experiment runner",
    )
    parser.add_argument("--seed", type=int, default=42,
                        help="master seed (default: 42)")
    _add_obs_flags(parser)
    _add_fault_flags(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table I: API types and rate limits")

    ordering = sub.add_parser(
        "ordering", help="Section IV-B: follower-list ordering")
    ordering.add_argument("--days", type=int, default=5,
                          help="daily snapshots to take (default: 5)")

    table2 = sub.add_parser("table2", help="Table II: response times")
    _add_serial_flag(table2)
    table3 = sub.add_parser("table3", help="Table III: analysis results")
    table3.add_argument("--explain", action="store_true",
                        help="record rule-level provenance and append "
                             "per-account rule tables plus cross-engine "
                             "disagreement drill-downs")
    _add_serial_flag(table3)

    explain = sub.add_parser(
        "explain",
        help="audit one testbed account with all engines and attribute "
             "every verdict and cross-engine disagreement to named "
             "criteria rules")
    explain.add_argument("handle", metavar="HANDLE",
                         help="a Table III testbed handle "
                              "(e.g. RobDWaller)")
    explain.add_argument("--engines", nargs="+", metavar="ENGINE",
                         choices=list(ENGINE_NAMES), default=None,
                         help="engines to compare (default: all four)")
    explain.add_argument("--max-followers", type=int, default=2_000,
                         metavar="N",
                         help="follower materialisation cap for the world "
                              "(default: 2000 — rule attribution needs no "
                              "mega-scale frame)")

    batch = sub.add_parser(
        "batch-audit",
        help="audit many targets x many engines through the rate-limit-"
             "aware scheduler (repro.sched)")
    batch.add_argument("--targets", nargs="+", metavar="HANDLE",
                       default=None,
                       help="handles to audit (default: the Table III "
                            "twenty-account testbed)")
    batch.add_argument("--engines", nargs="+", metavar="ENGINE",
                       choices=list(ENGINE_NAMES), default=None,
                       help="engine lanes to run (default: all four)")
    batch.add_argument("--slots", type=int, default=2, metavar="K",
                       help="crawler instances per engine lane "
                            "(default: 2)")
    batch.add_argument("--max-followers", type=int, default=20_000,
                       metavar="N",
                       help="follower materialisation cap for the world "
                            "(default: 20000)")
    batch.add_argument("--compare-serial", action="store_true",
                       help="also run the serial baseline and print the "
                            "makespan speedup")
    batch.add_argument("--json-out", metavar="FILE.json", default=None,
                       help="write the deterministic batch report JSON")
    _add_serial_flag(batch)

    sub.add_parser("acquisition", help="whole-base acquisition time model")
    sub.add_parser("burst", help="purchased-fakes head-bias demo (Sec II-D)")
    sub.add_parser("deepdive", help="Fakers vs Deep Dive comparison")
    latency = sub.add_parser(
        "latency", help="detection latency vs purchase size, with the "
                        "delta-vs-full investigation bill")
    latency.add_argument("--quantities", type=int, nargs="+", default=None,
                         metavar="N",
                         help="purchased block sizes to sweep "
                              "(default: 40 500 4000 20000)")
    samplesize = sub.add_parser(
        "samplesize", help="sample-size arithmetic and empirical coverage")
    samplesize.add_argument("--trials", type=int, default=100)

    sub.add_parser("tacharts",
                   help="the three charts of a Twitteraudit report")

    monitor = sub.add_parser(
        "monitor", help="daily growth monitoring with burst detection; "
                        "--ticks switches to the live-telemetry fleet")
    monitor.add_argument("--days", type=int, default=21,
                         help="days of daily polling in the two-account "
                              "demo (default: 21)")
    monitor.add_argument("--ticks", type=int, default=None, metavar="N",
                         help="run the multi-account fleet with streaming "
                              "telemetry for N simulated days instead of "
                              "the demo")
    monitor.add_argument("--accounts", type=int, default=3, metavar="K",
                         help="fleet size in fleet mode (default: 3)")
    monitor.add_argument("--slo", type=float, default=0.98,
                         metavar="OBJECTIVE",
                         help="poll-success SLO objective in fleet mode "
                              "(default: 0.98)")
    monitor.add_argument("--dashboard", action="store_true",
                         help="print fleet-health dashboard frames")
    monitor.add_argument("--cadence", type=int, default=50, metavar="N",
                         help="with --dashboard, print every Nth frame "
                              "(default: 50)")
    monitor.add_argument("--alerts-out", metavar="FILE.jsonl", default=None,
                         help="write the fleet's alert log as JSON lines")
    monitor.add_argument("--snapshots-out", metavar="FILE.jsonl",
                         default=None,
                         help="write every dashboard snapshot as JSON lines")
    monitor.add_argument("--provenance", action="store_true",
                         help="in fleet mode, record rule-level provenance "
                              "on alert-triggered audits and add rule-drift "
                              "panels to the dashboard")
    monitor.add_argument("--columnar", action="store_true",
                         help="in fleet mode, run the fleet on the lazy "
                              "columnar substrate with batched "
                              "users/lookup polling (required for "
                              "thousand-account fleets)")
    monitor.add_argument("--delta", action="store_true",
                         help="in fleet mode, audit alerted accounts with "
                              "watermarked delta re-audits instead of full "
                              "audits")
    monitor.add_argument("--reaudit-every", type=int, default=0,
                         metavar="N", dest="reaudit_every",
                         help="in fleet mode, re-audit every previously "
                              "alerted handle every N ticks (default: 0, "
                              "never)")
    _add_serial_flag(monitor)

    stats = sub.add_parser(
        "stats", help="digest trace JSONL files (tolerates the truncated "
                      "final line of a file copied mid-run)")
    stats.add_argument("files", nargs="+", metavar="FILE.jsonl",
                       help="trace dumps written by --trace-out")

    validate = sub.add_parser(
        "validate", help="self-validate the paper testbed's generators")
    validate.add_argument("--sample", type=int, default=1500,
                          help="followers sampled per target (default: 1500)")

    chaos = sub.add_parser(
        "chaos", help="engine robustness sweep under injected API faults")
    chaos.add_argument("--levels", type=float, nargs="+", metavar="X",
                       default=None,
                       help="fault intensity multipliers; the first must "
                            "be 0 (baseline).  Default: 0 0.5 1 2")
    _add_serial_flag(chaos)

    everything = sub.add_parser("all", help="run the full suite (E1-E8)")
    everything.add_argument("--days", type=int, default=5)
    everything.add_argument("--trials", type=int, default=100)

    perf = sub.add_parser(
        "perf",
        help="record or diff the canonical perf baseline "
             "(BENCH_perf.json); 'diff' exits non-zero on a regression")
    perf.add_argument("action", choices=("record", "diff"),
                      help="record: run the workload and write the "
                           "baseline; diff: compare against one")
    perf.add_argument("baseline", nargs="?", default=None,
                      metavar="BASELINE.json",
                      help="baseline artifact to diff against "
                           "(required by 'diff')")
    perf.add_argument("--out", metavar="FILE.json",
                      default="BENCH_perf.json",
                      help="where 'record' writes the artifact "
                           "(default: BENCH_perf.json)")
    perf.add_argument("--current", metavar="FILE.json", default=None,
                      help="diff this pre-recorded artifact instead of "
                           "re-running the baseline's workload")
    perf.add_argument("--targets", nargs="+", metavar="HANDLE", default=None,
                      help="testbed handles to audit (default: all twenty)")
    perf.add_argument("--slots", type=int, default=2, metavar="K",
                      help="crawler instances per engine lane (default: 2)")
    perf.add_argument("--max-followers", type=int, default=20_000,
                      metavar="N",
                      help="follower materialisation cap (default: 20000)")
    perf.add_argument("--timeline", action="store_true",
                      help="also print the ASCII lane timeline")
    perf.add_argument("--makespan-tol-pct", type=float, default=5.0,
                      metavar="PCT",
                      help="allowed makespan drift (default: 5%%)")
    perf.add_argument("--phase-tol-pct", type=float, default=10.0,
                      metavar="PCT",
                      help="allowed per-phase drift (default: 10%%)")
    perf.add_argument("--counter-tol-pct", type=float, default=10.0,
                      metavar="PCT",
                      help="allowed counter drift (default: 10%%)")
    perf.add_argument("--ratio-tol", type=float, default=0.05,
                      metavar="X",
                      help="allowed absolute hit-ratio drift "
                           "(default: 0.05)")
    perf.add_argument("--wallclock", action="store_true",
                      help="also measure real FC classification time "
                           "(machine-local; diff skips it when only one "
                           "side has it)")
    perf.add_argument("--wallclock-tol-pct", type=float, default=200.0,
                      metavar="PCT",
                      help="allowed wallclock drift (default: 200%%)")
    perf.add_argument("--substrate", action="store_true",
                      help="also measure the columnar substrate: chunk "
                           "telemetry counters plus column page latency "
                           "(diff skips it when only one side has it)")
    perf.add_argument("--delta", action="store_true",
                      help="also measure watermarked delta re-audits: "
                           "API-call and makespan bills of a fleet "
                           "re-audit sweep vs full audits (diff skips "
                           "it when only one side has it)")

    runner = sub.add_parser(
        "run", help="run one experiment by name (e.g. 'repro run chaos')")
    runner.add_argument("experiment",
                        choices=[name for name in sub.choices
                                 if name not in
                                 ("run", "perf", "stats", "explain")],
                        help="the experiment to run")
    _add_serial_flag(runner)
    # Knobs that normally live on individual subparsers, with their
    # defaults, so `repro run <experiment>` dispatches cleanly.
    runner.set_defaults(days=5, trials=100, sample=1500, levels=None,
                        targets=None, engines=None, slots=2,
                        max_followers=20_000, compare_serial=False,
                        json_out=None, ticks=None, accounts=3, slo=0.98,
                        dashboard=False, cadence=50, alerts_out=None,
                        snapshots_out=None, explain=False, provenance=False)

    for subparser in sub.choices.values():
        _add_obs_flags(subparser, suppress=True)
        _add_fault_flags(subparser, suppress=True)
    return parser


def _check_writable(parser: argparse.ArgumentParser, path: str,
                    flag: str) -> None:
    """Fail fast on an unwritable output path, before the run starts."""
    parent = pathlib.Path(path).parent
    if not parent.is_dir():
        parser.error(f"{flag}: directory does not exist: {parent}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    seed = args.seed

    if args.trace_out:
        _check_writable(parser, args.trace_out, "--trace-out")
    if args.metrics_out:
        _check_writable(parser, args.metrics_out, "--metrics-out")
    obs = None
    if args.trace_out or args.metrics_out:
        obs = activate()
    exit_code = 0
    try:
        rendered = _dispatch(args, seed)
        if isinstance(rendered, tuple):
            rendered, exit_code = rendered
        print(rendered)
        if obs is not None:
            if args.command == "all":
                # `repro stats`: spans, metric series and per-resource
                # API usage of the whole suite (ends with the one-line
                # digest).
                print()
                print(console_summary(obs))
            else:
                print()
                print(stats_line(obs))
            if args.trace_out:
                write_trace_jsonl(obs.tracer, args.trace_out)
            if args.metrics_out:
                write_metrics_prom(obs, args.metrics_out)
    finally:
        if obs is not None:
            deactivate()
    return exit_code


def _mode(args) -> str:
    """The experiment execution mode selected on the command line."""
    return "serial" if getattr(args, "serial", False) else "batch"


def _run_batch_audit(args, seed: int) -> str:
    """The ``batch-audit`` subcommand: schedule a testbed batch."""
    from .experiments.testbed import PAPER_ACCOUNTS, PAPER_ACCOUNTS_BY_HANDLE
    handles = args.targets or [a.handle for a in PAPER_ACCOUNTS]
    unknown = [h for h in handles if h not in PAPER_ACCOUNTS_BY_HANDLE]
    if unknown:
        raise ConfigurationError(
            f"unknown testbed handles: {unknown!r}; choose from "
            f"{sorted(PAPER_ACCOUNTS_BY_HANDLE)}")
    accounts = [PAPER_ACCOUNTS_BY_HANDLE[h] for h in handles]
    tiers = tuple(sorted({a.tier for a in accounts}))
    engines = tuple(args.engines) if args.engines else None
    faults = _fault_plan(args)

    def run_once(serial: bool):
        world = build_paper_world(seed, SimClock().now(), tiers=tiers,
                                  max_followers=args.max_followers)
        clock = SimClock(world.ref_time)
        scheduler = BatchAuditScheduler(
            world, clock, engines=engines, lane_slots=args.slots,
            seed=seed, faults=faults, serial=serial)
        scheduler.submit_batch([AuditRequest(target=h) for h in handles])
        return scheduler.run()

    batch = run_once(serial=args.serial)
    lines = [batch.render()]
    if args.compare_serial and not args.serial:
        baseline = run_once(serial=True)
        speedup = (baseline.makespan_seconds / batch.makespan_seconds
                   if batch.makespan_seconds else float("inf"))
        lines.append("")
        lines.append(
            f"serial baseline makespan: {baseline.makespan_seconds:.0f} s "
            f"-> scheduled makespan: {batch.makespan_seconds:.0f} s "
            f"({speedup:.2f}x speedup)")
    if args.json_out:
        pathlib.Path(args.json_out).write_text(batch.to_json() + "\n",
                                               encoding="utf-8")
        lines.append(f"batch report written to {args.json_out}")
    return "\n".join(lines)


def _run_perf(args, seed: int):
    """The ``perf`` subcommand; returns ``(rendered, exit_code)``.

    ``record`` runs the canonical workload and writes the byte-stable
    baseline; ``diff`` re-runs the workload the baseline recorded (or
    loads ``--current``) and exits 1 on any tolerance breach.
    """
    from .experiments.perf import default_workload, run_perf_workload
    from .obs import (
        PerfTolerances,
        diff_perf,
        load_perf_json,
        render_critical_path,
        render_lane_timeline,
        render_perf_diff,
        render_phase_attribution,
        write_perf_json,
    )
    if args.action == "record":
        workload = default_workload(
            seed=seed, targets=args.targets, lane_slots=args.slots,
            max_followers=args.max_followers)
        doc, obs, __ = run_perf_workload(workload, wallclock=args.wallclock,
                                         substrate=args.substrate,
                                         delta=args.delta)
        write_perf_json(doc, args.out)
        lines = [render_phase_attribution(obs.tracer)]
        if args.timeline:
            lines.extend(["", render_lane_timeline(obs.tracer)])
        lines.extend(["", render_critical_path(obs.tracer), "",
                      f"perf baseline written to {args.out} "
                      f"(makespan {doc['makespan_seconds']:.0f}s, "
                      f"{doc['audits']} audits)"])
        return "\n".join(lines), 0
    if args.baseline is None:
        raise ConfigurationError(
            "perf diff needs a baseline: repro perf diff BASELINE.json")
    baseline = load_perf_json(args.baseline)
    if args.current:
        current = load_perf_json(args.current)
    else:
        workload = baseline.get("workload")
        if not isinstance(workload, dict):
            raise ConfigurationError(
                f"baseline {args.baseline!r} has no workload section; "
                f"re-record it or pass --current")
        current, __, __ = run_perf_workload(workload,
                                            wallclock=args.wallclock,
                                            substrate=args.substrate,
                                            delta=args.delta)
    tolerances = PerfTolerances(
        makespan_pct=args.makespan_tol_pct,
        phase_pct=args.phase_tol_pct,
        counter_pct=args.counter_tol_pct,
        ratio_abs=args.ratio_tol,
        wallclock_pct=args.wallclock_tol_pct)
    breaches, compared = diff_perf(baseline, current, tolerances)
    rendered = render_perf_diff(breaches, compared, args.baseline)
    return rendered, (1 if breaches else 0)


def _run_explain(args, seed: int) -> str:
    """The ``explain`` subcommand: rule-level provenance for one handle.

    Audits the handle with every selected engine (serially, sharing one
    world and clock), then renders the per-engine rule-fire table and
    the cross-engine disagreement drill-down — each disagreement cell
    attributed to the rules that separated the engines.
    """
    from .audit import build_engines
    from .experiments.testbed import PAPER_ACCOUNTS_BY_HANDLE
    from .obs.provenance import (
        ProvenanceCollector,
        build_disagreement,
        render_rule_table,
    )
    handle = args.handle
    account = PAPER_ACCOUNTS_BY_HANDLE.get(handle)
    if account is None:
        raise ConfigurationError(
            f"unknown testbed handle: {handle!r}; choose from "
            f"{sorted(PAPER_ACCOUNTS_BY_HANDLE)}")
    world = build_paper_world(seed, SimClock().now(), tiers=(account.tier,),
                              max_followers=args.max_followers)
    clock = SimClock(world.ref_time)
    collector = ProvenanceCollector()
    engines = build_engines(
        world, clock, seed=seed, faults=_fault_plan(args),
        engines=tuple(args.engines) if args.engines else None,
        sb_daily_quota=10**9, provenance=collector)
    lines = [f"verdict provenance @{handle} "
             f"({account.followers} followers, {account.tier} tier)",
             ""]
    verdict_rows = []
    for name in sorted(engines):
        report = engines[name].audit(
            AuditRequest(target=handle, engine=name))
        inactive = ("-" if report.inactive_pct is None
                    else f"{report.inactive_pct:.1f}%")
        verdict_rows.append(
            f"  {name:<14} fake {report.fake_pct:5.1f}%  "
            f"genuine {report.genuine_pct:5.1f}%  inactive {inactive}")
    lines.extend(verdict_rows)
    lines.append("")
    records = collector.for_target(handle)
    lines.append(render_rule_table(records))
    if len(records) >= 2:
        lines.append("")
        lines.append(build_disagreement(handle, records).render())
    return "\n".join(lines)


def _dispatch(args, seed: int):
    """Run the selected subcommand and return its rendered report.

    Most subcommands return the rendered string; ``perf`` returns a
    ``(rendered, exit_code)`` tuple so regressions can fail the
    process.
    """
    if args.command == "run":
        # Alias form: `repro run <experiment>` == `repro <experiment>`.
        args.command = args.experiment
        return _dispatch(args, seed)
    if args.command == "table1":
        __, rendered = run_table1()
    elif args.command == "ordering":
        world = build_paper_world(seed, SimClock().now(), tiers=(AVERAGE,))
        handles = [account.handle for account in average_accounts()]
        __, rendered = run_ordering_experiment(
            world, handles, days=args.days)
    elif args.command == "table2":
        __, rendered = run_response_time_experiment(
            seed=seed, faults=_fault_plan(args), mode=_mode(args))
    elif args.command == "table3":
        rows, rendered = run_table3(seed=seed, faults=_fault_plan(args),
                                    mode=_mode(args),
                                    explain=getattr(args, "explain", False))
    elif args.command == "explain":
        rendered = _run_explain(args, seed)
    elif args.command == "batch-audit":
        rendered = _run_batch_audit(args, seed)
    elif args.command == "perf":
        return _run_perf(args, seed)
    elif args.command == "chaos":
        scenario = getattr(args, "faults", None) or "bursty"
        kwargs = {}
        if getattr(args, "levels", None):
            kwargs["levels"] = tuple(args.levels)
        __, rendered = run_chaos_experiment(
            seed=seed, scenario=scenario,
            fault_seed=args.fault_seed, mode=_mode(args), **kwargs)
    elif args.command == "acquisition":
        __, __, rendered = run_acquisition_experiment()
    elif args.command == "burst":
        __, rendered = run_purchased_burst_demo(seed=seed)
    elif args.command == "deepdive":
        __, rendered = run_deepdive_comparison(seed=seed)
    elif args.command == "latency":
        __, rendered = run_detection_latency(
            quantities=tuple(args.quantities) if args.quantities
            else (40, 500, 4000, 20000),
            seed=seed)
    elif args.command == "samplesize":
        __, rendered = run_sample_size_experiment(
            trials=args.trials, seed=seed)
    elif args.command == "tacharts":
        __, rendered = run_ta_charts(seed=seed)
    elif args.command == "monitor":
        if getattr(args, "ticks", None):
            rendered = _run_monitor_fleet(args, seed)
        else:
            rendered = _run_monitor_demo(seed=seed, days=args.days)
    elif args.command == "stats":
        rendered = _run_stats(args)
    elif args.command == "validate":
        world = build_paper_world(seed, SimClock().now())
        __, rendered = validate_world(world, sample=args.sample, seed=seed)
    elif args.command == "all":
        suite = run_all(seed=seed, ordering_days=args.days,
                        coverage_trials=args.trials)
        rendered = suite.report()
    else:  # pragma: no cover - argparse enforces choices
        raise SystemExit(2)
    return rendered


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
