"""Cross-engine acquisition cache for batched audits.

When the batch scheduler audits one target with several engines, every
engine re-fetches largely the same raw material: the target's profile,
the newest pages of its follower id list, sampled follower profiles
and (for the timeline-hungry tools) sampled timelines.  Sharing those
acquisitions across clients is what a real multi-tool operator would
do — and it is free of observable-behaviour changes because the
scheduler pins every audit of a batch to one observation instant
(:attr:`repro.audit.AuditRequest.as_of`), so a cached read returns
byte-identical data to a fresh one.

The cache is deliberately dumb: exact-key lookups, no TTL, no bound.
It lives for one batch (the scheduler clears it at every ``run()``,
because a new batch pins a new observation epoch and entries from the
previous epoch would be stale).  Cache hits cost the client *nothing*
— no request, no rate-limit tokens, no simulated latency — which is
exactly the point: shared acquisition is how the scheduler beats the
serial baseline's makespan.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..api.endpoints import IdsPage, UserObject
from ..obs.metrics import CacheInfo
from ..obs.runtime import get_observability


class AcquisitionCache:
    """Shared raw-acquisition store keyed the way the API pages data.

    Three stores, mirroring the three acquisition shapes of
    :class:`repro.api.client.TwitterApiClient`:

    * **profiles** — by user id, with a secondary index by lowercased
      screen name (``users/show`` resolves either way);
    * **id pages** — by ``(resource, user_id, offset, page_size)``,
      exactly the tuple a paged ``followers/ids`` request names;
    * **timelines** — by ``(user_id, count)``.

    All values are immutable (frozen dataclasses, tuples), so handing
    the same object to several engines is safe.  Metric series
    (``acq_cache_events_total``) are created lazily on first use so
    runs that never touch a scheduler export byte-identical metrics.
    """

    def __init__(self, name: str = "acquisition") -> None:
        self._name = name
        self._profiles: Dict[int, UserObject] = {}
        self._by_name: Dict[str, int] = {}
        self._pages: Dict[Tuple[str, int, int, int], IdsPage] = {}
        self._timelines: Dict[Tuple[int, int], Tuple] = {}
        #: Lookup hits / misses since construction (all stores pooled).
        self.hits = 0
        self.misses = 0
        self._feature_cache = None
        self._watermarks = None
        obs = get_observability()
        self._registry = obs.registry
        self._hit_counter = None
        self._miss_counter = None
        obs.register_cache(self)

    # -- bookkeeping ----------------------------------------------------------

    def _hit(self) -> None:
        self.hits += 1
        if self._hit_counter is None:
            self._hit_counter = self._registry.counter(
                "acq_cache_events_total",
                help="shared acquisition-cache lookups by outcome",
                cache=self._name, event="hit")
        self._hit_counter.inc()

    def _miss(self) -> None:
        self.misses += 1
        if self._miss_counter is None:
            self._miss_counter = self._registry.counter(
                "acq_cache_events_total",
                help="shared acquisition-cache lookups by outcome",
                cache=self._name, event="miss")
        self._miss_counter.inc()

    # -- profiles -------------------------------------------------------------

    def get_profile(self, user_id: int) -> Optional[UserObject]:
        """The cached profile for ``user_id``, or ``None``."""
        user = self._profiles.get(user_id)
        self._hit() if user is not None else self._miss()
        return user

    def get_profile_by_name(self, screen_name: str) -> Optional[UserObject]:
        """The cached profile for ``screen_name`` (case-insensitive)."""
        uid = self._by_name.get(screen_name.lower())
        user = self._profiles.get(uid) if uid is not None else None
        self._hit() if user is not None else self._miss()
        return user

    def put_profile(self, user: UserObject) -> None:
        """Store one resolved profile under both of its keys."""
        self._profiles[user.user_id] = user
        self._by_name[user.screen_name.lower()] = user.user_id

    # -- follower / friend id pages -------------------------------------------

    def get_page(self, resource: str, user_id: int, offset: int,
                 page_size: int) -> Optional[IdsPage]:
        """The cached ids page for this exact request shape, or ``None``."""
        page = self._pages.get((resource, user_id, offset, page_size))
        self._hit() if page is not None else self._miss()
        return page

    def put_page(self, resource: str, user_id: int, offset: int,
                 page_size: int, page: IdsPage) -> None:
        """Store one *complete* ids page (truncated pages are not shared)."""
        self._pages[(resource, user_id, offset, page_size)] = page

    # -- timelines ------------------------------------------------------------

    def get_timeline(self, user_id: int, count: int):
        """The cached timeline for ``(user_id, count)``, or ``None``."""
        timeline = self._timelines.get((user_id, count))
        self._hit() if timeline is not None else self._miss()
        return timeline

    def put_timeline(self, user_id: int, count: int, timeline) -> None:
        """Store one fetched timeline (kept as an immutable tuple)."""
        self._timelines[(user_id, count)] = tuple(timeline)

    # -- derived caches -------------------------------------------------------

    def feature_cache(self, factory):
        """The batch-shared FC feature cache, built on first request.

        The FC engines hand the cache's class in as ``factory`` (this
        module cannot import :mod:`repro.fc.columnar` without a cycle);
        every engine wired to this acquisition cache then shares one
        instance, so overlapping follower samples across a batch's
        audits reuse each other's feature rows.  Lives and dies with
        the batch: :meth:`clear` empties it along with the raw stores.
        """
        if self._feature_cache is None:
            self._feature_cache = factory(
                name=f"{self._name}-features", max_entries=None)
        return self._feature_cache

    @property
    def watermarks(self):
        """The audit-watermark store riding on this cache, built lazily.

        Watermarks (:class:`repro.sched.incremental.WatermarkStore`)
        are *not* raw acquisitions: they summarise finished audits,
        carry their own observation epoch and TTL, and exist precisely
        to span batches — a delta re-audit extends a watermark captured
        runs ago.  They are therefore exempt from :meth:`clear`, which
        only drops the per-epoch raw stores.  The import is deferred to
        keep this module a leaf for clients.
        """
        if self._watermarks is None:
            from .incremental import WatermarkStore
            self._watermarks = WatermarkStore()
        return self._watermarks

    # -- lifecycle ------------------------------------------------------------

    def clear(self) -> None:
        """Drop every entry (a new batch pins a new observation epoch)."""
        self._profiles.clear()
        self._by_name.clear()
        self._pages.clear()
        self._timelines.clear()
        if self._feature_cache is not None:
            self._feature_cache.clear()

    def size(self) -> int:
        """Total live entries across all three stores."""
        return len(self._profiles) + len(self._pages) + len(self._timelines)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/entry counts, for batch-report telemetry."""
        return {"hits": self.hits, "misses": self.misses,
                "entries": self.size()}

    def cache_info(self) -> CacheInfo:
        """The uniform snapshot shape shared with the other caches.

        Raw acquisitions are never evicted (the store is unbounded and
        cleared per batch), so ``evictions`` is always zero; the shared
        feature cache registers and reports separately.
        """
        return CacheInfo(name=self._name, hits=self.hits,
                         misses=self.misses, evictions=0, size=self.size())
