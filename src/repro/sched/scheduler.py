"""The rate-limit-aware batch audit scheduler.

The paper's authors audited each target with each tool **serially** —
one engine, one target, one fresh rate-limit window at a time — which
is faithful to how a human drives four web dashboards, but wasteful
when reproducing Table III over a whole testbed: the four engines'
crawlers are independent credential pools, so their acquisitions can
run side by side on the simulated clock, and repeated requests for the
same raw material can be shared or coalesced outright.

:class:`BatchAuditScheduler` models that operator.  Work is organised
into **lanes**, one per engine; each lane runs ``lane_slots``
independent engine instances ("slots"), each with its own virtual
clock and its own credential pool (``reset_budgets`` per audit — the
same credential-rotation assumption the serial experiments make).  A
deterministic event loop always advances the slot whose clock is
furthest behind, so acquisition steps of many audits interleave across
simulated rate-limit windows exactly as concurrent crawlers would,
while remaining reproducible to the byte for a fixed seed.

Three mechanisms keep a batch's *results* identical to the serial
baseline's even though its *timing* is radically different:

* **observation pinning** — every request is pinned to the batch's
  admission epoch (``as_of``), so world reads see the social graph
  frozen at one instant regardless of when each step lands on a clock;
* **audit-index assignment** — each request carries the per-lane
  sampling index it would have had in a serial run, reproducing the
  engines' RNG streams;
* **duplicate coalescing** — identical ``(lane, target,
  force_refresh)`` submissions fold into one execution, so repeats
  cannot even *potentially* diverge.

Backpressure is explicit: a bounded queue (``max_pending``) and an
advisory makespan budget (``makespan_budget``) reject further
submissions with :class:`~repro.core.errors.SchedulerSaturatedError`
instead of letting a batch grow without bound.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..api.ratelimit import DEFAULT_POLICIES
from ..audit import ENGINE_NAMES, AuditRequest, Auditor, build_engines
from ..core.clock import SimClock
from ..core.errors import (
    ConfigurationError,
    NotFoundError,
    QuotaExceededError,
    ReproError,
    RetryableApiError,
    SchedulerSaturatedError,
    UnknownAccountError,
)

#: Failures that spoil one batch item without sinking the whole batch:
#: admission refusals (quota), bad targets, and API errors that
#: survived the engines' own retry budget.
_ITEM_ERRORS = (QuotaExceededError, ConfigurationError, NotFoundError,
                UnknownAccountError, RetryableApiError)
from ..obs.runtime import get_observability
from .cache import AcquisitionCache
from .incremental import DeltaAuditor, WatermarkStore
from .report import BatchItem, BatchReport, LaneSummary

#: Crawler shape (credentials, parallelism) of each engine, mirroring
#: the engines' own constructor defaults; used only by the *advisory*
#: admission-time cost estimate.
_LANE_FLEETS: Mapping[str, Tuple[int, int]] = {
    "fc": (1, 1),
    "twitteraudit": (8, 2),
    "statuspeople": (4, 1),
    "socialbakers": (64, 512),
}

#: Follower frame each engine acquires (None = the whole list).
_LANE_FRAMES: Mapping[str, Optional[int]] = {
    "fc": None,
    "twitteraudit": 5000,
    "statuspeople": 35_000,
    "socialbakers": 2000,
}

#: Profile sample each engine looks up.
_LANE_SAMPLES: Mapping[str, int] = {
    "fc": 9604,
    "twitteraudit": 5000,
    "statuspeople": 700,
    "socialbakers": 2000,
}


def estimate_audit_seconds(engine: str, followers_count: int,
                           *, latency: float = 1.9) -> float:
    """Rough acquisition time of one fresh audit, for admission control.

    Table I arithmetic against fresh windows: follower-id pages at
    their bucket's burst-then-refill schedule, profile lookups batched
    100 per call, plus one timeline call per sampled follower for the
    timeline-hungry Socialbakers.  Deliberately ignores caching,
    coalescing and faults — it is an *advisory* upper-bound estimate,
    not a simulation.
    """
    if engine not in _LANE_FLEETS:
        raise ConfigurationError(
            f"unknown engine {engine!r}; choose from {ENGINE_NAMES}")
    credentials, parallelism = _LANE_FLEETS[engine]
    per_request = latency / parallelism
    frame = _LANE_FRAMES[engine]
    framed = followers_count if frame is None else min(followers_count, frame)
    sampled = min(_LANE_SAMPLES[engine], framed)

    def phase(resource: str, requests: int) -> float:
        policy = DEFAULT_POLICIES[resource]
        if requests <= 0:
            return 0.0
        burst = policy.window_budget * credentials
        rate = policy.requests_per_minute * credentials / 60.0
        throttled = max(0.0, requests - burst) / rate
        return requests * per_request + throttled

    pages = math.ceil(framed / DEFAULT_POLICIES[
        "followers/ids"].elements_per_request) if framed else 1
    seconds = phase("followers/ids", pages)
    seconds += phase("users/lookup", 1 + math.ceil(sampled / DEFAULT_POLICIES[
        "users/lookup"].elements_per_request))
    if engine == "socialbakers":
        seconds += phase("statuses/user_timeline", sampled)
    return seconds


@dataclass
class _Slot:
    """One engine instance of a lane, with its own clock."""

    engine: Auditor
    clock: SimClock
    index: int
    item: Optional[BatchItem] = None
    steps: Optional[object] = None
    #: Lazily built :class:`~repro.sched.incremental.DeltaAuditor`
    #: wrapper, created the first time a ``mode="delta"`` request
    #: lands on this slot.
    delta: Optional[DeltaAuditor] = None


class _Lane:
    """One engine's scheduling lane: a queue shared by its slots."""

    def __init__(self, name: str, slots: List[_Slot]) -> None:
        self.name = name
        self.slots = slots
        self.queue: "deque[BatchItem]" = deque()
        self.pending: List[BatchItem] = []
        self.assigned_indices = 0
        self.estimated_backlog = 0.0


class BatchAuditScheduler:
    """Deterministic rate-limit-aware scheduler over the audit engines.

    Parameters
    ----------
    world, clock:
        The simulated Twitter and the *caller's* clock.  Batch runs
        execute on per-slot clocks and advance the caller's clock by
        the batch makespan when they finish.
    engines:
        Engine lane names (a subset of
        :data:`~repro.audit.ENGINE_NAMES`); default all four.
    lane_slots:
        Independent engine instances per lane — the "how many crawler
        deployments of this tool do I run" knob.  Serial mode always
        uses one.
    detector:
        Optional pre-trained FC detector; trained once (from ``seed``)
        and shared by every FC slot when omitted.
    seed, faults, retry:
        Forwarded to every engine instance, so each slot crawls under
        the same deterministic sampling and API weather rules.
    shared_cache:
        Share one :class:`~repro.sched.cache.AcquisitionCache` across
        all lanes of a batch run (cleared at each ``run()``).  Forced
        off in serial mode so the baseline stays a faithful replay of
        the paper's one-tool-at-a-time methodology.
    pin_observation:
        Pin every request without an explicit ``as_of`` to the batch's
        admission epoch.  Leave on: it is what makes batch percentages
        equal serial ones.
    serial:
        Run admissions one after another on the caller's clock — the
        baseline the throughput benchmark compares against.
    max_pending / makespan_budget:
        Backpressure bounds; see :meth:`submit`.
    sb_daily_quota:
        Socialbakers quota override, lifted by default as in the
        experiment runners (each slot is its own free-tier account).
    provenance:
        Optional :class:`~repro.obs.provenance.ProvenanceCollector`
        shared by every slot's engines; batch digests are unchanged
        (``BatchItem`` never serializes report details).
    watermarks:
        Optional :class:`~repro.sched.incremental.WatermarkStore`
        backing ``mode="delta"`` requests.  Defaults to the shared
        acquisition cache's store (which survives the per-run cache
        clear) or, without a shared cache, a private store.  Inject
        one explicitly to carry watermarks across scheduler instances
        — e.g. a monitoring loop that builds a fresh scheduler per
        alert burst but wants the Nth re-audit of an account to extend
        the first audit's baseline.
    """

    def __init__(self, world, clock: SimClock, *,
                 engines: Optional[Sequence[str]] = None,
                 lane_slots: int = 2,
                 detector=None,
                 seed: int = 5,
                 faults=None,
                 retry=None,
                 shared_cache: bool = True,
                 pin_observation: bool = True,
                 serial: bool = False,
                 max_pending: Optional[int] = None,
                 makespan_budget: Optional[float] = None,
                 sb_daily_quota: Optional[int] = 10**9,
                 engine_batch: Union[bool, str] = "auto",
                 provenance=None,
                 watermarks: Optional[WatermarkStore] = None) -> None:
        if lane_slots < 1:
            raise ConfigurationError(f"lane_slots must be >= 1: {lane_slots!r}")
        if max_pending is not None and max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1 or None: {max_pending!r}")
        if makespan_budget is not None and makespan_budget <= 0:
            raise ConfigurationError(
                f"makespan_budget must be positive: {makespan_budget!r}")
        names = tuple(engines) if engines is not None else ENGINE_NAMES
        unknown = set(names) - set(ENGINE_NAMES)
        if unknown:
            raise ConfigurationError(
                f"unknown engines: {sorted(unknown)!r}; "
                f"choose from {ENGINE_NAMES}")
        self._world = world
        self._clock = clock
        self._serial = bool(serial)
        self._slots_per_lane = 1 if self._serial else lane_slots
        self._pin = pin_observation
        self._max_pending = max_pending
        self._makespan_budget = makespan_budget
        self._seed = seed
        self._faults = faults
        self._retry = retry
        self._sb_daily_quota = sb_daily_quota
        self._cache = (AcquisitionCache() if shared_cache and not self._serial
                       else None)
        if watermarks is not None:
            self._watermarks = watermarks
        elif self._cache is not None:
            self._watermarks = self._cache.watermarks
        else:
            self._watermarks = WatermarkStore()
        if detector is None and "fc" in names:
            from ..fc.engine import default_detector
            detector = default_detector(seed)
        self._lanes: Dict[str, _Lane] = {}
        for name in names:
            slots = []
            for slot_index in range(self._slots_per_lane):
                slot_clock = clock if self._serial else SimClock(clock.now())
                engine_map = build_engines(
                    world, slot_clock, detector, seed,
                    faults=faults, retry=retry, engines=(name,),
                    acquisition_cache=self._cache,
                    sb_daily_quota=sb_daily_quota,
                    batch=engine_batch,
                    provenance=provenance)
                slots.append(_Slot(engine=engine_map[name], clock=slot_clock,
                                   index=slot_index))
            self._lanes[name] = _Lane(name, slots)
        self._lane_order = tuple(names)
        self._seq = 0
        self._coalesced_hits = 0
        self._coalesce_map: Dict[Tuple[str, str, bool, str], BatchItem] = {}
        obs = get_observability()
        self._obs = obs
        self._registry = obs.registry
        self._tracer = obs.tracer
        self._queue_gauge = None
        self._requests_counters: Dict[str, object] = {}
        self._coalesced_counter = None
        self._makespan_gauge = None
        self._utilization_gauges: Dict[Tuple[str, str], object] = {}

    # -- introspection --------------------------------------------------------

    @property
    def serial(self) -> bool:
        """Whether this scheduler runs the serial baseline mode."""
        return self._serial

    @property
    def lanes(self) -> Tuple[str, ...]:
        """Engine lane names, in admission order."""
        return self._lane_order

    @property
    def acquisition_cache(self) -> Optional[AcquisitionCache]:
        """The shared acquisition cache (``None`` in serial mode)."""
        return self._cache

    @property
    def watermarks(self) -> WatermarkStore:
        """The watermark store backing ``mode="delta"`` requests."""
        return self._watermarks

    def engine(self, lane: str, slot: int = 0) -> Auditor:
        """The engine instance serving ``lane``'s ``slot`` (e.g. to prewarm)."""
        return self._lane(lane).slots[slot].engine

    def pending_count(self) -> int:
        """Admitted-but-not-yet-run items across all lanes."""
        return sum(len(lane.pending) for lane in self._lanes.values())

    def _lane(self, name: str) -> _Lane:
        lane = self._lanes.get(name)
        if lane is None:
            raise ConfigurationError(
                f"no lane for engine {name!r}; this scheduler runs "
                f"{self._lane_order}")
        return lane

    # -- admission ------------------------------------------------------------

    def submit(self, request: Union[AuditRequest, str]) -> List[BatchItem]:
        """Admit one audit request, returning its batch items.

        A request whose ``engine`` is ``None`` fans out to every lane
        (one item per engine); a bound request lands on its engine's
        lane only.  A duplicate of a still-pending ``(lane, target,
        force_refresh, mode)`` combination **coalesces** — no new work
        is queued, the existing item is returned and its ``coalesced``
        count incremented.  ``mode`` is part of the key because a
        delta re-audit and a full audit of the same target are *not*
        interchangeable answers (one may replay a watermarked
        baseline, the other re-examines the whole frame).

        Raises :class:`SchedulerSaturatedError` when the pending queue
        is at ``max_pending``, or when ``makespan_budget`` is set and
        the projected makespan (an advisory Table I estimate) would
        exceed it.
        """
        if isinstance(request, str):
            request = AuditRequest(target=request)
        targets = ([request.bound_to(name) for name in self._lane_order]
                   if request.engine is None else [request])
        items: List[BatchItem] = []
        for bound in targets:
            lane = self._lane(bound.engine)
            key = (bound.engine, bound.target.lower(), bound.force_refresh,
                   bound.mode)
            existing = self._coalesce_map.get(key)
            if existing is not None and not existing.done:
                existing.coalesced += 1
                self._coalesced_hits += 1
                self._coalesced_metric()
                now = self._clock.now()
                # Zero-duration marker: the fold costs no simulated time,
                # but the timeline should show the duplicate arriving.
                self._tracer.record("sched.coalesce", now, now,
                                    lane=lane.name, target=bound.target,
                                    seq=existing.seq)
                items.append(existing)
                continue
            self._check_admission(lane, bound)
            item = BatchItem(request=bound, seq=self._seq, lane=lane.name)
            self._seq += 1
            lane.pending.append(item)
            self._coalesce_map[key] = item
            if self._makespan_budget is not None:
                lane.estimated_backlog += self._estimate(lane.name,
                                                         bound.target)
            items.append(item)
        self._set_queue_depth()
        return items

    def submit_batch(self, requests: Sequence[Union[AuditRequest, str]]
                     ) -> List[BatchItem]:
        """Admit many requests (in order), returning all their items."""
        items: List[BatchItem] = []
        for request in requests:
            items.extend(self.submit(request))
        return items

    def _check_admission(self, lane: _Lane, request: AuditRequest) -> None:
        if (self._max_pending is not None
                and self.pending_count() >= self._max_pending):
            raise SchedulerSaturatedError(
                f"pending queue is full ({self._max_pending} items); "
                f"run() the batch before submitting more")
        if self._makespan_budget is None:
            return
        added = self._estimate(lane.name, request.target)
        slots = self._slots_per_lane
        projected = max(
            (other.estimated_backlog + (added if other is lane else 0.0))
            / slots
            for other in self._lanes.values())
        if projected > self._makespan_budget:
            raise SchedulerSaturatedError(
                f"projected makespan {projected:.0f}s exceeds the "
                f"{self._makespan_budget:.0f}s budget "
                f"(lane {lane.name!r})")

    def _estimate(self, lane: str, target: str) -> float:
        try:
            account = self._world.account_by_name(target, self._clock.now())
            followers = account.followers_count
        except ReproError:
            followers = 0
        return estimate_audit_seconds(lane, followers)

    # -- execution ------------------------------------------------------------

    def run(self) -> BatchReport:
        """Execute every pending item and return the batch report.

        The admission epoch is the caller clock's *now*: unpinned
        requests are pinned to it, the shared cache (if any) is cleared
        for it, and per-lane ``audit_index`` values are assigned in
        fairness order.  On return the caller's clock has advanced by
        exactly the batch makespan.
        """
        epoch = self._clock.now()
        if self._cache is not None:
            self._cache.clear()
        run_items: List[BatchItem] = []
        for name in self._lane_order:
            lane = self._lanes[name]
            ordered = self._fair_order(lane.pending)
            lane.pending = []
            lane.estimated_backlog = 0.0
            for item in ordered:
                lane.assigned_indices += 1
                item.audit_index = lane.assigned_indices
                as_of = item.request.as_of
                if self._pin and as_of is None:
                    as_of = epoch
                item.request = item.request.bound_to(
                    lane.name, as_of=as_of, audit_index=item.audit_index)
                lane.queue.append(item)
                run_items.append(item)
        run_items.sort(key=lambda item: item.seq)

        if self._serial:
            makespan = self._run_serial(epoch)
        else:
            makespan = self._run_scheduled(epoch)
        self._set_queue_depth()
        self._publish_run_metrics(makespan)
        live = self._obs.live
        if live is not None:
            # Keyed to the admission epoch (mode-invariant), not the
            # finish instant (which depends on the scheduling mode).
            live.on_batch_run(epoch, makespan, executed=len(run_items))

        lanes = []
        for name in self._lane_order:
            lane = self._lanes[name]
            lane_items = [item for item in run_items if item.lane == name]
            busy = sum((item.finished_at or 0.0) - (item.started_at or 0.0)
                       for item in lane_items if item.started_at is not None)
            errors = sum(
                1 for item in lane_items if item.error is not None)
            lanes.append(LaneSummary(
                lane=name, slots=len(lane.slots), items=len(lane_items),
                errors=errors, busy_seconds=busy))
            if lane_items:
                # A lane's extent is only known once the batch is done, so
                # it is recorded post hoc: admission epoch to last finish.
                lane_end = max(
                    (item.finished_at for item in lane_items
                     if item.finished_at is not None), default=epoch)
                self._tracer.record(
                    "sched.lane", epoch, lane_end, lane=name,
                    slots=len(lane.slots), items=len(lane_items),
                    errors=errors, busy_seconds=busy)
        return BatchReport(
            epoch=epoch,
            makespan_seconds=makespan,
            serial=self._serial,
            items=tuple(run_items),
            lanes=tuple(lanes),
            coalesced_hits=self._coalesced_hits,
            cache_stats=self._cache.stats() if self._cache is not None else {},
        )

    @staticmethod
    def _fair_order(items: List[BatchItem]) -> List[BatchItem]:
        """Priority-then-round-robin-across-targets ordering of a lane.

        Higher ``priority`` first; within one priority band, targets
        take turns (a target's second request queues behind every other
        target's first), ties broken by admission sequence — all
        deterministic.
        """
        seen: Dict[Tuple[int, str], int] = {}
        keyed = []
        for item in sorted(items, key=lambda i: (-i.request.priority, i.seq)):
            band = (item.request.priority, item.request.target.lower())
            rank = seen.get(band, 0)
            seen[band] = rank + 1
            keyed.append(((-item.request.priority, rank, item.seq), item))
        return [item for __, item in sorted(keyed, key=lambda pair: pair[0])]

    def _run_serial(self, epoch: float) -> float:
        for name in self._lane_order:
            lane = self._lanes[name]
            slot = lane.slots[0]
            while lane.queue:
                item = lane.queue.popleft()
                item.slot = slot.index
                item.started_at = slot.clock.now()
                with self._tracer.span(
                        "sched.slot.step", slot.clock, lane=name,
                        slot=slot.index, seq=item.seq,
                        target=item.request.target):
                    try:
                        item.report = self._auditor_for(
                            slot, item.request).audit(item.request)
                    except _ITEM_ERRORS as error:
                        item.error = f"{type(error).__name__}: {error}"
                item.finished_at = slot.clock.now()
                self._count_request(name)
                self._forget(item)
        return self._clock.now() - epoch

    def _run_scheduled(self, epoch: float) -> float:
        lanes = [self._lanes[name] for name in self._lane_order]
        heap: List[Tuple[float, int, int]] = []
        for lane_idx, lane in enumerate(lanes):
            for slot in lane.slots:
                if slot.clock.now() < epoch:
                    slot.clock.advance_to(epoch)
                if lane.queue:
                    heapq.heappush(
                        heap, (slot.clock.now(), lane_idx, slot.index))
        while heap:
            __, lane_idx, slot_idx = heapq.heappop(heap)
            lane = lanes[lane_idx]
            slot = lane.slots[slot_idx]
            starting = slot.item is None
            if starting:
                if not lane.queue:
                    continue
                item = lane.queue.popleft()
                item.slot = slot.index
                item.started_at = slot.clock.now()
            else:
                item = slot.item
            # One span per event-loop step, opened and closed within this
            # iteration: a span held open across steps of *other* slots
            # would corrupt the tracer's single nesting stack, so the
            # whole-audit extent lives on the BatchItem, not on a span.
            with self._tracer.span(
                    "sched.slot.step", slot.clock, lane=lane.name,
                    slot=slot.index, seq=item.seq,
                    target=item.request.target):
                if starting:
                    try:
                        slot.steps = self._auditor_for(
                            slot, item.request).begin_audit(item.request)
                        slot.item = item
                    except _ITEM_ERRORS as error:
                        self._finish(lane, slot, item, error=error)
                        heapq.heappush(
                            heap, (slot.clock.now(), lane_idx, slot.index))
                        continue
                try:
                    next(slot.steps)
                except StopIteration as stop:
                    self._finish(lane, slot, item, report=stop.value)
                except _ITEM_ERRORS as error:
                    self._finish(lane, slot, item, error=error)
            if slot.item is not None or lane.queue:
                heapq.heappush(heap, (slot.clock.now(), lane_idx, slot.index))
        makespan = max(
            (slot.clock.now() - epoch
             for lane in lanes for slot in lane.slots), default=0.0)
        self._clock.advance(makespan)
        return makespan

    def _auditor_for(self, slot: _Slot, request: AuditRequest) -> Auditor:
        """The slot's engine, wrapped for delta when the request asks.

        The wrapper is built once per slot and kept: its watermark
        store is the scheduler-wide one, so every slot of a lane (and
        every scheduler sharing an injected store) extends the same
        baselines.
        """
        if request.mode != "delta":
            return slot.engine
        if slot.delta is None:
            slot.delta = DeltaAuditor(slot.engine, self._watermarks)
        return slot.delta

    def _finish(self, lane: _Lane, slot: _Slot, item: BatchItem, *,
                report=None, error: Optional[BaseException] = None) -> None:
        if report is not None:
            item.report = report
        if error is not None:
            item.error = f"{type(error).__name__}: {error}"
        item.finished_at = slot.clock.now()
        slot.item = None
        slot.steps = None
        self._count_request(lane.name)
        self._forget(item)

    def _forget(self, item: BatchItem) -> None:
        key = (item.lane, item.request.target.lower(),
               item.request.force_refresh, item.request.mode)
        if self._coalesce_map.get(key) is item:
            del self._coalesce_map[key]

    # -- metrics --------------------------------------------------------------

    def _set_queue_depth(self) -> None:
        if self._queue_gauge is None:
            self._queue_gauge = self._registry.gauge(
                "sched_queue_depth",
                help="audit requests admitted but not yet executed")
        self._queue_gauge.set(float(self.pending_count()))

    def _coalesced_metric(self) -> None:
        if self._coalesced_counter is None:
            self._coalesced_counter = self._registry.counter(
                "sched_coalesced_hits_total",
                help="duplicate submissions folded into pending items")
        self._coalesced_counter.inc()

    def _count_request(self, lane: str) -> None:
        counter = self._requests_counters.get(lane)
        if counter is None:
            counter = self._registry.counter(
                "sched_requests_total",
                help="audit requests executed by the scheduler",
                lane=lane)
            self._requests_counters[lane] = counter
        counter.inc()

    def _publish_run_metrics(self, makespan: float) -> None:
        if self._makespan_gauge is None:
            self._makespan_gauge = self._registry.gauge(
                "sched_makespan_seconds",
                help="simulated wall time of the last batch run")
        self._makespan_gauge.set(makespan)
        if makespan <= 0:
            return
        for name in self._lane_order:
            lane = self._lanes[name]
            credentials, __ = _LANE_FLEETS[name]
            for resource, policy in DEFAULT_POLICIES.items():
                issued = sum(slot.engine.client.call_log.count(resource)
                             for slot in lane.slots)
                if issued == 0:
                    continue
                capacity = len(lane.slots) * credentials * (
                    policy.window_budget
                    + policy.requests_per_minute * makespan / 60.0)
                utilization = min(1.0, issued / capacity) if capacity else 0.0
                gauge = self._utilization_gauges.get((name, resource))
                if gauge is None:
                    gauge = self._registry.gauge(
                        "sched_window_utilization",
                        help="issued requests over the rate-limit capacity "
                             "spanned by the batch",
                        lane=name, resource=resource)
                    self._utilization_gauges[(name, resource)] = gauge
                gauge.set(utilization)
