"""Incremental (delta) re-audits anchored on follower-list watermarks.

The paper's Section IV-B finding — ``followers/ids`` returns followers
newest-first — is exploited elsewhere in this repo as a *bias* result
(head-of-list samples over-represent fresh arrivals).  This module
turns it into a *speed* result: because every follower gained since a
previous crawl occupies a prefix of the list, a re-audit does not need
to re-crawl O(N) edges to measure an O(Δ) change.  A full audit leaves
behind an :class:`AuditWatermark` (follower count, the newest few edge
ids as an *anchor*, raw verdict counts, the observation epoch); the
next audit of the same target walks the head only until it re-finds
the anchor, classifies just the new arrivals through the engine's
ordinary batch-criteria path, and merges their verdict counts with the
watermarked baseline.

Delta results are exact — bit-identical counts to a fresh full audit —
whenever the baseline was a census of the engine's sampling frame and
no already-counted account's verdict drifts between the two
observation instants; they are an approximation otherwise (the
baseline tail is not re-examined).  The :class:`DeltaAuditor` is
deliberately paranoid about when *not* to trust a watermark, falling
back to a full audit on any of:

* **cold start** — no watermark for this (engine, target);
* **TTL expiry** — the baseline is older than ``ttl`` seconds, so
  tail drift can no longer be ignored;
* **shrinking counts** — the follower count dropped below the
  watermark's (churn reaches into the counted base);
* **anchor lost** — the head walk exhausts its budget (or the whole
  list) without re-finding any anchor id: churn past the anchor depth
  or an invalidated cursor chain;
* **head-walk faults** — a degraded or fault-bitten walk can silently
  truncate the prefix, so it is never trusted;
* **oversized delta** — more new arrivals than the engine would even
  sample in a full audit: a fresh audit is cheaper *and* better.

A successful merge refreshes the watermark (new anchor, merged counts,
merged report) **only when the delta classified completely**; partial
or zero-completeness deltas return a degraded merged report but leave
the watermark untouched, so one bad fault window cannot poison every
subsequent re-audit.  The TTL clock is *not* refreshed by merges — it
measures time since the last full census, which is the thing that
bounds tail drift.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional, Tuple

from ..api.crawler import Crawler
from ..audit import AuditReport, AuditRequest, coerce_request, drain_steps
from ..core.clock import Stopwatch
from ..core.errors import ConfigurationError, RetryableApiError
from ..core.timeutil import DAY
from ..obs.runtime import get_observability

#: Head edge ids captured per watermark.  The walk tolerates up to this
#: many of the newest baseline followers unfollowing before the anchor
#: is lost; one id would already anchor a churn-free list.
DEFAULT_ANCHOR_DEPTH = 64

#: Seconds after which a watermark is too stale to extend: accounts
#: already counted can drift class (e.g. across a 90-day inactivity
#: horizon), and only a fresh full audit re-examines them.
DEFAULT_DELTA_TTL = 30 * DAY


@dataclass(frozen=True)
class AuditWatermark:
    """Everything a delta re-audit needs from the previous audit.

    ``as_of`` is the observation epoch of the last *full* audit (the
    TTL reference); ``updated_at`` advances with every successful
    merge.  ``verdict_counts`` are the raw class counts behind the
    report's rounded percentages — merging percentages would compound
    rounding, merging counts is exact.  ``report`` is the baseline
    (or last merged) report, returned verbatim when a re-audit finds
    the account unchanged.
    """

    engine: str
    target: str
    followers_count: int
    anchor_ids: Tuple[int, ...]
    verdict_counts: Mapping[str, int]
    sample_size: int
    as_of: float
    updated_at: float
    report: AuditReport

    def __post_init__(self) -> None:
        if self.followers_count < 0:
            raise ConfigurationError(
                f"followers_count must be >= 0: {self.followers_count!r}")
        if self.sample_size < 0:
            raise ConfigurationError(
                f"sample_size must be >= 0: {self.sample_size!r}")
        if any(count < 0 for count in self.verdict_counts.values()):
            raise ConfigurationError("verdict counts must be non-negative")


class WatermarkStore:
    """Watermarks keyed by ``(engine, lowercased target)``.

    Unlike the raw acquisition stores of
    :class:`~repro.sched.cache.AcquisitionCache`, watermarks
    deliberately *survive* batch boundaries: they carry their own
    observation epoch and TTL, and spanning runs is their entire point
    (the Nth re-audit of a fleet member extends the first audit's
    baseline).  The scheduler therefore exempts this store from the
    per-``run()`` cache clear.
    """

    def __init__(self) -> None:
        self._by_key: Dict[Tuple[str, str], AuditWatermark] = {}

    @staticmethod
    def _key(engine: str, target: str) -> Tuple[str, str]:
        return (engine, target.lower())

    def get(self, engine: str, target: str) -> Optional[AuditWatermark]:
        """The stored watermark for ``(engine, target)``, or ``None``."""
        return self._by_key.get(self._key(engine, target))

    def put(self, watermark: AuditWatermark) -> None:
        """Store (or replace) one watermark."""
        self._by_key[self._key(watermark.engine, watermark.target)] = watermark

    def drop(self, engine: str, target: str) -> None:
        """Forget the watermark for ``(engine, target)``, if any."""
        self._by_key.pop(self._key(engine, target), None)

    def clear(self) -> None:
        """Forget every watermark."""
        self._by_key.clear()

    def __len__(self) -> int:
        return len(self._by_key)


class DeltaAuditor:
    """Watermark-aware wrapper around one audit engine.

    Implements the same :class:`~repro.audit.Auditor` surface as the
    engine it wraps (blocking :meth:`audit`, resumable
    :meth:`begin_audit`), so a scheduler slot can route
    ``mode="delta"`` requests through it unchanged.  ``mode="full"``
    (or ``force_refresh``) requests pass straight through to the
    engine — plus a cheap anchor capture afterwards, so the *next*
    delta request has a baseline.

    The wrapper requires an effective observation epoch: a request
    without ``as_of`` is pinned to the engine clock's *now* at
    admission, which is what makes the captured anchor describe
    exactly the frame the audit counted.
    """

    def __init__(self, engine, store: WatermarkStore, *,
                 anchor_depth: int = DEFAULT_ANCHOR_DEPTH,
                 ttl: float = DEFAULT_DELTA_TTL,
                 max_delta: Optional[int] = None) -> None:
        if anchor_depth < 1:
            raise ConfigurationError(
                f"anchor_depth must be >= 1: {anchor_depth!r}")
        if ttl <= 0:
            raise ConfigurationError(f"ttl must be positive: {ttl!r}")
        if max_delta is not None and max_delta < 1:
            raise ConfigurationError(
                f"max_delta must be >= 1 or None: {max_delta!r}")
        self._engine = engine
        self._store = store
        self._anchor_depth = anchor_depth
        self._ttl = ttl
        self._max_delta = max_delta
        self._crawler = Crawler(engine.client)
        obs = get_observability()
        self._obs = obs
        self._registry = obs.registry
        self._tracer = obs.tracer
        self._outcome_counters: Dict[str, object] = {}
        self._fallback_counters: Dict[str, object] = {}
        self._pages_counter = None
        self._classified_counter = None
        #: Plain-int mirrors of the metric series, for perf telemetry.
        self.served_unchanged = 0
        self.merged = 0
        self.fallbacks: Dict[str, int] = {}
        self.head_pages = 0
        self.new_classified = 0

    @property
    def name(self) -> str:
        """The wrapped engine's lane name."""
        return self._engine.name

    @property
    def reports_inactive(self) -> bool:
        """Whether the wrapped engine reports an inactive class."""
        return self._engine.reports_inactive

    @property
    def engine(self):
        """The wrapped engine."""
        return self._engine

    @property
    def store(self) -> WatermarkStore:
        """The watermark store this auditor reads and extends."""
        return self._store

    # -- auditor surface ------------------------------------------------------

    def audit(self, request: AuditRequest) -> AuditReport:
        """Audit one target, delta when possible, and return the report."""
        return drain_steps(self.begin_audit(request))

    def begin_audit(self, request: AuditRequest):
        """Start a resumable audit; a generator returning the report."""
        request = coerce_request(request, engine_name=self._engine.name)
        return self._steps(request)

    # -- the delta pipeline ---------------------------------------------------

    def _steps(self, request: AuditRequest):
        clock = self._engine.client.clock
        as_of = request.as_of if request.as_of is not None else clock.now()
        if request.mode != "delta" or request.force_refresh:
            return (yield from self._full(request, as_of, reason=None))
        watermark = self._store.get(self._engine.name, request.target)
        if watermark is None:
            return (yield from self._full(request, as_of, "cold_start"))
        if as_of - watermark.as_of > self._ttl:
            return (yield from self._full(request, as_of, "ttl_expired"))

        client = self._engine.client
        client.pin_observation(as_of)
        client.reset_budgets()
        stopwatch = Stopwatch(clock)
        faults_before = client.faults_seen
        try:
            target = client.users_show(screen_name=request.target)
        except RetryableApiError:
            return (yield from self._full(request, as_of, "head_walk_fault"))
        if target.followers_count < watermark.followers_count:
            return (yield from self._full(request, as_of, "count_shrunk"))
        expected_new = target.followers_count - watermark.followers_count
        cap = self._delta_cap()
        if expected_new > cap:
            return (yield from self._full(request, as_of, "delta_too_large"))
        if watermark.followers_count == 0:
            if expected_new == 0:
                return self._serve_unchanged(watermark)
            return (yield from self._full(request, as_of, "anchor_lost"))
        yield

        walk = self._crawler.fetch_head_until(
            request.target, watermark.anchor_ids,
            max_new=expected_new + len(watermark.anchor_ids))
        self._note_pages(walk.pages)
        if walk.degraded or client.faults_seen > faults_before:
            return (yield from self._full(request, as_of, "head_walk_fault"))
        if not walk.anchored:
            return (yield from self._full(request, as_of, "anchor_lost"))
        new_ids = walk.new_ids
        if not new_ids and target.followers_count == watermark.followers_count:
            return self._serve_unchanged(watermark)
        if len(new_ids) > cap:
            return (yield from self._full(request, as_of, "delta_too_large"))
        yield

        # Classify *every* new arrival (a delta census — no sampling,
        # so the result is independent of audit_index and identical
        # across serial and batch scheduling).
        engine = self._engine
        if getattr(engine, "batch_active", lambda: False)():
            users = self._crawler.lookup_users_block(new_ids)
        else:
            users = self._crawler.lookup_users(new_ids)
        completeness = (len(users) / len(new_ids)) if new_ids else 1.0
        timelines = None
        criteria = engine.criteria
        if criteria is not None and criteria.needs_timeline:
            yield
            from ..analytics.base import _sample_user_ids
            sample_ids = _sample_user_ids(users)
            by_id = self._crawler.fetch_timelines(sample_ids, per_user=200)
            timelines = [by_id[uid] for uid in sample_ids]
            if users:
                completeness *= (
                    1.0 - self._crawler.last_timeline_shortfall / len(users))

        with self._tracer.span("delta.merge", clock, tool=engine.name,
                               target=request.target,
                               new_followers=len(new_ids)):
            verdicts = engine.classify_sample(users, timelines, as_of)
            delta_counts = dict(verdicts.counts())
            merged_counts = dict(watermark.verdict_counts)
            for label, count in delta_counts.items():
                merged_counts[label] = merged_counts.get(label, 0) + count
        self._note_classified(len(new_ids))
        total = watermark.sample_size + len(users)
        fake_pct, genuine_pct, inactive_pct = self._assemble(
            merged_counts, max(1, total))
        report = AuditReport(
            tool=engine.name,
            target=request.target,
            followers_count=target.followers_count,
            sample_size=total,
            fake_pct=fake_pct,
            genuine_pct=genuine_pct,
            inactive_pct=inactive_pct if engine.reports_inactive else None,
            response_seconds=stopwatch.elapsed(),
            cached=False,
            assessed_at=clock.now(),
            completeness=completeness,
            errors_seen=client.faults_seen - faults_before,
            details={
                "mode": "delta",
                "baseline_as_of": watermark.as_of,
                "new_followers": len(new_ids),
                "anchor_churned": walk.anchor_index,
                "head_pages": walk.pages,
                "delta_counts": delta_counts,
                "engine": engine.info().as_dict(),
            },
        )
        self.merged += 1
        self._count_outcome("merged")
        live = self._obs.live
        if live is not None:
            live.on_audit(engine.name, clock.now(), cached=False,
                          completeness=completeness)
            live.note("audits.delta", clock.now())
        if completeness == 1.0:
            anchor = (tuple(new_ids) + tuple(watermark.anchor_ids)
                      )[:self._anchor_depth]
            self._store.put(replace(
                watermark,
                followers_count=target.followers_count,
                anchor_ids=anchor,
                verdict_counts=merged_counts,
                sample_size=total,
                updated_at=as_of,
                report=report,
            ))
        return report

    #: Fallback reasons that carry *evidence the frame changed* (or
    #: drifted past trusting).  These bypass the engine's own result
    #: cache: a cached report is exactly as stale as the watermark the
    #: delta path just refused to extend.  ``cold_start`` and
    #: ``head_walk_fault`` carry no such evidence, so they keep the
    #: engine's authentic caching behaviour.
    _FORCED_FALLBACKS = frozenset(
        {"ttl_expired", "count_shrunk", "anchor_lost", "delta_too_large"})

    def _full(self, request: AuditRequest, as_of: float,
              reason: Optional[str]):
        """Run the wrapped engine's full audit, then capture a watermark."""
        if reason is not None:
            self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1
            self._count_fallback(reason)
            self._count_outcome("fallback")
        bound = request.bound_to(self._engine.name, as_of=as_of, mode="full")
        if reason in self._FORCED_FALLBACKS and not bound.force_refresh:
            bound = replace(bound, force_refresh=True)
        report = yield from self._engine.begin_audit(bound)
        self._capture(bound, report, as_of)
        return report

    def _serve_unchanged(self, watermark: AuditWatermark) -> AuditReport:
        """Replay the watermarked baseline for an unchanged account."""
        self.served_unchanged += 1
        self._count_outcome("unchanged")
        clock = self._engine.client.clock
        live = self._obs.live
        if live is not None:
            live.on_audit(self._engine.name, clock.now(), cached=True,
                          completeness=watermark.report.completeness)
            live.note("audits.delta", clock.now())
        return watermark.report

    def _capture(self, request: AuditRequest, report: AuditReport,
                 as_of: float) -> None:
        """Watermark a finished full audit (best-effort, one head page).

        Only complete, freshly computed audits seed a watermark: a
        cached report's counts may predate the engine's last
        classification, and a degraded audit's frame is not a census
        of anything.  The capture itself costs one ``followers/ids``
        page at the audit's pinned observation instant.
        """
        if report.cached or report.completeness != 1.0:
            return
        counts = getattr(self._engine, "last_verdict_counts", None)
        if counts is None:
            return
        client = self._engine.client
        client.pin_observation(as_of)
        try:
            page = client.followers_ids(
                screen_name=request.target, count=self._anchor_depth)
        except RetryableApiError:
            return
        self._store.put(AuditWatermark(
            engine=self._engine.name,
            target=request.target,
            followers_count=report.followers_count,
            anchor_ids=tuple(int(uid) for uid in page.ids),
            verdict_counts=dict(counts),
            sample_size=report.sample_size,
            as_of=as_of,
            updated_at=as_of,
            report=report,
        ))

    # -- helpers --------------------------------------------------------------

    def _delta_cap(self) -> int:
        """Most new arrivals worth classifying incrementally.

        Beyond the engine's own full-audit sample size a fresh audit
        examines no more accounts than the delta would, so falling
        back is at worst even — and it re-examines the tail for free.
        """
        if self._max_delta is not None:
            return self._max_delta
        from .scheduler import _LANE_SAMPLES
        return _LANE_SAMPLES.get(self._engine.name, 10_000)

    def _assemble(self, counts: Mapping[str, int],
                  total: int) -> Tuple[float, float, Optional[float]]:
        """Merged counts -> the engine's own percentage arithmetic.

        Mirrors each engine's report assembly so a delta report of a
        census frame carries the same percentages a full audit would
        print: FC rounds each share and gives genuine the remainder;
        Twitteraudit reports fake and its complement; the two
        three-class commercial tools use largest-remainder rounding.
        """
        fake = counts.get("fake", 0)
        inactive = counts.get("inactive", 0)
        if self._engine.name == "fc":
            fake_pct = round(100.0 * fake / total, 1)
            inactive_pct = round(100.0 * inactive / total, 1)
            return (fake_pct, round(100.0 - fake_pct - inactive_pct, 1),
                    inactive_pct)
        if not self._engine.reports_inactive:
            fake_pct = round(100.0 * fake / total, 1)
            return fake_pct, round(100.0 - fake_pct, 1), None
        from ..analytics.base import percentages
        pct = percentages({"fake": fake, "inactive": inactive,
                           "good": total - fake - inactive}, total)
        return pct["fake"], pct["good"], pct["inactive"]

    # -- telemetry ------------------------------------------------------------

    def _count_outcome(self, outcome: str) -> None:
        counter = self._outcome_counters.get(outcome)
        if counter is None:
            counter = self._registry.counter(
                "delta_audits_total",
                help="delta-mode audit requests by outcome",
                engine=self._engine.name, outcome=outcome)
            self._outcome_counters[outcome] = counter
        counter.inc()

    def _count_fallback(self, reason: str) -> None:
        counter = self._fallback_counters.get(reason)
        if counter is None:
            counter = self._registry.counter(
                "delta_fallbacks_total",
                help="delta audits degraded to full audits, by reason",
                engine=self._engine.name, reason=reason)
            self._fallback_counters[reason] = counter
        counter.inc()

    def _note_pages(self, pages: int) -> None:
        self.head_pages += pages
        if pages <= 0:
            return
        if self._pages_counter is None:
            self._pages_counter = self._registry.counter(
                "delta_head_pages_total",
                help="followers/ids pages fetched by anchored head walks",
                engine=self._engine.name)
        self._pages_counter.inc(pages)

    def _note_classified(self, count: int) -> None:
        self.new_classified += count
        if count <= 0:
            return
        if self._classified_counter is None:
            self._classified_counter = self._registry.counter(
                "delta_new_followers_total",
                help="new-head arrivals classified by delta merges",
                engine=self._engine.name)
        self._classified_counter.inc(count)
