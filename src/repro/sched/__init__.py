"""Rate-limit-aware batch audit scheduling (``repro.sched``).

The serial methodology of the paper — one engine, one target, one
fresh rate-limit window at a time — is faithful but slow when driving
a whole testbed.  This package schedules many audits across the four
engines' independent credential pools on the simulated clock:

* :class:`~repro.sched.scheduler.BatchAuditScheduler` — the
  deterministic event-loop scheduler (lanes, slots, coalescing,
  observation pinning, backpressure);
* :class:`~repro.sched.cache.AcquisitionCache` — the cross-engine
  follower-page/profile/timeline cache batched audits share;
* :class:`~repro.sched.report.BatchReport` /
  :class:`~repro.sched.report.BatchItem` — per-request scheduling
  history and the whole-batch makespan accounting;
* :class:`~repro.sched.incremental.DeltaAuditor` /
  :class:`~repro.sched.incremental.WatermarkStore` — watermarked
  head-only re-audits: a full audit leaves an
  :class:`~repro.sched.incremental.AuditWatermark` behind, and a
  ``mode="delta"`` request re-walks only the newest follower-list
  prefix, classifying just the new arrivals.

See ``docs/scheduler.md`` for the design rationale and the guarantees
(determinism, serial-equality of percentages) the test suite pins.
"""

from .cache import AcquisitionCache
from .incremental import (
    DEFAULT_ANCHOR_DEPTH,
    DEFAULT_DELTA_TTL,
    AuditWatermark,
    DeltaAuditor,
    WatermarkStore,
)
from .report import BatchItem, BatchReport, LaneSummary
from .scheduler import BatchAuditScheduler, estimate_audit_seconds

__all__ = [
    "AcquisitionCache",
    "AuditWatermark",
    "BatchAuditScheduler",
    "BatchItem",
    "BatchReport",
    "DEFAULT_ANCHOR_DEPTH",
    "DEFAULT_DELTA_TTL",
    "DeltaAuditor",
    "LaneSummary",
    "WatermarkStore",
    "estimate_audit_seconds",
]
