"""Batch-run accounting: per-request items and the whole-batch report.

The scheduler's answer to "what happened" is deliberately richer than
a list of :class:`~repro.audit.AuditReport`\\ s: each submitted request
becomes a :class:`BatchItem` carrying its scheduling history (lane,
slot, start/finish instants, coalesced duplicates, errors), and the
batch as a whole becomes a :class:`BatchReport` whose headline number
is the **makespan** — the simulated wall time from admission epoch to
the last lane falling idle, the quantity the throughput benchmark
compares against the serial baseline.

Everything here serialises deterministically: ``to_json()`` emits
sorted keys and only simulated instants, so a fixed seed yields a
byte-identical document (and :meth:`BatchReport.digest` a stable
fingerprint) run after run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..audit import AuditReport, AuditRequest


@dataclass
class BatchItem:
    """One admitted audit request and everything that became of it.

    ``seq`` is the admission sequence number (0-based, batch-wide);
    ``coalesced`` counts *additional* submissions folded into this item
    by duplicate-request coalescing.  Exactly one of ``report`` /
    ``error`` is set once the batch ran; both are ``None`` while the
    item is still pending.
    """

    request: AuditRequest
    seq: int
    lane: str
    coalesced: int = 0
    audit_index: Optional[int] = None
    slot: Optional[int] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    report: Optional[AuditReport] = None
    error: Optional[str] = None

    @property
    def done(self) -> bool:
        """Whether the item has an outcome (a report or an error)."""
        return self.report is not None or self.error is not None

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready view of the item (deterministic field set)."""
        report = None
        if self.report is not None:
            report = {
                "tool": self.report.tool,
                "target": self.report.target,
                "followers_count": self.report.followers_count,
                "sample_size": self.report.sample_size,
                "fake_pct": self.report.fake_pct,
                "genuine_pct": self.report.genuine_pct,
                "inactive_pct": self.report.inactive_pct,
                "response_seconds": round(self.report.response_seconds, 6),
                "cached": self.report.cached,
                "completeness": self.report.completeness,
                "errors_seen": self.report.errors_seen,
            }
        return {
            "seq": self.seq,
            "target": self.request.target,
            "lane": self.lane,
            "priority": self.request.priority,
            "force_refresh": self.request.force_refresh,
            "coalesced": self.coalesced,
            "audit_index": self.audit_index,
            "slot": self.slot,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "report": report,
            "error": self.error,
        }


@dataclass(frozen=True)
class LaneSummary:
    """Per-engine-lane aggregates of one batch run."""

    lane: str
    slots: int
    items: int
    errors: int
    busy_seconds: float

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready view of the lane summary."""
        return {
            "lane": self.lane,
            "slots": self.slots,
            "items": self.items,
            "errors": self.errors,
            "busy_seconds": round(self.busy_seconds, 6),
        }


@dataclass(frozen=True)
class BatchReport:
    """Outcome of one ``BatchAuditScheduler.run()``.

    ``makespan_seconds`` is simulated wall time from the admission
    epoch to the last slot finishing; ``serial`` records which
    execution mode produced it.  ``items`` are in admission order.
    """

    epoch: float
    makespan_seconds: float
    serial: bool
    items: Tuple[BatchItem, ...]
    lanes: Tuple[LaneSummary, ...]
    coalesced_hits: int = 0
    cache_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def completed(self) -> List[BatchItem]:
        """Items that produced a report."""
        return [item for item in self.items if item.report is not None]

    @property
    def failed(self) -> List[BatchItem]:
        """Items that ended in an error."""
        return [item for item in self.items if item.error is not None]

    def reports_for(self, target: str) -> Dict[str, AuditReport]:
        """Completed reports for one target, keyed by engine lane."""
        wanted = target.lower()
        return {item.lane: item.report for item in self.items
                if item.report is not None
                and item.request.target.lower() == wanted}

    def to_json(self) -> str:
        """Deterministic JSON document of the whole batch."""
        payload = {
            "epoch": self.epoch,
            "makespan_seconds": round(self.makespan_seconds, 6),
            "serial": self.serial,
            "coalesced_hits": self.coalesced_hits,
            "cache_stats": dict(sorted(self.cache_stats.items())),
            "lanes": [lane.to_dict() for lane in self.lanes],
            "items": [item.to_dict() for item in self.items],
        }
        return json.dumps(payload, sort_keys=True, indent=2)

    def digest(self) -> str:
        """SHA-256 fingerprint of :meth:`to_json` (determinism checks)."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def render(self) -> str:
        """Human-readable batch summary table."""
        lines = [
            f"Batch of {len(self.items)} audits "
            f"({'serial' if self.serial else 'scheduled'}) — "
            f"makespan {self.makespan_seconds:.0f} s, "
            f"{self.coalesced_hits} coalesced",
            f"{'target':<16} {'lane':<13} {'slot':>4} {'secs':>8} "
            f"{'fake%':>6} {'good%':>6} {'inact%':>6}  outcome",
        ]
        for item in self.items:
            if item.report is not None:
                r = item.report
                inact = "-" if r.inactive_pct is None else f"{r.inactive_pct:.1f}"
                outcome = "cached" if r.cached else "fresh"
                if r.completeness < 1.0:
                    outcome += f" ({r.completeness:.0%} complete)"
                lines.append(
                    f"{item.request.target:<16} {item.lane:<13} "
                    f"{item.slot if item.slot is not None else '-':>4} "
                    f"{r.response_seconds:>8.1f} {r.fake_pct:>6.1f} "
                    f"{r.genuine_pct:>6.1f} {inact:>6}  {outcome}")
            else:
                lines.append(
                    f"{item.request.target:<16} {item.lane:<13} "
                    f"{'-':>4} {'-':>8} {'-':>6} {'-':>6} {'-':>6}  "
                    f"error: {item.error}")
        return "\n".join(lines)
