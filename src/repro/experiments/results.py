"""Experiment E4 — Table III: fake-follower analysis results.

Runs the four engines over the full twenty-account testbed and
tabulates inactive / fake / genuine percentages side by side, together
with the quantitative claims the paper draws from its Table III:

* the engines generally disagree;
* disagreement grows with the target's follower count;
* Twitteraudit and Socialbakers report similar *genuine* percentages;
* Socialbakers and StatusPeople report substantially fewer inactives
  than FC (head-of-list samples under-represent long-term, more often
  inactive, followers);
* StatusPeople minimises the genuine percentage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..audit import AuditReport, AuditRequest
from ..core.clock import SimClock
from ..core.errors import ConfigurationError
from ..faults.plan import FaultPlan
from ..fc.training import TrainedDetector
from ..obs.analysis import render_phase_attribution
from ..obs.provenance import (
    ProvenanceCollector,
    build_disagreement,
    render_rule_table,
)
from ..obs.runtime import get_observability
from ..sched import BatchAuditScheduler
from ..twitter.account import Label
from .report import TextTable, pct
from .response_time import ENGINE_ORDER, build_engines
from .testbed import (
    DEFAULT_MAX_FOLLOWERS,
    PAPER_ACCOUNTS,
    PaperAccount,
    build_paper_world,
)

_TRUTH_ORDER = (Label.INACTIVE, Label.FAKE, Label.GENUINE)


@dataclass(frozen=True)
class Table3Row:
    """Measured audit reports for one target, one per engine."""

    account: PaperAccount
    followers_used: int
    reports: Dict[str, AuditReport]
    #: Ground-truth composition percentages (inactive, fake, genuine),
    #: measured on the synthetic population itself.
    truth: Tuple[float, float, float]

    def fake_estimates(self) -> List[float]:
        """Every engine's fake percentage (the disagreement signal)."""
        return [self.reports[tool].fake_pct for tool in ENGINE_ORDER]

    def disagreement(self) -> float:
        """Population standard deviation of the fake estimates."""
        estimates = self.fake_estimates()
        mean = sum(estimates) / len(estimates)
        return math.sqrt(
            sum((e - mean) ** 2 for e in estimates) / len(estimates))


@dataclass(frozen=True)
class DisagreementAnalysis:
    """The claims the paper extracts from Table III, quantified."""

    #: Pearson correlation between log10(followers) and per-target
    #: disagreement (paper: "the more followers a target has, the less
    #: the fake followers analytics agree" => positive).
    followers_vs_disagreement: float
    #: Mean |TA genuine - SB genuine| (paper: "similar" => small).
    ta_sb_genuine_gap: float
    #: Mean (FC inactive - SB inactive) (paper: positive and large).
    fc_minus_sb_inactive: float
    #: Mean (FC inactive - SP inactive) over the average tier.
    fc_minus_sp_inactive: float
    #: How often StatusPeople reports the lowest genuine percentage.
    sp_lowest_genuine_fraction: float


def run_table3(
        *,
        seed: int = 42,
        accounts: Optional[Sequence[PaperAccount]] = None,
        max_followers: Optional[int] = DEFAULT_MAX_FOLLOWERS,
        detector: Optional[TrainedDetector] = None,
        truth_sample: int = 4000,
        faults: Optional[FaultPlan] = None,
        mode: str = "batch",
        lane_slots: int = 2,
        explain: bool = False,
) -> Tuple[List[Table3Row], str]:
    """Run all four engines over the testbed and render Table III.

    ``mode="batch"`` (the default) schedules all ``len(accounts) × 4``
    audits through the :class:`~repro.sched.BatchAuditScheduler` —
    lanes overlap in simulated time, each lane runs ``lane_slots``
    crawler instances, and raw acquisitions are shared — which cuts
    the testbed's makespan severalfold.  Because the scheduler pins
    every audit to the batch epoch and replays the serial per-lane
    sampling indices, the resulting percentages are **identical** to
    ``mode="serial"`` (the legacy one-audit-at-a-time loop); the
    throughput benchmark asserts exactly that.

    ``explain`` attaches a provenance collector to every engine and
    appends, per account, the rule-fire table and the cross-engine
    disagreement drill-down to the rendering — turning Table III's
    disagreement *numbers* into rule-level *explanations*.  Verdicts
    and row values are byte-identical with or without it.
    """
    if mode not in ("batch", "serial"):
        raise ConfigurationError(
            f"mode must be 'batch' or 'serial': {mode!r}")
    if accounts is None:
        accounts = list(PAPER_ACCOUNTS)
    obs = get_observability()
    trace_mark = len(obs.tracer)
    tiers = tuple(sorted({account.tier for account in accounts}))
    world = build_paper_world(
        seed, SimClock().now(), tiers=tiers, max_followers=max_followers)
    clock = SimClock(world.ref_time)
    collector = ProvenanceCollector() if explain else None

    rows: List[Table3Row] = []
    if mode == "serial":
        engines = build_engines(world, clock, detector, seed=seed,
                                faults=faults, provenance=collector)
        for account in accounts:
            reports: Dict[str, AuditReport] = {}
            followers_used = 0
            for tool in ENGINE_ORDER:
                report = engines[tool].audit(
                    AuditRequest(target=account.handle, engine=tool))
                reports[tool] = report
                followers_used = report.followers_count
            rows.append(_truth_row(world, account, followers_used, reports,
                                   clock.now(), truth_sample, seed))
    else:
        scheduler = BatchAuditScheduler(
            world, clock, seed=seed, detector=detector, faults=faults,
            lane_slots=lane_slots, provenance=collector)
        epoch = clock.now()
        scheduler.submit_batch(
            [AuditRequest(target=account.handle) for account in accounts])
        batch = scheduler.run()
        for account in accounts:
            reports = batch.reports_for(account.handle)
            followers_used = max(
                (report.followers_count for report in reports.values()),
                default=0)
            # Truth is measured at the batch epoch — the same pinned
            # instant every scheduled audit observed the graph at.
            rows.append(_truth_row(world, account, followers_used, reports,
                                   epoch, truth_sample, seed))

    rendered = render_table3(rows)
    if collector is not None:
        for account in accounts:
            records = collector.for_target(account.handle)
            if len(records) < 2:
                continue
            rendered += ("\n\n" + render_rule_table(records)
                         + "\n\n"
                         + build_disagreement(account.handle,
                                              records).render())
    if obs.enabled:
        rendered += "\n\n" + render_phase_attribution(
            obs.tracer.spans()[trace_mark:])
    return rows, rendered


def _truth_row(world, account: PaperAccount, followers_used: int,
               reports: Dict[str, AuditReport], truth_at: float,
               truth_sample: int, seed: int) -> Table3Row:
    """Assemble one Table III row with its ground-truth composition."""
    population = world.population(account.handle)
    composition = population.composition(
        truth_at, sample=truth_sample, seed=seed)
    truth = tuple(
        round(100.0 * composition[label], 1) for label in _TRUTH_ORDER)
    return Table3Row(
        account=account,
        followers_used=followers_used,
        reports=reports,
        truth=truth,  # type: ignore[arg-type]
    )


def render_table3(rows: Sequence[Table3Row]) -> str:
    """Render measured Table III next to the paper's reported values."""
    table = TextTable(
        ["Twitter profile", "followers",
         "FC inact/fake/good", "TA fake/good",
         "SP inact/fake/good", "SB inact/fake/good",
         "truth inact/fake/good", "paper FC", "paper TA", "paper SP",
         "paper SB"],
        title="Table III: fake follower analysis results "
              "(* = followers materialised at reduced scale)",
    )
    for row in rows:
        account = row.account
        fc, ta = row.reports["fc"], row.reports["twitteraudit"]
        sp, sb = row.reports["statuspeople"], row.reports["socialbakers"]
        scaled = "*" if row.followers_used < account.followers else ""
        table.add_row(
            "@" + account.handle,
            f"{row.followers_used}{scaled}",
            _triple(fc), f"{pct(ta.fake_pct)}/{pct(ta.genuine_pct)}",
            _triple(sp), _triple(sb),
            "/".join(f"{x:.0f}" for x in row.truth),
            "/".join(f"{x:g}" for x in account.fc),
            f"{account.ta_fake:g}",
            "/".join(f"{x:g}" for x in account.sp),
            "/".join(f"{x:g}" for x in account.sb),
        )
    return table.render()


def analyse_disagreement(rows: Sequence[Table3Row]) -> DisagreementAnalysis:
    """Quantify the paper's Table III observations on measured rows."""
    if len(rows) < 3:
        raise ValueError("need at least 3 rows for the analysis")
    xs = [math.log10(max(10, row.followers_used)) for row in rows]
    ys = [row.disagreement() for row in rows]
    correlation = _pearson(xs, ys)

    ta_sb_gap = sum(
        abs(row.reports["twitteraudit"].genuine_pct
            - row.reports["socialbakers"].genuine_pct)
        for row in rows) / len(rows)
    fc_sb_inact = sum(
        (row.reports["fc"].inactive_pct or 0.0)
        - (row.reports["socialbakers"].inactive_pct or 0.0)
        for row in rows) / len(rows)
    fc_sp_inact = sum(
        (row.reports["fc"].inactive_pct or 0.0)
        - (row.reports["statuspeople"].inactive_pct or 0.0)
        for row in rows) / len(rows)
    sp_lowest = sum(
        1 for row in rows
        if row.reports["statuspeople"].genuine_pct
        <= min(row.reports[tool].genuine_pct for tool in ENGINE_ORDER)
    ) / len(rows)
    return DisagreementAnalysis(
        followers_vs_disagreement=correlation,
        ta_sb_genuine_gap=ta_sb_gap,
        fc_minus_sb_inactive=fc_sb_inact,
        fc_minus_sp_inactive=fc_sp_inact,
        sp_lowest_genuine_fraction=sp_lowest,
    )


def _pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    denom = math.sqrt(var_x * var_y)
    return cov / denom if denom else 0.0


def _triple(report: AuditReport) -> str:
    return (f"{pct(report.inactive_pct)}/{pct(report.fake_pct)}/"
            f"{pct(report.genuine_pct)}")
