"""Plain-text table rendering for experiment reports.

The benches print the same rows the paper's tables report; this module
keeps the formatting in one place.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.errors import ConfigurationError


class TextTable:
    """A fixed-column ASCII table."""

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        if not headers:
            raise ConfigurationError("a table needs at least one column")
        self._headers = [str(h) for h in headers]
        self._rows: List[List[str]] = []
        self._title = title

    def add_row(self, *cells: object) -> None:
        """Append one row; the cell count must match the headers."""
        if len(cells) != len(self._headers):
            raise ConfigurationError(
                f"expected {len(self._headers)} cells, got {len(cells)}")
        self._rows.append([_format(cell) for cell in cells])

    def render(self) -> str:
        """Render the table as aligned plain text."""
        widths = [len(h) for h in self._headers]
        for row in self._rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(
                cell.ljust(width) for cell, width in zip(cells, widths)
            ).rstrip()

        separator = "  ".join("-" * width for width in widths)
        parts = []
        if self._title:
            parts.append(self._title)
        parts.append(line(self._headers))
        parts.append(separator)
        parts.extend(line(row) for row in self._rows)
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()


def _format(cell: object) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)


def pct(value: Optional[float]) -> str:
    """Format a 0-100 percentage cell, '-' when not reported."""
    if value is None:
        return "-"
    return f"{value:.1f}"
