"""Ablation A6 — Section IV-B's hidden assumption, stress-tested live.

The paper's ordering experiment concludes that "all the new entries in
all the lists of followers were always added at the end".  That check
implicitly assumes nobody *unfollows* during the observation window —
an unfollow removes an entry from the middle of the list and breaks the
suffix structure the diff relies on.

This experiment reruns the daily-snapshot protocol on live simulations
with increasing churn and reports how often the day-pair check fails.
At zero churn the paper's result reproduces exactly; with realistic
churn the protocol still *detects* that something moved (a feature:
silent corruption would be worse), but the clean "always at the end"
phrasing no longer holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.clock import SimClock
from ..core.errors import ConfigurationError
from ..core.timeutil import DAY, HOUR, PAPER_EPOCH, YEAR
from ..twitter.account import Account
from ..twitter.graph import SocialGraph
from ..twitter.live import ChurnProcess, LiveSimulation, OrganicGrowthProcess
from .ordering import check_head_growth
from .report import TextTable

_TARGET_ID = 77


@dataclass(frozen=True)
class ChurnSensitivityRow:
    """Ordering-check outcome at one churn level."""

    daily_churn: float
    days: int
    day_pairs: int
    violations: int
    new_followers: int

    @property
    def violation_rate(self) -> float:
        """Fraction of day pairs failing the suffix check."""
        if self.day_pairs == 0:
            return 0.0
        return self.violations / self.day_pairs


def _snapshots(simulation: LiveSimulation, days: int) -> List[Tuple[int, ...]]:
    """Daily newest-first snapshots of the target's follower list."""
    graph = simulation.graph
    snapshots: List[Tuple[int, ...]] = []
    for __ in range(days):
        now = simulation.now()
        ids = graph.follower_ids(
            _TARGET_ID, 0, graph.follower_count(_TARGET_ID, now), now)
        snapshots.append(tuple(reversed(ids)))
        simulation.run_for(DAY)
    return snapshots


def run_churn_sensitivity(
        *,
        churn_levels: Sequence[float] = (0.0, 0.02, 0.08, 0.25),
        days: int = 8,
        growth_per_day: float = 120.0,
        warmup_days: int = 5,
        seed: int = 42,
) -> Tuple[List[ChurnSensitivityRow], str]:
    """Measure ordering-check violations across churn levels."""
    if days < 2:
        raise ConfigurationError(f"days must be >= 2: {days!r}")
    rows: List[ChurnSensitivityRow] = []
    for level in churn_levels:
        graph = SocialGraph(seed=1)
        graph.add_account(Account(
            user_id=_TARGET_ID, screen_name="ordered",
            created_at=PAPER_EPOCH - YEAR,
            statuses_count=200, last_tweet_at=PAPER_EPOCH - HOUR))
        simulation = LiveSimulation(
            graph, SimClock(PAPER_EPOCH), seed=seed)
        simulation.add_process(
            OrganicGrowthProcess(_TARGET_ID, per_day=growth_per_day))
        simulation.run_for(warmup_days * DAY)
        if level > 0:
            simulation.add_process(ChurnProcess(_TARGET_ID, level))
        snapshots = _snapshots(simulation, days)
        new_total, violations = check_head_growth(snapshots)
        rows.append(ChurnSensitivityRow(
            daily_churn=level,
            days=days,
            day_pairs=days - 1,
            violations=violations,
            new_followers=new_total,
        ))

    table = TextTable(
        ["daily churn", "day pairs", "suffix violations",
         "violation rate", "clean arrivals counted"],
        title="A6: Section IV-B's ordering check vs audience churn",
    )
    for row in rows:
        table.add_row(
            f"{row.daily_churn:.0%}",
            row.day_pairs,
            row.violations,
            f"{row.violation_rate:.0%}",
            row.new_followers,
        )
    return rows, table.render()
