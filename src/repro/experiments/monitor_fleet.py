"""A monitored fleet on live telemetry: the ``repro monitor`` workload.

The paper's introduction is one account watched by one monitor; an
operator running such a watchdog in production watches a *fleet* and
needs to know, continuously, whether the watchdog itself is healthy.
This module stages that scenario end to end on the live-simulation
backend:

* ``accounts`` organically growing targets on one
  :class:`~repro.twitter.live.LiveSimulation`;
* a :class:`~repro.growth.GrowthMonitor` polling each daily under a
  deterministic :class:`~repro.faults.FaultPlan` (a mid-run 503 storm
  degrades poll success);
* a :class:`~repro.obs.live.LiveTelemetry` plane: poll-success SLO with
  dual-window burn-rate alerting, the detector bridge raising
  ``burst:<handle>`` alerts when one target buys followers mid-run;
* burst alerts trigger an on-demand FC audit through the batch
  scheduler on a **detached** clock, so investigation cost never skews
  the monitoring timeline;
* a :class:`~repro.obs.live.FleetDashboard` snapshotting every tick.

Everything is keyed to the fleet clock's tick instants, which are
identical whether alert-triggered audits run serially or scheduled —
so snapshots and the alert log are byte-identical across the two modes
(the CI smoke job diffs them against goldens).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..audit import AuditRequest
from ..core.clock import SimClock
from ..core.errors import ConfigurationError, RetryableApiError
from ..core.timeutil import DAY, HOUR, PAPER_EPOCH, YEAR
from ..faults.plan import BurstSchedule, FaultPlan, InjectorSpec
from ..growth import BurstDetector, GrowthMonitor
from ..market import CHEAP_BULK, Marketplace
from ..obs.live import (
    DetectorBridge,
    FleetDashboard,
    LiveTelemetry,
    SloSpec,
)
from ..obs.provenance import ProvenanceCollector
from ..obs.runtime import Observability, get_observability, observed
from ..sched import BatchAuditScheduler, WatermarkStore
from ..twitter import (
    Account,
    LiveSimulation,
    OrganicGrowthProcess,
    SocialGraph,
    TweetingProcess,
    add_simple_target,
    build_columnar_world,
    fake_purchase_burst,
)

#: First user id of the fleet's targets (``fleet_0`` upward).
FLEET_BASE_ID = 52_000

#: Streams shown on the dashboard, in display order.  The list is
#: explicit (not "everything registered") so the snapshot shape is
#: stable even if instrumented components grow new streams.
FLEET_PANELS: Tuple[str, ...] = (
    "polls.total",
    "polls.ok",
    "polls.failed",
    "polls.faults",
    "followers.fleet",
    "api.requests",
    "api.errors",
    "api.retries",
    "audits.completed",
    "audits.fc",
    "sched.batch_runs",
    "sched.batch_audits",
)

#: Drift panels added when ``FleetSpec.provenance`` is on: the
#: per-window FC rule-fire streams the provenance collector feeds
#: through the live plane (sample sizes plus one stream per rule).
RULE_PANELS: Tuple[str, ...] = (
    "rules.fc",
    "rules.fc.fc.inactive_90d",
    "rules.fc.fc.classifier_fake",
)


@dataclass(frozen=True)
class FleetSpec:
    """Everything that parameterises one fleet-monitoring run.

    The default scenario (200 ticks) contains two incidents: target
    ``fleet_1`` buys ``purchase_quantity`` followers on tick
    ``purchase_tick`` (a burst alert next poll), and a 503 storm hits
    the poll path for ``storm_days`` days from ``storm_start_tick``
    (a burn-rate page that resolves once the fast window drains).
    """

    seed: int = 42
    accounts: int = 3
    ticks: int = 200
    organic_per_day: float = 150.0
    purchase_tick: int = 30
    purchase_quantity: int = 4000
    storm_start_tick: int = 60
    storm_days: int = 4
    fault_probability: float = 0.02
    storm_multiplier: float = 45.0
    slo_objective: float = 0.98
    burn_threshold: float = 10.0
    burst_threshold: float = 6.0
    burst_min_excess: int = 500
    snapshot_every: int = 1
    serial: bool = False
    #: Record rule-level provenance on alert-triggered FC audits and
    #: add the ``rules.fc*`` drift panels to the dashboard.  Off by
    #: default: the golden alert logs and snapshot shapes are
    #: byte-identical unless asked for.
    provenance: bool = False
    #: Run the fleet on the lazy columnar substrate instead of the
    #: event-driven :class:`~repro.twitter.live.LiveSimulation`:
    #: growth lives in each target's arrival schedule (the purchase is
    #: a :class:`~repro.twitter.PostRefBurst`), and polling goes
    #: through :meth:`~repro.growth.GrowthMonitor.poll_fleet` (100
    #: profiles per ``users/lookup`` request).  This is what makes a
    #: thousand-account fleet affordable — and is required for
    #: ``accounts`` much beyond a handful.
    columnar: bool = False
    #: Audit alerted accounts with ``mode="delta"`` requests backed by
    #: one run-wide watermark store: the first audit of a handle is a
    #: full audit that leaves a watermark, every re-audit walks only
    #: the follower-list head (see :mod:`repro.sched.incremental`).
    delta: bool = False
    #: Every N ticks (0 = never), re-audit every previously alerted
    #: handle — the watchlist workload where delta re-audits pay off.
    reaudit_every: int = 0
    #: Historical follower base of each columnar target (plus a small
    #: deterministic per-index spread).
    base_followers: int = 900

    def __post_init__(self) -> None:
        if self.accounts < 1:
            raise ConfigurationError(
                f"accounts must be >= 1: {self.accounts!r}")
        if self.ticks < 1:
            raise ConfigurationError(f"ticks must be >= 1: {self.ticks!r}")
        if self.snapshot_every < 1:
            raise ConfigurationError(
                f"snapshot_every must be >= 1: {self.snapshot_every!r}")
        if not 0.0 < self.slo_objective < 1.0:
            raise ConfigurationError(
                f"slo_objective must be in (0, 1): {self.slo_objective!r}")
        if self.purchase_tick < 1 or self.storm_start_tick < 1:
            raise ConfigurationError(
                "purchase_tick and storm_start_tick must be >= 1")
        if self.reaudit_every < 0:
            raise ConfigurationError(
                f"reaudit_every must be >= 0: {self.reaudit_every!r}")
        if self.base_followers < 1:
            raise ConfigurationError(
                f"base_followers must be >= 1: {self.base_followers!r}")

    @property
    def handles(self) -> Tuple[str, ...]:
        """The fleet's target handles, in polling order."""
        return tuple(f"fleet_{index}" for index in range(self.accounts))

    @property
    def buyer(self) -> str:
        """The handle that buys followers mid-run."""
        return self.handles[min(1, self.accounts - 1)]

    def fault_plan(self, start: float) -> FaultPlan:
        """The poll path's weather: base 503 noise plus one storm."""
        storm = BurstSchedule(
            period=(self.ticks + 400) * DAY,
            duration=self.storm_days * DAY,
            multiplier=self.storm_multiplier,
            phase=start + self.storm_start_tick * DAY,
        )
        return FaultPlan(injectors=(InjectorSpec(
            kind="transient_503",
            probability=self.fault_probability,
            resources=("users/lookup",),
            burst=storm,
        ),), seed=self.seed + 17)


@dataclass
class FleetResult:
    """Outcome of one :func:`run_monitor_fleet` run."""

    spec: FleetSpec
    live: LiveTelemetry
    snapshots: List[Dict[str, object]] = field(default_factory=list)
    frames: List[str] = field(default_factory=list)
    audits: List[Dict[str, object]] = field(default_factory=list)
    followers: Dict[str, int] = field(default_factory=dict)
    poll_failures: int = 0

    @property
    def alerts(self):
        """The run's append-only alert log."""
        return self.live.alerts

    def summary(self) -> str:
        """A compact after-action report of the run."""
        fired, resolved = self.alerts.counts()
        lines = [
            f"monitored {self.spec.accounts} accounts for "
            f"{self.spec.ticks} days "
            f"({'serial' if self.spec.serial else 'batch'} audits)",
            f"  poll failures: {self.poll_failures}",
            f"  alerts: {fired} fired, {resolved} resolved, "
            f"{len(self.alerts.active())} still active",
        ]
        for event in self.alerts.events:
            details = dict(event.details)
            extra = ""
            if event.name.startswith("burst:") and event.kind == "fire":
                extra = (f" (z = {details.get('z_score', 0.0):.1f}, "
                         f"excess ~{details.get('excess', 0.0):.0f})")
            elif event.name.startswith("slo:") and event.kind == "fire":
                extra = (f" (burn fast {details.get('fast_burn', 0.0):.1f} / "
                         f"slow {details.get('slow_burn', 0.0):.1f})")
            day = (event.time - PAPER_EPOCH) / DAY
            lines.append(
                f"    day {day:6.1f}  {event.kind:<7} {event.name}{extra}")
        for audit in self.audits:
            lines.append(
                f"  audit @{audit['handle']} on tick {audit['tick']}: "
                f"{audit['fake_pct']}% fake "
                f"({audit['sample_size']} sampled)")
        for handle in sorted(self.followers):
            lines.append(
                f"  @{handle}: {self.followers[handle]} followers")
        return "\n".join(lines)


def _build_fleet(spec: FleetSpec, start: float) -> LiveSimulation:
    """The fleet's graph, accounts, and background processes."""
    graph = SocialGraph(seed=spec.seed)
    for index, handle in enumerate(spec.handles):
        graph.add_account(Account(
            user_id=FLEET_BASE_ID + index,
            screen_name=handle,
            created_at=start - 2 * YEAR - index * 30 * DAY,
            statuses_count=1200 + 37 * index,
            last_tweet_at=start - HOUR,
            followers_count=0,
            friends_count=200 + 11 * index,
        ))
    simulation = LiveSimulation(graph, SimClock(start), seed=spec.seed + 1)
    for index in range(spec.accounts):
        simulation.add_process(OrganicGrowthProcess(
            FLEET_BASE_ID + index, per_day=spec.organic_per_day))
        simulation.add_process(TweetingProcess(
            FLEET_BASE_ID + index, per_day=4.0))
    return simulation


def _build_columnar_fleet(spec: FleetSpec, start: float):
    """The fleet as lazy columnar targets: growth in the schedules.

    Each target trickles ``organic_per_day`` new followers; the buyer
    additionally receives its purchase as an all-fake burst exactly
    ``purchase_tick`` days in.  Nothing is materialised up front, so a
    thousand-target fleet costs registration time only.
    """
    world = build_columnar_world(seed=spec.seed, ref_time=start)
    for index, handle in enumerate(spec.handles):
        bursts = ()
        if handle == spec.buyer:
            bursts = (fake_purchase_burst(
                float(spec.purchase_tick), spec.purchase_quantity),)
        add_simple_target(
            world, handle,
            spec.base_followers + 37 * (index % 13),
            0.25, 0.10, 0.65,
            daily_new_followers=spec.organic_per_day,
            post_ref_bursts=bursts)
    return world


def _build_live(spec: FleetSpec, fleet_total,
                start: float) -> LiveTelemetry:
    """The telemetry plane: streams, SLO rule, detector bridge.

    ``fleet_total`` is a zero-argument callable returning the fleet's
    current total follower count (the substrates count differently).
    """
    live = LiveTelemetry(origin=start, pane_width=DAY)
    live.gauge_stream("followers.fleet", lambda: float(fleet_total()))
    # Pre-create the SLO streams so evaluation never references a
    # stream that has not seen its first event yet.
    for name in ("polls.total", "polls.ok", "polls.failed"):
        live.value_stream(name)
    live.add_slo(SloSpec(
        name="poll-success",
        good_stream="polls.ok",
        total_stream="polls.total",
        objective=spec.slo_objective,
        fast_horizon=3 * DAY,
        slow_horizon=8 * DAY,
        burn_threshold=spec.burn_threshold,
        min_events=max(1, 2 * spec.accounts),
    ))
    live.attach_bridge(DetectorBridge(
        live.alerts,
        detector=BurstDetector(threshold=spec.burst_threshold,
                               min_excess=spec.burst_min_excess),
        origin=start,
    ))
    return live


def _alert_audits(spec: FleetSpec, world, handles: List[str], detector,
                  tick: int, now: float,
                  provenance: Optional[ProvenanceCollector] = None,
                  watermarks: Optional[WatermarkStore] = None
                  ) -> List[Dict[str, object]]:
    """Investigate burst alerts: FC audits on a detached clock.

    The scheduler gets a throwaway clock pinned to the fleet's current
    instant, so the (mode-dependent) makespan of the investigation
    never advances the monitoring timeline — the next poll happens at
    the same simulated instant whether audits ran serially or batched.

    With ``spec.delta`` on, requests go out as ``mode="delta"`` against
    the injected run-wide ``watermarks`` store: a handle's first audit
    is a full one that leaves a watermark, every later one walks only
    the follower-list head (and an unchanged account replays its
    watermarked report outright).
    """
    scheduler = BatchAuditScheduler(
        world, SimClock(now),
        engines=("fc",), lane_slots=1,
        detector=detector, seed=spec.seed,
        shared_cache=False, serial=spec.serial,
        provenance=provenance,
        watermarks=watermarks)
    mode = "delta" if spec.delta else "full"
    for handle in handles:
        scheduler.submit(AuditRequest(target=handle, as_of=now, mode=mode))
    batch = scheduler.run()
    outcomes = []
    for item in batch.items:
        report = item.report
        outcomes.append({
            "tick": tick,
            "handle": item.request.target,
            "engine": item.lane,
            "mode": (report.details.get("mode", "full")
                     if report is not None else mode),
            "fake_pct": report.fake_pct if report is not None else None,
            "sample_size": report.sample_size if report is not None else 0,
        })
    return outcomes


def run_monitor_fleet(spec: FleetSpec = FleetSpec(),
                      start: float = PAPER_EPOCH) -> FleetResult:
    """Run the fleet-monitoring scenario; returns the full result.

    Activates an observability context (reusing the caller's, when one
    is on) and attaches a live-telemetry plane for the duration, so
    the instrumented hot paths — API client, engines, scheduler — feed
    the streams without the workload threading a handle through them.
    """
    active = get_observability()
    context = active if isinstance(active, Observability) else None
    with observed(context) as obs:
        if obs.live is not None:
            raise ConfigurationError(
                "a live-telemetry plane is already attached; "
                "run_monitor_fleet needs its own")
        # The monitor polls over the API, which charges request latency
        # to its clock.  A separate poll clock keeps the simulation
        # clock advancing only through run_until(), so queued events
        # are never overtaken; the graph itself is shared.
        poll_clock = SimClock(start)
        if spec.columnar:
            world = _build_columnar_fleet(spec, start)
            populations = world.targets()
            live = _build_live(
                spec,
                lambda: sum(population.size_at(poll_clock.now())
                            for population in populations),
                start)
            obs.attach_live(live)
            try:
                return _run_columnar(spec, world, live, poll_clock, start)
            finally:
                obs.detach_live()
        simulation = _build_fleet(spec, start)
        graph = simulation.graph
        ids = [FLEET_BASE_ID + index for index in range(spec.accounts)]
        live = _build_live(
            spec,
            lambda: sum(graph.follower_count(user_id, poll_clock.now())
                        for user_id in ids),
            start)
        obs.attach_live(live)
        try:
            return _run(spec, simulation, live, poll_clock, start)
        finally:
            obs.detach_live()


def _run_columnar(spec: FleetSpec, world, live: LiveTelemetry,
                  poll_clock: SimClock, start: float) -> FleetResult:
    """The daily loop on the columnar substrate: batched fleet polls.

    The purchase needs no marketplace order — the buyer's arrival
    schedule already carries it as a post-reference burst — and each
    tick polls the whole fleet through ``users/lookup`` pages instead
    of one ``users/show`` per account.  With ``spec.reaudit_every``
    set, every previously alerted handle is re-audited on that cadence
    (the watchlist sweep that delta re-audits exist for).
    """
    monitor = GrowthMonitor(world, poll_clock, faults=spec.fault_plan(start))
    live.counter_stream(
        "polls.faults", lambda: float(monitor.client.faults_seen))
    panels = FLEET_PANELS + RULE_PANELS if spec.provenance else FLEET_PANELS
    dashboard = FleetDashboard(live, panels=panels,
                               horizon=3 * DAY, title="fleet health")
    result = FleetResult(spec=spec, live=live)
    collector = ProvenanceCollector() if spec.provenance else None
    watermarks = WatermarkStore() if spec.delta else None
    watchlist = set()
    fc_detector = None

    for tick in range(spec.ticks):
        tick_time = start + tick * DAY
        if poll_clock.now() < tick_time:
            poll_clock.advance_to(tick_time)
        events_before = len(live.alerts.events)
        counts = monitor.poll_fleet(spec.handles)
        at = poll_clock.now()
        for handle in spec.handles:
            live.note("polls.total", at)
            if handle in counts:
                result.followers[handle] = counts[handle]
                live.note("polls.ok", at)
            else:
                result.poll_failures += 1
                live.note("polls.failed", at)
        now = live.tick(poll_clock.now())
        burst_handles = sorted({
            event.name.split(":", 1)[1]
            for event in live.alerts.events[events_before:]
            if event.kind == "fire" and event.name.startswith("burst:")})
        due = list(burst_handles)
        if spec.reaudit_every and tick and tick % spec.reaudit_every == 0:
            due = sorted(set(due) | watchlist)
        if due:
            if fc_detector is None:
                from ..fc.engine import default_detector
                fc_detector = default_detector(spec.seed)
            result.audits.extend(_alert_audits(
                spec, world, due, fc_detector, tick, now,
                provenance=collector, watermarks=watermarks))
        watchlist.update(burst_handles)
        if tick % spec.snapshot_every == 0 or tick == spec.ticks - 1:
            snapshot = dashboard.snapshot(now, fleet={
                "followers": dict(sorted(result.followers.items())),
                "audits_run": len(result.audits),
                "poll_failures": result.poll_failures,
            })
            result.snapshots.append(snapshot)
            result.frames.append(dashboard.render(snapshot))
    return result


def _run(spec: FleetSpec, simulation: LiveSimulation, live: LiveTelemetry,
         poll_clock: SimClock, start: float) -> FleetResult:
    """The daily monitoring loop (see the module docstring)."""
    graph = simulation.graph
    monitor = GrowthMonitor(graph, poll_clock,
                            faults=spec.fault_plan(start))
    live.counter_stream(
        "polls.faults", lambda: float(monitor.client.faults_seen))
    market = Marketplace(simulation, seed=spec.seed + 2)
    panels = FLEET_PANELS + RULE_PANELS if spec.provenance else FLEET_PANELS
    dashboard = FleetDashboard(live, panels=panels,
                               horizon=3 * DAY, title="fleet health")
    result = FleetResult(spec=spec, live=live)
    collector = ProvenanceCollector() if spec.provenance else None
    fc_detector = None

    for tick in range(spec.ticks):
        tick_time = start + tick * DAY
        if simulation.now() < tick_time:
            simulation.run_until(tick_time)
        if poll_clock.now() < tick_time:
            poll_clock.advance_to(tick_time)
        if tick == spec.purchase_tick:
            market.place_order(
                CHEAP_BULK,
                FLEET_BASE_ID + spec.handles.index(spec.buyer),
                spec.purchase_quantity)
        events_before = len(live.alerts.events)
        for handle in spec.handles:
            try:
                at, count = monitor.poll(handle)
            except RetryableApiError:
                at = poll_clock.now()
                result.poll_failures += 1
                live.note("polls.total", at)
                live.note("polls.failed", at)
            else:
                result.followers[handle] = count
                live.note("polls.total", at)
                live.note("polls.ok", at)
        now = live.tick(poll_clock.now())
        burst_handles = sorted({
            event.name.split(":", 1)[1]
            for event in live.alerts.events[events_before:]
            if event.kind == "fire" and event.name.startswith("burst:")})
        if burst_handles:
            if fc_detector is None:
                from ..fc.engine import default_detector
                fc_detector = default_detector(spec.seed)
            result.audits.extend(_alert_audits(
                spec, graph, burst_handles, fc_detector, tick, now,
                provenance=collector))
        if tick % spec.snapshot_every == 0 or tick == spec.ticks - 1:
            snapshot = dashboard.snapshot(now, fleet={
                "followers": dict(sorted(result.followers.items())),
                "audits_run": len(result.audits),
                "poll_failures": result.poll_failures,
            })
            result.snapshots.append(snapshot)
            result.frames.append(dashboard.render(snapshot))
    return result
