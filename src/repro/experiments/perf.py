"""The canonical perf workload behind ``repro perf record`` / ``diff``.

One fixed, fully-parameterised batch run over the paper's testbed: all
twenty accounts fanned out to the four engines through the
:class:`~repro.sched.BatchAuditScheduler`, executed under a private
observability context, and condensed into the canonical
``BENCH_perf.json`` document by :func:`repro.obs.perf.collect_perf`.

The workload parameters are recorded *inside* the artifact, so a later
``repro perf diff`` re-runs exactly the workload its baseline measured
— different parameters can never masquerade as a regression (or hide
one).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..audit import AuditRequest
from ..core.clock import SimClock
from ..core.errors import ConfigurationError
from ..obs.perf import collect_perf
from ..obs.runtime import Observability, observed
from ..sched import BatchAuditScheduler
from .testbed import PAPER_ACCOUNTS, PAPER_ACCOUNTS_BY_HANDLE, build_paper_world

#: Follower ceiling of the default perf workload.  Small enough for a
#: CI gate measured in seconds, large enough that every engine pages,
#: samples and classifies real work.
PERF_MAX_FOLLOWERS = 20_000


def default_workload(*, seed: int = 42,
                     targets: Optional[Sequence[str]] = None,
                     lane_slots: int = 2,
                     max_followers: int = PERF_MAX_FOLLOWERS
                     ) -> Dict[str, object]:
    """The workload descriptor recorded into ``BENCH_perf.json``."""
    if targets is None:
        targets = [account.handle for account in PAPER_ACCOUNTS]
    by_handle = {handle.lower(): account
                 for handle, account in PAPER_ACCOUNTS_BY_HANDLE.items()}
    unknown = [t for t in targets if t.lower() not in by_handle]
    if unknown:
        raise ConfigurationError(
            f"unknown testbed handles: {sorted(unknown)!r}")
    return {
        "seed": int(seed),
        "targets": list(targets),
        "lane_slots": int(lane_slots),
        "max_followers": int(max_followers),
    }


def run_perf_workload(workload: Dict[str, object]
                      ) -> Tuple[Dict[str, object], Observability, object]:
    """Execute one workload and return ``(perf_doc, obs, batch_report)``.

    Runs under its own :class:`~repro.obs.runtime.Observability`
    (nesting restores whatever context the caller had), so a recording
    never mixes spans with an outer ``--trace-out`` run.
    """
    seed = int(workload["seed"])  # type: ignore[arg-type]
    targets = list(workload["targets"])  # type: ignore[call-overload]
    lane_slots = int(workload["lane_slots"])  # type: ignore[arg-type]
    max_followers = int(workload["max_followers"])  # type: ignore[arg-type]
    by_handle = {handle.lower(): account
                 for handle, account in PAPER_ACCOUNTS_BY_HANDLE.items()}
    accounts = [by_handle[target.lower()] for target in targets]
    tiers = tuple(sorted({account.tier for account in accounts}))
    with observed() as obs:
        world = build_paper_world(seed, SimClock().now(), tiers=tiers,
                                  max_followers=max_followers)
        clock = SimClock(world.ref_time)
        scheduler = BatchAuditScheduler(world, clock, seed=seed,
                                        lane_slots=lane_slots)
        scheduler.submit_batch(
            [AuditRequest(target=account.handle) for account in accounts])
        batch = scheduler.run()
    doc = collect_perf(obs, batch, workload)
    return doc, obs, batch
