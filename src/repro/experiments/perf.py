"""The canonical perf workload behind ``repro perf record`` / ``diff``.

One fixed, fully-parameterised batch run over the paper's testbed: all
twenty accounts fanned out to the four engines through the
:class:`~repro.sched.BatchAuditScheduler`, executed under a private
observability context, and condensed into the canonical
``BENCH_perf.json`` document by :func:`repro.obs.perf.collect_perf`.

The workload parameters are recorded *inside* the artifact, so a later
``repro perf diff`` re-runs exactly the workload its baseline measured
— different parameters can never masquerade as a regression (or hide
one).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..audit import AuditRequest
from ..core.clock import SimClock
from ..core.errors import ConfigurationError
from ..obs.perf import collect_perf, measure_wallclock
from ..obs.runtime import Observability, observed
from ..sched import BatchAuditScheduler
from .testbed import PAPER_ACCOUNTS, PAPER_ACCOUNTS_BY_HANDLE, build_paper_world

#: Follower ceiling of the default perf workload.  Small enough for a
#: CI gate measured in seconds, large enough that every engine pages,
#: samples and classifies real work.
PERF_MAX_FOLLOWERS = 20_000

#: Shape of the opt-in wallclock measurement (``--wallclock``): rows
#: classified per timing and timings per median.  Module constants,
#: *not* workload fields — the workload section must stay identical
#: whether or not wallclock was recorded, or ``perf diff`` would
#: refuse to compare the documents.
WALLCLOCK_ROWS = 2_000
WALLCLOCK_REPEATS = 3

#: Shape of the opt-in substrate measurement (``--substrate``): the
#: columnar world paged by the probe.  Module constants for the same
#: reason as the wallclock shape — the workload section must not vary
#: with the optional sections.
SUBSTRATE_FOLLOWERS = 1_000_000
SUBSTRATE_PAGE_SIZE = 5_000
SUBSTRATE_PAGES = 20
SUBSTRATE_LOOKUPS = 100

#: Shape of the opt-in delta measurement (``--delta``): a small fleet
#: re-audited shortly after its watermarked baseline, with purchases
#: on a sparse subset.  The re-audit gap is deliberately tiny so a
#: full audit samples the same frame the merge reproduces — which is
#: what makes ``verdicts_matching`` a meaningful equality check rather
#: than an age-drift lottery.
DELTA_ACCOUNTS = 12
DELTA_FOLLOWERS = 2_000
DELTA_PURCHASED = 3
DELTA_PURCHASE_QUANTITY = 300
DELTA_PURCHASE_AT_DAYS = 0.05
DELTA_REAUDIT_AT_DAYS = 0.1


def default_workload(*, seed: int = 42,
                     targets: Optional[Sequence[str]] = None,
                     lane_slots: int = 2,
                     max_followers: int = PERF_MAX_FOLLOWERS
                     ) -> Dict[str, object]:
    """The workload descriptor recorded into ``BENCH_perf.json``."""
    if targets is None:
        targets = [account.handle for account in PAPER_ACCOUNTS]
    by_handle = {handle.lower(): account
                 for handle, account in PAPER_ACCOUNTS_BY_HANDLE.items()}
    unknown = [t for t in targets if t.lower() not in by_handle]
    if unknown:
        raise ConfigurationError(
            f"unknown testbed handles: {sorted(unknown)!r}")
    return {
        "seed": int(seed),
        "targets": list(targets),
        "lane_slots": int(lane_slots),
        "max_followers": int(max_followers),
    }


def measure_fc_wallclock(*, rows: int = WALLCLOCK_ROWS,
                         repeats: int = WALLCLOCK_REPEATS,
                         seed: int = 0) -> Dict[str, object]:
    """Real-time FC classification timings, scalar vs columnar.

    Classifies the same ``rows``-strong generated population through
    the scalar :class:`~repro.fc.training.TrainedDetector` path and
    the columnar :class:`~repro.fc.columnar.BatchClassifier`, each
    timed as the median of ``repeats`` monotonic runs.  These are the
    only non-deterministic numbers a perf document can carry — see
    the ``wallclock`` measurement class in :mod:`repro.obs.perf`.
    """
    from ..fc.columnar import batch_classifier
    from ..fc.dataset import build_gold_standard
    from ..fc.engine import default_detector

    detector = default_detector(seed)
    population = build_gold_standard(
        n_fake=rows - rows // 2, n_genuine=rows // 2, seed=seed + 101,
        timeline_depth=1)
    users = population.users()
    timelines = population.timelines() if detector.needs_timeline else None
    now = population.now
    scalar_seconds = measure_wallclock(
        lambda: detector.predict(users, timelines, now), repeats)
    doc: Dict[str, object] = {
        "fc_rows": int(rows),
        "repeats": int(repeats),
        "fc_scalar_seconds": round(scalar_seconds, 6),
    }
    classifier = batch_classifier(detector)
    if classifier is not None:
        batch_seconds = round(measure_wallclock(
            lambda: classifier.predict(users, timelines, now), repeats), 6)
        doc["fc_batch_seconds"] = batch_seconds
        # Derived from the *stored* (rounded) values so the document is
        # self-consistent for any reader recomputing the ratio.
        doc["fc_batch_speedup"] = round(
            doc["fc_scalar_seconds"] / batch_seconds, 6) \
            if batch_seconds else 0.0
    return doc


def measure_engine_wallclock(*, rows: int = WALLCLOCK_ROWS,
                             repeats: int = WALLCLOCK_REPEATS,
                             seed: int = 0) -> Dict[str, object]:
    """Per-engine criteria timings: scalar loop vs columnar masks.

    One generated population classified by each rule-based engine's
    criteria both ways, timed like :func:`measure_fc_wallclock` —
    through the inputs each path really receives on the columnar
    substrate: acquisition hands the batch path a
    :class:`~repro.twitter.columnar.schema.UserRowBlock` of structured
    rows, while the scalar path classifies the user objects
    materialised from those same rows.  Block construction (the
    :class:`~repro.analytics.criteria.SampleBlock` field views) is
    timed inside the columnar side; object materialisation happens at
    acquisition time on both paths and is timed in neither.
    Socialbakers reads timelines, so its rows carry short timelines;
    the other two classify profiles only.  On a NumPy-less host only
    the scalar timings are recorded.
    """
    from ..analytics.criteria import build_sample_block, numpy_available
    from ..analytics.statuspeople import StatusPeopleCriteria
    from ..analytics.twitteraudit import TwitterauditCriteria
    from ..fc.dataset import build_gold_standard
    from ..fc.rulesets import SocialbakersCriteria

    population = build_gold_standard(
        n_fake=rows - rows // 2, n_genuine=rows // 2, seed=seed + 211,
        timeline_depth=5)
    users = population.users()
    timelines = population.timelines()
    now = population.now
    doc: Dict[str, object] = {
        "engine_rows": int(rows),
        "repeats": int(repeats),
    }
    block_users = None
    if numpy_available():
        from ..twitter.columnar.schema import UserRowBlock

        block_users = UserRowBlock.from_users(users)
    cases = (
        ("sp", StatusPeopleCriteria(), None),
        ("sb", SocialbakersCriteria(), timelines),
        ("ta", TwitterauditCriteria(), None),
    )
    for prefix, criteria, tls in cases:
        scalar_seconds = round(measure_wallclock(
            lambda c=criteria, t=tls: c.classify_all(users, t, now),
            repeats), 6)
        doc[f"{prefix}_scalar_seconds"] = scalar_seconds
        if block_users is None:
            continue
        batch_seconds = round(measure_wallclock(
            lambda c=criteria, t=tls: c.classify_block(
                build_sample_block(block_users, t), now),
            repeats), 6)
        doc[f"{prefix}_batch_seconds"] = batch_seconds
        doc[f"{prefix}_batch_speedup"] = round(
            scalar_seconds / batch_seconds, 6) if batch_seconds else 0.0
    return doc


def measure_substrate(*, seed: int = 0,
                      followers: int = SUBSTRATE_FOLLOWERS,
                      pages: int = SUBSTRATE_PAGES,
                      page_size: int = SUBSTRATE_PAGE_SIZE,
                      lookups: int = SUBSTRATE_LOOKUPS,
                      repeats: int = WALLCLOCK_REPEATS) -> Dict[str, object]:
    """The **substrate** measurement class: columnar paging telemetry.

    Runs a fixed access pattern against a columnar world — cursor
    ``pages`` follower-id pages through the API client, then
    ``users/lookup`` an even positional spread of followers — and
    reports the chunk store's deterministic counters (chunks
    materialized, rows generated, gather calls; byte-stable for a
    fixed seed, gated at the counter tolerance) alongside real column
    page latencies (``*_seconds`` keys, gated at the loose wallclock
    tolerance).  Counters are snapshotted *before* the timing loops so
    the repeats never inflate them.
    """
    from ..api import TwitterApiClient
    from ..twitter import add_simple_target, build_columnar_world, follower_id

    world = build_columnar_world(seed=seed)
    add_simple_target(world, "substrate", followers, 0.35, 0.15, 0.50,
                      tilt=0.5)
    client = TwitterApiClient(world, SimClock(world.ref_time))

    cursor = -1
    ids_fetched = 0
    pages_fetched = 0
    while pages_fetched < pages:
        page = client.followers_ids(screen_name="substrate", cursor=cursor,
                                    count=page_size)
        ids_fetched += len(page.ids)
        pages_fetched += 1
        if page.next_cursor == 0:
            break
        cursor = page.next_cursor

    stride = max(1, followers // lookups)
    wanted = [follower_id(0, position)
              for position in range(0, followers, stride)][:lookups]
    users = client.users_lookup(wanted)

    stats = world.substrate_stats()
    doc: Dict[str, object] = {
        "followers": int(followers),
        "page_size": int(page_size),
        "pages_fetched": int(pages_fetched),
        "ids_fetched": int(ids_fetched),
        "lookups": len(users),
        "repeats": int(repeats),
    }
    doc.update({key: int(value) for key, value in sorted(stats.items())})
    doc["page_fetch_seconds"] = round(measure_wallclock(
        lambda: client.followers_ids(screen_name="substrate",
                                     count=page_size), repeats), 6)
    doc["lookup_seconds"] = round(measure_wallclock(
        lambda: client.users_lookup(wanted), repeats), 6)
    return doc


def measure_delta(*, seed: int = 0,
                  accounts: int = DELTA_ACCOUNTS,
                  followers: int = DELTA_FOLLOWERS,
                  purchased: int = DELTA_PURCHASED,
                  quantity: int = DELTA_PURCHASE_QUANTITY
                  ) -> Dict[str, object]:
    """The **delta** measurement class: watermarked re-audit economics.

    Builds a columnar fleet, takes a watermarked full-audit baseline of
    every account, injects purchases on a sparse subset, then re-audits
    the whole fleet twice at the same later instant: once with
    ``mode="delta"`` against the shared watermark store and once with
    full audits.  Records both sweeps' API-call counts and (simulated)
    makespans, the delta outcome tallies from the ``delta_*`` counters,
    and how many accounts' merged verdicts equal the full audit's.
    Every number derives from the simulated clock and fixed seeds, so
    the section is byte-stable and gates at the counter tolerance.
    """
    from ..core.timeutil import DAY
    from ..obs.perf import _family_sum
    from ..sched import WatermarkStore
    from ..twitter import (
        add_simple_target,
        build_columnar_world,
        fake_purchase_burst,
    )
    if accounts < 1 or purchased < 0 or purchased > accounts:
        raise ConfigurationError(
            f"need 0 <= purchased <= accounts >= 1: "
            f"{purchased!r}, {accounts!r}")

    world = build_columnar_world(seed=seed)
    handles = [f"delta_{index}" for index in range(accounts)]
    stride = max(1, accounts // max(1, purchased))
    buyers = set(handles[1::stride][:purchased])
    for index, handle in enumerate(handles):
        bursts = (fake_purchase_burst(DELTA_PURCHASE_AT_DAYS, quantity),) \
            if handle in buyers else ()
        add_simple_target(world, handle, followers + 87 * (index % 5),
                          0.30, 0.12, 0.58, post_ref_bursts=bursts)
    t0 = world.ref_time
    t1 = t0 + DELTA_REAUDIT_AT_DAYS * DAY
    store = WatermarkStore()

    def sweep(when: float, mode: str, watermarks):
        with observed() as obs:
            scheduler = BatchAuditScheduler(
                world, SimClock(when), engines=("fc",), seed=seed,
                shared_cache=False, watermarks=watermarks)
            scheduler.submit_batch([
                AuditRequest(target=handle, as_of=when, mode=mode)
                for handle in handles])
            batch = scheduler.run()
        return obs, batch

    sweep(t0, "delta", store)  # cold start: full audits leave watermarks
    obs_delta, batch_delta = sweep(t1, "delta", store)
    obs_full, batch_full = sweep(t1, "full", None)

    def outcome(obs, name, **labels):
        return int(_family_sum(obs.registry, name, **labels))

    delta_calls = outcome(obs_delta, "api_requests_total")
    full_calls = outcome(obs_full, "api_requests_total")
    full_by_target = {item.request.target: item.report
                      for item in batch_full.items}
    matching = 0
    for item in batch_delta.items:
        other = full_by_target.get(item.request.target)
        if item.report is not None and other is not None \
                and item.report.fake_pct == other.fake_pct \
                and item.report.inactive_pct == other.inactive_pct \
                and item.report.sample_size == other.sample_size:
            matching += 1
    delta_makespan = round(batch_delta.makespan_seconds, 6)
    full_makespan = round(batch_full.makespan_seconds, 6)
    return {
        "accounts": int(accounts),
        "followers": int(followers),
        "purchased": int(purchased),
        "purchase_quantity": int(quantity),
        "reaudit_gap_days": DELTA_REAUDIT_AT_DAYS,
        "delta_api_calls": delta_calls,
        "full_api_calls": full_calls,
        "call_reduction": round(full_calls / delta_calls, 6)
        if delta_calls else 0.0,
        "delta_makespan_seconds": delta_makespan,
        "full_makespan_seconds": full_makespan,
        "makespan_speedup": round(full_makespan / delta_makespan, 6)
        if delta_makespan else 0.0,
        "unchanged": outcome(obs_delta, "delta_audits_total",
                             outcome="unchanged"),
        "merged": outcome(obs_delta, "delta_audits_total",
                          outcome="merged"),
        "fallbacks": outcome(obs_delta, "delta_fallbacks_total"),
        "head_pages": outcome(obs_delta, "delta_head_pages_total"),
        "new_followers_classified": outcome(
            obs_delta, "delta_new_followers_total"),
        "verdicts_matching": matching,
    }


def run_perf_workload(workload: Dict[str, object], *,
                      wallclock: bool = False,
                      substrate: bool = False,
                      delta: bool = False
                      ) -> Tuple[Dict[str, object], Observability, object]:
    """Execute one workload and return ``(perf_doc, obs, batch_report)``.

    Runs under its own :class:`~repro.obs.runtime.Observability`
    (nesting restores whatever context the caller had), so a recording
    never mixes spans with an outer ``--trace-out`` run.  With
    ``wallclock=True`` the document gains the opt-in real-time FC
    section from :func:`measure_fc_wallclock`; with ``substrate=True``
    the opt-in columnar paging section from :func:`measure_substrate`;
    with ``delta=True`` the opt-in watermarked re-audit section from
    :func:`measure_delta`; everything else in the document is
    unaffected.
    """
    seed = int(workload["seed"])  # type: ignore[arg-type]
    targets = list(workload["targets"])  # type: ignore[call-overload]
    lane_slots = int(workload["lane_slots"])  # type: ignore[arg-type]
    max_followers = int(workload["max_followers"])  # type: ignore[arg-type]
    by_handle = {handle.lower(): account
                 for handle, account in PAPER_ACCOUNTS_BY_HANDLE.items()}
    accounts = [by_handle[target.lower()] for target in targets]
    tiers = tuple(sorted({account.tier for account in accounts}))
    with observed() as obs:
        world = build_paper_world(seed, SimClock().now(), tiers=tiers,
                                  max_followers=max_followers)
        clock = SimClock(world.ref_time)
        scheduler = BatchAuditScheduler(world, clock, seed=seed,
                                        lane_slots=lane_slots)
        scheduler.submit_batch(
            [AuditRequest(target=account.handle) for account in accounts])
        batch = scheduler.run()
    measured = ({**measure_fc_wallclock(seed=seed),
                 **measure_engine_wallclock(seed=seed)}
                if wallclock else None)
    paging = measure_substrate(seed=seed) if substrate else None
    reaudit = measure_delta(seed=seed) if delta else None
    doc = collect_perf(obs, batch, workload, wallclock=measured,
                       substrate=paging, delta=reaudit)
    return doc, obs, batch
