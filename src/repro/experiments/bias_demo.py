"""Experiments E6 & E7 — head-of-list sampling bias, demonstrated.

E6 reproduces the worked example the paper quotes from the 2012
blogosphere debate about StatusPeople's Fakers (Section II-A): "if an
account with 100K genuine followers buys 10K fake followers, the
application could show a 100% of fake, while the right percentage
should be around 9%".  We run it both in closed form and live: a
synthetic target with a purchased burst, audited by the actual
StatusPeople engine vs the FC engine.

E7 reproduces the Deep Dive comparison (Section II-A): on mega
accounts, StatusPeople's November 2013 "Deep Dive" configuration
(33 K assessed across the first 1.25 M followers) reported drastically
lower fake percentages than the standard Fakers configuration (Obama
70 % -> 45 %, Lady Gaga 71 % -> 39 %, Shakira 79 % -> 49 %) — a deeper
frame dilutes the head bias.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..analytics.statuspeople import (
    DEEP_DIVE_CONFIG,
    DEFAULT_CONFIG,
    FakersConfig,
)
from ..audit import AuditRequest, build_engines
from ..core.clock import SimClock
from ..fc.training import TrainedDetector
from ..stats.bias import BiasReport, purchased_burst_rates
from ..twitter.generator import add_simple_target, build_world
from .report import TextTable


@dataclass(frozen=True)
class BurstDemoResult:
    """E6 outcome: closed forms vs live engines."""

    closed_form_1k_head: BiasReport
    closed_form_35k_head: BiasReport
    sp_newest1k_fake_pct: float
    sp_default_fake_pct: float
    fc_fake_plus_inactive_pct: float
    true_fake_pct: float


def run_purchased_burst_demo(
        *,
        genuine: int = 100_000,
        purchased: int = 10_000,
        seed: int = 21,
        detector: TrainedDetector = None,
) -> Tuple[BurstDemoResult, str]:
    """E6: a clean account buys fakes; head samplers see only the fakes.

    Three measurements against the same synthetic base (100 K genuine +
    a 10 K purchased burst at the head of the listing):

    * a StatusPeople-style engine restricted to the newest-1K frame —
      the bloggers' scenario the paper quotes ("could show a 100% of
      fake, while the right percentage should be around 9%");
    * the real post-API-change Fakers configuration (700 of 35 K);
    * the FC engine's uniform sample, which recovers the truth.
    """
    total = genuine + purchased
    closed_1k = purchased_burst_rates(genuine, purchased, head_size=1000)
    closed_35k = purchased_burst_rates(genuine, purchased, head_size=35_000)

    world = build_world(seed=seed)
    add_simple_target(
        world, "cleanstar", total,
        0.0, purchased / total, genuine / total,
        fake_burst_fraction=1.0,
        fake_burst_position=1.0,  # just bought: the fakes ARE the head
        tilt=0.0,
    )
    clock = SimClock(world.ref_time)
    request = AuditRequest(target="cleanstar")
    sp_newest1k = build_engines(
        world, clock, seed=seed, engines=("statuspeople",),
        sp_config=FakersConfig("newest-1k", head=1000, sample=1000),
    )["statuspeople"]
    newest1k_report = sp_newest1k.audit(request)
    sp_default = build_engines(
        world, clock, seed=seed, engines=("statuspeople",))["statuspeople"]
    default_report = sp_default.audit(request)
    fc = build_engines(world, clock, detector, seed,
                       engines=("fc",))["fc"]
    fc_report = fc.audit(request)

    result = BurstDemoResult(
        closed_form_1k_head=closed_1k,
        closed_form_35k_head=closed_35k,
        sp_newest1k_fake_pct=newest1k_report.fake_pct,
        sp_default_fake_pct=default_report.fake_pct,
        fc_fake_plus_inactive_pct=round(
            fc_report.fake_pct + (fc_report.inactive_pct or 0.0), 1),
        true_fake_pct=round(100.0 * purchased / total, 1),
    )
    table = TextTable(
        ["quantity", "value"],
        title="E6: 100K genuine + 10K purchased fakes "
              "(paper, Section II-A/II-D)",
    )
    table.add_row("true fake rate (closed form)",
                  f"{100 * closed_1k.whole_rate:.1f}%")
    table.add_row("newest-1K frame fake rate (closed form)",
                  f"{100 * closed_1k.head_rate:.1f}%")
    table.add_row("newest-35K frame fake rate (closed form)",
                  f"{100 * closed_35k.head_rate:.1f}%")
    table.add_row("SP engine, newest-1K frame (blogger scenario), measured",
                  f"{result.sp_newest1k_fake_pct:.1f}% fake")
    table.add_row("SP engine, Fakers default (700 of 35K), measured",
                  f"{result.sp_default_fake_pct:.1f}% fake")
    table.add_row("FC engine (uniform sample), measured fake+inact",
                  f"{result.fc_fake_plus_inactive_pct:.1f}%")
    table.add_row("true fake rate in simulated base",
                  f"{result.true_fake_pct:.1f}%")
    return result, table.render()


@dataclass(frozen=True)
class DeepDiveResult:
    """E7 outcome: Fakers vs Deep Dive on a mega account."""

    followers: int
    fakers_fake_pct: float
    deep_dive_fake_pct: float
    true_fake_like_pct: float

    @property
    def deep_dive_closer(self) -> bool:
        """Deep Dive's estimate is nearer the truth than Fakers'."""
        return (abs(self.deep_dive_fake_pct - self.true_fake_like_pct)
                <= abs(self.fakers_fake_pct - self.true_fake_like_pct))


def run_deepdive_comparison(
        *,
        followers: int = 150_000,
        inactive: float = 0.45,
        fake: float = 0.12,
        seed: int = 22,
) -> Tuple[DeepDiveResult, str]:
    """E7: the two StatusPeople configurations on an Obama-like base.

    The target carries a recent purchased burst (the mega-account
    pattern of 2012-2013), so the 35 K head frame over-represents fakes
    while the 1.25 M Deep Dive frame — here the whole materialised base
    — approaches the true rate, reproducing the direction and rough
    magnitude of the published shifts (e.g. Obama 70 % -> 45 %).
    """
    world = build_world(seed=seed)
    genuine = 1.0 - inactive - fake
    add_simple_target(
        world, "megastar", followers, inactive, fake, genuine,
        fake_burst_fraction=0.6, tilt=0.5, verified=True)
    clock = SimClock(world.ref_time)

    request = AuditRequest(target="megastar")
    fakers = build_engines(
        world, clock, seed=seed, engines=("statuspeople",),
        sp_config=DEFAULT_CONFIG)["statuspeople"]
    deep = build_engines(
        world, clock, seed=seed, engines=("statuspeople",),
        sp_config=DEEP_DIVE_CONFIG)["statuspeople"]
    fakers_report = fakers.audit(request)
    deep_report = deep.audit(request)

    # SP's "fake" criteria catch the fake personas and part of the
    # dormant ones; the fair truth reference for its fake column is the
    # fake share of the base.
    truth = round(100.0 * fake, 1)
    result = DeepDiveResult(
        followers=followers,
        fakers_fake_pct=fakers_report.fake_pct,
        deep_dive_fake_pct=deep_report.fake_pct,
        true_fake_like_pct=truth,
    )
    table = TextTable(
        ["configuration", "frame (head)", "assessed", "fake %"],
        title="E7: StatusPeople Fakers vs Deep Dive on a mega account "
              "(paper: Obama 70%->45%, Gaga 71%->39%, Shakira 79%->49%)",
    )
    table.add_row("Fakers (700 across 35K)", DEFAULT_CONFIG.head,
                  DEFAULT_CONFIG.sample, f"{result.fakers_fake_pct:.1f}")
    table.add_row("Deep Dive (33K across 1.25M)", DEEP_DIVE_CONFIG.head,
                  DEEP_DIVE_CONFIG.sample, f"{result.deep_dive_fake_pct:.1f}")
    table.add_row("true fake share", "-", "-", f"{truth:.1f}")
    return result, table.render()
