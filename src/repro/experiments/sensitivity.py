"""Ablation A7 — sensitivity to the recency-gradient assumption.

The single modelling assumption our Table III reproduction leans on is
the *recency tilt*: long-term followers are more likely inactive than
fresh ones (the paper states it as the explanation for SB/SP's low
inactive counts, Section IV-D).  This experiment sweeps the tilt from 0
(no gradient — the null world where head sampling would be harmless for
inactivity) upward, audits the same target at each level, and measures
the FC-vs-head-sampler inactive gap.

The expected shape: at tilt 0 the gap comes only from definitional
differences (SP's 30-day horizon, SB's suspicious-only flow); as the
tilt grows, the head-frame bias adds on top, linearly — which is what
the closed form ``gradient_head_bias`` predicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..audit import AuditRequest, build_engines
from ..core.clock import SimClock
from ..core.errors import ConfigurationError
from ..fc.training import TrainedDetector
from ..stats.bias import gradient_head_bias
from ..twitter.generator import add_simple_target, build_world
from .report import TextTable


@dataclass(frozen=True)
class TiltSensitivityRow:
    """Audit outcomes at one tilt level."""

    tilt: float
    fc_inactive: float
    sp_inactive: float
    sb_inactive: float
    #: Closed-form head-bias prediction for SB's 2000-of-N frame, in
    #: percentage points (negative = underestimate).
    predicted_sb_head_bias: float

    @property
    def fc_minus_sb(self) -> float:
        """The measured FC - SB inactive gap, percentage points."""
        return self.fc_inactive - self.sb_inactive

    @property
    def fc_minus_sp(self) -> float:
        """The measured FC - SP inactive gap, percentage points."""
        return self.fc_inactive - self.sp_inactive


def run_tilt_sensitivity(
        *,
        tilts: Sequence[float] = (0.0, 0.25, 0.5, 0.75),
        followers: int = 40_000,
        inactive: float = 0.45,
        fake: float = 0.10,
        seed: int = 42,
        detector: TrainedDetector = None,
) -> Tuple[List[TiltSensitivityRow], str]:
    """Sweep the recency tilt and measure the inactive-estimate gaps."""
    if not tilts:
        raise ConfigurationError("need at least one tilt level")
    genuine = 1.0 - inactive - fake
    if genuine <= 0:
        raise ConfigurationError("composition leaves no genuine mass")

    rows: List[TiltSensitivityRow] = []
    for tilt in tilts:
        world = build_world(seed=seed)
        add_simple_target(world, "tiltcase", followers,
                          inactive, fake, genuine, tilt=tilt, pieces=8)
        clock = SimClock(world.ref_time)
        engines = build_engines(
            world, clock, detector, seed,
            engines=("fc", "statuspeople", "socialbakers"),
            sb_daily_quota=10**9)
        request = AuditRequest(target="tiltcase")
        fc_report = engines["fc"].audit(request)
        sp_report = engines["statuspeople"].audit(request)
        sb_report = engines["socialbakers"].audit(request)
        rows.append(TiltSensitivityRow(
            tilt=tilt,
            fc_inactive=fc_report.inactive_pct or 0.0,
            sp_inactive=sp_report.inactive_pct or 0.0,
            sb_inactive=sb_report.inactive_pct or 0.0,
            predicted_sb_head_bias=100.0 * gradient_head_bias(
                inactive, tilt, min(1.0, 2000 / followers)),
        ))

    table = TextTable(
        ["tilt", "FC inactive", "SP inactive", "SB inactive",
         "FC-SB gap", "closed-form head bias (SB frame)"],
        title=f"A7: recency-tilt sensitivity "
              f"({followers} followers, {100 * inactive:.0f}% truly inactive)",
    )
    for row in rows:
        table.add_row(
            f"{row.tilt:.2f}",
            f"{row.fc_inactive:.1f}",
            f"{row.sp_inactive:.1f}",
            f"{row.sb_inactive:.1f}",
            f"{row.fc_minus_sb:+.1f}pp",
            f"{row.predicted_sb_head_bias:+.1f}pp",
        )
    return rows, table.render()
