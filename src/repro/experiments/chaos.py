"""Experiment E9 — chaos: engine robustness under injected API faults.

The paper measured four engines against a *live* service; every number
in its tables therefore absorbed whatever 503s, timeouts and flaky
cursors Twitter served that week.  This bench asks how much that
matters: it reruns the Table III testbed under a named fault scenario
(see :data:`repro.faults.SCENARIOS`) at increasing intensity and
reports, per engine,

* the **drift** of its fake-percentage estimates from the fault-free
  baseline (mean absolute difference across targets);
* the mean **completeness** of its degraded results;
* the injected **errors seen** and the **retries** its client spent
  recovering.

Everything stays deterministic: the scenario plan carries its own
fault seed, so the same ``(seed, scenario, fault_seed)`` triple yields
byte-identical reports on every run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..audit import AuditReport, AuditRequest
from ..core.clock import SimClock
from ..core.errors import ConfigurationError
from ..faults.plan import FaultPlan, SCENARIOS, named_plan
from ..fc.engine import default_detector
from ..fc.training import TrainedDetector
from ..obs.analysis import render_phase_attribution
from ..obs.runtime import get_observability
from ..sched import BatchAuditScheduler
from .report import TextTable
from .response_time import ENGINE_ORDER, build_engines
from .testbed import LOW, PaperAccount, accounts_in_tiers, build_paper_world

#: Multipliers applied to the scenario's base probabilities.  Level 0
#: runs with fault injection fully off — the baseline every drift
#: number is measured against.
DEFAULT_CHAOS_LEVELS: Tuple[float, ...] = (0.0, 0.5, 1.0, 2.0)

#: Follower cap for chaos runs: the drift signal is scale-free and the
#: sweep reruns the whole testbed once per level.
CHAOS_MAX_FOLLOWERS = 20_000


@dataclass(frozen=True)
class ChaosLevel:
    """All reports of one sweep level (one fault intensity)."""

    factor: float
    #: ``{handle: {tool: report}}`` for every audited target.
    reports: Dict[str, Dict[str, AuditReport]]
    #: Per-tool client retry totals accumulated over the level.
    retries: Dict[str, int]

    def mean_completeness(self, tool: str) -> float:
        """Average completeness of one engine's reports at this level."""
        values = [per_tool[tool].completeness
                  for per_tool in self.reports.values()]
        return sum(values) / len(values) if values else 1.0

    def errors_seen(self, tool: str) -> int:
        """Total injected failures one engine observed at this level."""
        return sum(per_tool[tool].errors_seen
                   for per_tool in self.reports.values())


@dataclass(frozen=True)
class ChaosResult:
    """The whole sweep: one :class:`ChaosLevel` per intensity."""

    scenario: str
    fault_seed: int
    levels: List[ChaosLevel]

    @property
    def baseline(self) -> ChaosLevel:
        """The fault-free level the drift is measured against."""
        return self.levels[0]

    def drift(self, tool: str, level: ChaosLevel) -> float:
        """Mean |fake% - baseline fake%| of one engine at one level."""
        gaps = [
            abs(level.reports[handle][tool].fake_pct
                - self.baseline.reports[handle][tool].fake_pct)
            for handle in level.reports
        ]
        return sum(gaps) / len(gaps) if gaps else 0.0


def run_chaos_experiment(
        *,
        seed: int = 42,
        scenario: str = "bursty",
        fault_seed: int = 7,
        levels: Sequence[float] = DEFAULT_CHAOS_LEVELS,
        accounts: Optional[Sequence[PaperAccount]] = None,
        max_followers: Optional[int] = CHAOS_MAX_FOLLOWERS,
        detector: Optional[TrainedDetector] = None,
        mode: str = "batch",
        lane_slots: int = 2,
) -> Tuple[ChaosResult, str]:
    """Sweep the testbed through increasing fault intensity.

    Each level rebuilds the world and all four engines from the same
    seeds, so level-to-level differences are attributable to the fault
    plan alone (plus the retries it provokes).  ``mode="batch"`` (the
    default) runs each level's testbed through the
    :class:`~repro.sched.BatchAuditScheduler`; drift is always
    measured against the same-mode fault-free baseline, so the sweep
    stays internally consistent either way.  ``mode="serial"`` replays
    the legacy loop.
    """
    if mode not in ("batch", "serial"):
        raise ConfigurationError(
            f"mode must be 'batch' or 'serial': {mode!r}")
    if scenario not in SCENARIOS:
        raise ConfigurationError(
            f"unknown fault scenario {scenario!r}; "
            f"choose from {sorted(SCENARIOS)}")
    if not levels:
        raise ConfigurationError("need at least one chaos level")
    if levels[0] != 0.0:
        raise ConfigurationError(
            "the first chaos level must be 0.0 (the fault-free baseline)")
    if accounts is None:
        accounts = accounts_in_tiers(LOW)
    obs = get_observability()
    trace_mark = len(obs.tracer)
    tiers = tuple(sorted({account.tier for account in accounts}))
    base_plan = named_plan(scenario, seed=fault_seed)
    if detector is None:
        # Train once, share across levels: level-to-level drift must
        # come from the fault plan, never from detector retraining.
        detector = default_detector(seed)

    swept: List[ChaosLevel] = []
    for factor in levels:
        plan: Optional[FaultPlan] = None
        if factor > 0.0:
            plan = base_plan.scaled(factor)
        world = build_paper_world(
            seed, SimClock().now(), tiers=tiers, max_followers=max_followers)
        clock = SimClock(world.ref_time)
        reports: Dict[str, Dict[str, AuditReport]] = {}
        if mode == "serial":
            engines = build_engines(world, clock, detector, seed=seed,
                                    faults=plan)
            for account in accounts:
                reports[account.handle] = {
                    tool: engines[tool].audit(
                        AuditRequest(target=account.handle, engine=tool))
                    for tool in ENGINE_ORDER
                }
            retries = {tool: engines[tool].client.retries_total
                       for tool in ENGINE_ORDER}
        else:
            scheduler = BatchAuditScheduler(
                world, clock, seed=seed, detector=detector, faults=plan,
                lane_slots=lane_slots)
            scheduler.submit_batch(
                [AuditRequest(target=account.handle)
                 for account in accounts])
            batch = scheduler.run()
            for account in accounts:
                reports[account.handle] = batch.reports_for(account.handle)
            retries = {
                tool: sum(
                    scheduler.engine(tool, slot).client.retries_total
                    for slot in range(lane_slots))
                for tool in ENGINE_ORDER}
        swept.append(ChaosLevel(factor=factor, reports=reports,
                                retries=retries))

    result = ChaosResult(scenario=scenario, fault_seed=fault_seed,
                         levels=swept)
    rendered = render_chaos(result)
    if obs.enabled:
        rendered += "\n\n" + render_phase_attribution(
            obs.tracer.spans()[trace_mark:])
    return result, rendered


def render_chaos(result: ChaosResult) -> str:
    """Render the sweep: drift/completeness/errors/retries per engine."""
    table = TextTable(
        ["fault level", "engine", "fake% drift", "completeness",
         "errors seen", "retries"],
        title=(f"Chaos sweep: scenario '{result.scenario}' "
               f"(fault seed {result.fault_seed}) vs fault-free baseline"),
    )
    for level in result.levels:
        for tool in ENGINE_ORDER:
            table.add_row(
                f"x{level.factor:g}",
                tool,
                f"{result.drift(tool, level):.1f}",
                f"{level.mean_completeness(tool):.3f}",
                level.errors_seen(tool),
                level.retries[tool],
            )
    lines = [table.render(), ""]
    worst = result.levels[-1]
    degraded = [tool for tool in ENGINE_ORDER
                if worst.mean_completeness(tool) < 1.0]
    lines.append(
        f"At x{worst.factor:g} intensity "
        f"{len(degraded)}/{len(ENGINE_ORDER)} engines returned partial "
        f"results (graceful degradation); none raised.")
    return "\n".join(lines)
