"""Experiment F1 — the three Twitteraudit report charts.

Section II-C of the paper describes the only graphical artefacts in its
evaluation: alongside the fake percentage, a Twitteraudit report shows

1. a chart of how the tool judges the audited base (fake / not sure /
   real);
2. the "quality score" per follower ("with no explanation on what a
   'quality score' is" — ours is the real-points total on a 0-1 scale);
3. the "real points" per follower, "with a maximum scale of 5"
   (from which the paper infers "the three criteria used to evaluate
   the score can sum up to five").

This module renders all three as ASCII bar charts from a live audit.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

from ..analytics.twitteraudit import Twitteraudit
from ..audit import AuditReport, AuditRequest
from ..core.clock import SimClock
from ..core.errors import ConfigurationError
from ..twitter.generator import add_simple_target, build_world
from ..twitter.population import World

_BAR_GLYPH = "#"


def ascii_bar_chart(rows: Sequence[Tuple[str, float]], *,
                    title: str = "", width: int = 40) -> str:
    """Render labelled values as a horizontal ASCII bar chart."""
    if not rows:
        raise ConfigurationError("a bar chart needs at least one row")
    if width < 1:
        raise ConfigurationError(f"width must be >= 1: {width!r}")
    if any(value < 0 for __, value in rows):
        raise ConfigurationError("bar values must be non-negative")
    peak = max(value for __, value in rows) or 1.0
    label_width = max(len(label) for label, __ in rows)
    lines: List[str] = [title] if title else []
    for label, value in rows:
        bar = _BAR_GLYPH * int(round(width * value / peak))
        lines.append(f"{label.ljust(label_width)} |{bar} {value:g}")
    return "\n".join(lines)


def render_ta_charts(report: AuditReport) -> str:
    """Render the three charts of one Twitteraudit report."""
    if report.tool != "twitteraudit":
        raise ConfigurationError(
            f"expected a twitteraudit report, got {report.tool!r}")
    verdicts: Mapping[str, int] = report.details["verdict_counts"]
    quality: Mapping[int, int] = report.details["quality_histogram"]
    points: Mapping[int, int] = report.details["real_points_histogram"]

    chart1 = ascii_bar_chart(
        [(label, float(verdicts[label]))
         for label in ("fake", "not sure", "real")],
        title=f"chart 1 — audit verdict for @{report.target} "
              f"({report.sample_size} followers assessed)",
    )
    chart2 = ascii_bar_chart(
        [(f"{decile / 10:.1f}-{(decile + 1) / 10:.1f}",
          float(quality[decile])) for decile in range(10)],
        title="chart 2 — quality score per follower",
    )
    chart3 = ascii_bar_chart(
        [(f"{value} pts", float(points[value])) for value in range(6)],
        title="chart 3 — real points per follower (max scale of 5)",
    )
    footer = (f"fake: {report.fake_pct}%   "
              f"mean quality score: "
              f"{report.details['mean_quality_score']:.2f}")
    return "\n\n".join((chart1, chart2, chart3, footer))


def run_ta_charts(*, seed: int = 42,
                  world: Optional[World] = None,
                  handle: str = "chartdemo") -> Tuple[AuditReport, str]:
    """Audit a target with Twitteraudit and render its report charts.

    With no ``world`` given, a demo target is built: 45 % genuine, 35 %
    inactive, 20 % fake — enough of each class that all three charts
    have visible mass.
    """
    if world is None:
        world = build_world(seed=seed)
        add_simple_target(world, handle, 30_000, 0.35, 0.20, 0.45)
    clock = SimClock(getattr(world, "ref_time", SimClock().now()))
    tool = Twitteraudit(world, clock, seed=seed)
    report = tool.audit(AuditRequest(target=handle))
    return report, render_ta_charts(report)
