"""Experiment E1 — Table I: Twitter API types and call limits.

Regenerates the paper's Table I from the simulator's active policies,
and *verifies* each row empirically: a client that bursts through two
full windows of requests must observe a sustained throughput equal to
the published requests-per-minute figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..api.client import TwitterApiClient
from ..api.ratelimit import DEFAULT_POLICIES, TABLE_I, RateLimitPolicy
from ..core.clock import SimClock
from ..core.timeutil import MINUTE, PAPER_EPOCH
from ..twitter.generator import add_simple_target, build_world
from .report import TextTable


@dataclass(frozen=True)
class RateLimitMeasurement:
    """Published vs observed limits for one API resource."""

    policy: RateLimitPolicy
    burst_requests: int
    burst_seconds: float
    steady_requests: int
    steady_seconds: float

    @property
    def sustained_per_minute(self) -> float:
        """Observed post-burst request rate, requests/minute.

        The first window's budget is served as a burst; only the
        refill-paced tail measures the sustained limit.
        """
        if self.steady_seconds == 0:
            return float("inf")
        return self.steady_requests / (self.steady_seconds / MINUTE)


def measure_rate_limit(resource: str, *, windows: float = 2.0,
                       seed: int = 11) -> RateLimitMeasurement:
    """Drive one endpoint through ``windows`` budgets and time it.

    Latency is set to zero so the measurement isolates the limiter: the
    observed sustained rate converges to the policy's requests/minute as
    the burst allowance amortises.
    """
    policy = DEFAULT_POLICIES[resource]
    world = build_world(seed=seed)
    add_simple_target(world, "probe", 30_000, 0.3, 0.1, 0.6)
    clock = SimClock(PAPER_EPOCH)
    client = TwitterApiClient(world, clock, request_latency=0.0)
    target = world.account_by_name("probe", clock.now())
    follower = world.population("probe").follower_id_at(0)

    def issue() -> None:
        if resource == "followers/ids":
            client.followers_ids(user_id=target.user_id,
                                 count=policy.elements_per_request)
        elif resource == "friends/ids":
            client.friends_ids(user_id=follower,
                               count=policy.elements_per_request)
        elif resource == "users/lookup":
            client.users_lookup([follower])
        elif resource == "statuses/user_timeline":
            client.user_timeline(follower, count=1)
        else:
            raise ValueError(f"unknown resource: {resource!r}")

    burst = int(policy.window_budget)
    steady = max(1, int(policy.window_budget * (windows - 1.0)))
    start = clock.now()
    for __ in range(burst):
        issue()
    burst_end = clock.now()
    for __ in range(steady):
        issue()
    steady_end = clock.now()
    return RateLimitMeasurement(
        policy=policy,
        burst_requests=burst,
        burst_seconds=burst_end - start,
        steady_requests=steady,
        steady_seconds=steady_end - burst_end,
    )


def run_table1(windows: float = 2.0) -> Tuple[List[RateLimitMeasurement], str]:
    """Measure all four endpoints and render the paper's Table I."""
    measurements = [
        measure_rate_limit(policy.resource, windows=windows)
        for policy in TABLE_I
    ]
    table = TextTable(
        ["API type", "elem. x request", "max requests x min.",
         "observed req/min"],
        title="Table I: Twitter APIs, type and limitations to API calls",
    )
    for m in measurements:
        table.add_row(
            f"GET {m.policy.resource}",
            m.policy.elements_per_request,
            f"{m.policy.requests_per_minute:g}",
            f"{m.sustained_per_minute:.2f}",
        )
    return measurements, table.render()
