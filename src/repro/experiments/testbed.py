"""The paper's experimental testbed (Section IV-A), rebuilt synthetically.

Twenty target accounts in three classes:

* **low** (≤ 10.8 K followers): the analytics developers themselves —
  @RobDWaller (StatusPeople), @davc and @grossnasty (Twitteraudit),
  @janrezab (Socialbakers CEO);
* **average** (13.9 K – 79.7 K): thirteen individuals popular in Italy,
  chosen because their audits were unlikely to be pre-cached;
* **high** (≥ 595 K): Cameron, Hollande, Obama.

Ground-truth compositions are taken from the paper's own trusted
reference — the FC columns of Table III (FC samples 9604 uniformly, so
its estimate is within ±1 % of the truth at 95 % confidence).  All the
other reported columns (Twitteraudit / StatusPeople / Socialbakers, and
the Table II response times) are kept alongside as *paper expectations*
so every bench can print paper-vs-measured rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.errors import ConfigurationError
from ..twitter.generator import make_target_spec
from ..twitter.population import SyntheticWorld, TargetSpec

LOW, AVERAGE, HIGH = "low", "average", "high"


@dataclass(frozen=True)
class PaperAccount:
    """One row of the paper's Tables II/III."""

    handle: str
    followers: int
    tier: str
    #: FC columns of Table III — our ground-truth composition (percent).
    fc: Tuple[float, float, float]  # (inactive, fake, good)
    #: Twitteraudit's reported fake % (it reports no inactive class).
    ta_fake: float
    #: StatusPeople columns (inactive, fake, good).
    sp: Tuple[float, float, float]
    #: Socialbakers columns (inactive, fake, good).
    sb: Tuple[float, float, float]
    #: Table II response times (FC, TA, SP, SB), seconds; ``None`` for
    #: accounts outside the response-time experiment.
    response_times: Optional[Tuple[float, float, float, float]] = None

    @property
    def fc_fractions(self) -> Tuple[float, float, float]:
        """The FC composition as exact (0-1) fractions."""
        inact, fake, good = self.fc
        total = inact + fake + good
        return inact / total, fake / total, good / total


#: The complete Table III (and, where measured, Table II) of the paper.
PAPER_ACCOUNTS: Tuple[PaperAccount, ...] = (
    PaperAccount("RobDWaller", 929, LOW,
                 (25.0, 1.4, 73.6), 7, (28, 0, 72), (0, 0, 100)),
    PaperAccount("davc", 2971, LOW,
                 (13.5, 4.1, 82.4), 14, (26, 3, 71), (0, 4, 96)),
    PaperAccount("grossnasty", 3344, LOW,
                 (12.9, 4.0, 83.1), 4, (26, 3, 71), (0, 2, 98)),
    PaperAccount("janrezab", 10800, LOW,
                 (18.4, 2.2, 79.4), 11, (27, 3, 70), (2, 2, 96)),
    PaperAccount("giovanniallevi", 13900, AVERAGE,
                 (44.3, 9.9, 45.8), 34, (58, 18, 24), (5, 27, 68),
                 (187, 55, 27, 12)),
    PaperAccount("StefanoBollani", 22300, AVERAGE,
                 (27.8, 12.8, 59.4), 29, (49, 11, 40), (12, 11, 77),
                 (188, 52, 22, 11)),
    PaperAccount("Federugby", 30300, AVERAGE,
                 (46.5, 15.5, 38.0), 42, (51, 33, 16), (9, 33, 58),
                 (193, 40, 31, 13)),
    PaperAccount("Zerolandia", 33500, AVERAGE,
                 (69.2, 7.3, 23.5), 63, (55, 35, 10), (24, 25, 51),
                 (193, 51, 32, 9)),
    PaperAccount("pinucciotwit", 35500, AVERAGE,
                 (30.0, 6.3, 63.7), 28, (25, 13, 62), (7, 15, 78),
                 (192, 3, 2, 13)),
    PaperAccount("mvbrambilla", 36900, AVERAGE,
                 (75.7, 6.5, 17.8), 47, (42, 30, 28), (9, 34, 57),
                 (188, 45, 2, 8)),
    PaperAccount("PChiambretti", 40500, AVERAGE,
                 (31.6, 21.7, 46.7), 36, (56, 22, 22), (13, 19, 68),
                 (198, 45, 23, 9)),
    PaperAccount("pierofassino", 61500, AVERAGE,
                 (77.9, 4.6, 17.5), 46, (39, 39, 22), (14, 31, 55),
                 (203, 52, 3, 10)),
    PaperAccount("Lbarriales", 69900, AVERAGE,
                 (49.5, 20.6, 29.9), 48, (57, 32, 11), (13, 21, 66),
                 (212, 50, 27, 7)),
    PaperAccount("PC_Chiambretti", 70900, AVERAGE,
                 (97.0, 1.2, 1.8), 55, (48, 44, 8), (17, 35, 48),
                 (214, 43, 31, 9)),
    PaperAccount("herbertballeri", 72300, AVERAGE,
                 (46.0, 10.4, 43.6), 48, (56, 22, 22), (14, 20, 66),
                 (217, 54, 24, 10)),
    PaperAccount("Flaviaventosole", 75400, AVERAGE,
                 (46.4, 12.8, 40.8), 39, (46, 33, 21), (12, 29, 59),
                 (210, 49, 27, 9)),
    PaperAccount("RudyZerbi", 79700, AVERAGE,
                 (83.8, 5.9, 10.3), 35, (44, 33, 23), (8, 26, 66),
                 (216, 49, 26, 10)),
    PaperAccount("David_Cameron", 595_000, HIGH,
                 (24.0, 11.7, 64.3), 19.5, (17, 48, 35), (10, 14, 76)),
    PaperAccount("fhollande", 608_000, HIGH,
                 (63.6, 5.3, 31.1), 64.3, (35, 44, 21), (44, 14, 42)),
    PaperAccount("BarackObama", 41_000_000, HIGH,
                 (57.1, 8.5, 34.4), 51.2, (40, 41, 19), (43, 12, 45)),
)

PAPER_ACCOUNTS_BY_HANDLE: Dict[str, PaperAccount] = {
    account.handle: account for account in PAPER_ACCOUNTS
}

#: Accounts the paper observed answering from cache at first request
#: (Table II discussion): tool name -> handles pre-cached by that tool.
PRECACHED: Dict[str, Tuple[str, ...]] = {
    "twitteraudit": ("pinucciotwit",),
    "statuspeople": ("pinucciotwit", "mvbrambilla", "pierofassino"),
}

#: Default materialisation cap for mega accounts.  Compositions are
#: scale-free (they are percentages), and FC's audit cost above ~150 K
#: followers is dominated by the id paging the acquisition experiment
#: models analytically, so benches run the high tier at this cap unless
#: asked for full scale.
DEFAULT_MAX_FOLLOWERS = 150_000


def average_accounts() -> List[PaperAccount]:
    """The thirteen Italian accounts of Tables II and III."""
    return [a for a in PAPER_ACCOUNTS if a.tier == AVERAGE]


def accounts_in_tiers(*tiers: str) -> List[PaperAccount]:
    """Testbed accounts belonging to the given tiers."""
    bad = set(tiers) - {LOW, AVERAGE, HIGH}
    if bad:
        raise ConfigurationError(f"unknown tiers: {sorted(bad)!r}")
    return [a for a in PAPER_ACCOUNTS if a.tier in tiers]


def testbed_spec(account: PaperAccount, *,
                 ref_time: float,
                 max_followers: Optional[int] = DEFAULT_MAX_FOLLOWERS,
                 tilt: float = 0.5,
                 pieces: int = 4,
                 growth_per_day: Optional[float] = None) -> TargetSpec:
    """Build one target's spec from its paper row.

    The recency ``tilt`` realises the paper's observation that "new
    followers are less likely to be inactive than long-term followers";
    high-tier accounts additionally carry a recent purchased-fake burst
    (the Romney-style jump the paper's introduction recounts), which is
    what makes head-of-list tools overestimate their fakes.
    """
    followers = account.followers
    if max_followers is not None:
        followers = min(followers, max_followers)
    inact, fake, good = account.fc_fractions
    if growth_per_day is None:
        # A steady organic trickle proportional to audience size.
        growth_per_day = max(5.0, followers / 400.0)
    return make_target_spec(
        account.handle,
        followers,
        inact, fake, good,
        tilt=tilt,
        pieces=pieces,
        fake_burst_fraction=0.4 if account.tier == HIGH else 0.0,
        created_years_before=5.0 if account.tier == HIGH else 3.5,
        ref_time=ref_time,
        daily_new_followers=growth_per_day,
        verified=account.tier == HIGH,
        statuses_count=8000 if account.tier == HIGH else 2500,
    )


def build_paper_world(seed: int, ref_time: float, *,
                      tiers: Tuple[str, ...] = (LOW, AVERAGE, HIGH),
                      max_followers: Optional[int] = DEFAULT_MAX_FOLLOWERS,
                      tilt: float = 0.5) -> SyntheticWorld:
    """Materialise the paper's testbed as a lazy synthetic world."""
    world = SyntheticWorld(seed=seed, ref_time=ref_time)
    for account in accounts_in_tiers(*tiers):
        world.add_target(testbed_spec(
            account, ref_time=ref_time,
            max_followers=max_followers, tilt=tilt))
    return world
