"""Experiment harness: the paper's evaluation, table by table."""

from .acquisition import (
    EmpiricalCrawl,
    run_acquisition_experiment,
    validate_model,
)
from .api_limits import (
    RateLimitMeasurement,
    measure_rate_limit,
    run_table1,
)
from .bias_demo import (
    BurstDemoResult,
    DeepDiveResult,
    run_deepdive_comparison,
    run_purchased_burst_demo,
)
from .chaos import (
    ChaosLevel,
    ChaosResult,
    DEFAULT_CHAOS_LEVELS,
    render_chaos,
    run_chaos_experiment,
)
from .detection_latency import DetectionLatencyRow, run_detection_latency
from .figures import ascii_bar_chart, render_ta_charts, run_ta_charts
from .live_ordering import ChurnSensitivityRow, run_churn_sensitivity
from .monitor_fleet import FleetResult, FleetSpec, run_monitor_fleet
from .sensitivity import TiltSensitivityRow, run_tilt_sensitivity
from .ordering import (
    OrderingResult,
    check_head_growth,
    daily_snapshots,
    run_ordering_experiment,
)
from .report import TextTable, pct
from .response_time import (
    ENGINE_ORDER,
    ResponseTimeRow,
    build_engines,
    run_response_time_experiment,
)
from .results import (
    DisagreementAnalysis,
    Table3Row,
    analyse_disagreement,
    render_table3,
    run_table3,
)
from .runner import ExperimentSuiteResult, run_all
from .sample_size import (
    CoverageResult,
    TOOL_SAMPLE_SIZES,
    empirical_coverage,
    run_sample_size_experiment,
)
from .validation import (
    ValidationReport,
    validate_population,
    validate_world,
)
from .testbed import (
    AVERAGE,
    DEFAULT_MAX_FOLLOWERS,
    HIGH,
    LOW,
    PAPER_ACCOUNTS,
    PAPER_ACCOUNTS_BY_HANDLE,
    PRECACHED,
    PaperAccount,
    accounts_in_tiers,
    average_accounts,
    build_paper_world,
    testbed_spec,
)

__all__ = [
    "AVERAGE",
    "BurstDemoResult",
    "ChaosLevel",
    "ChaosResult",
    "ChurnSensitivityRow",
    "CoverageResult",
    "DEFAULT_CHAOS_LEVELS",
    "DEFAULT_MAX_FOLLOWERS",
    "DeepDiveResult",
    "DetectionLatencyRow",
    "DisagreementAnalysis",
    "ENGINE_ORDER",
    "EmpiricalCrawl",
    "ExperimentSuiteResult",
    "FleetResult",
    "FleetSpec",
    "HIGH",
    "LOW",
    "OrderingResult",
    "PAPER_ACCOUNTS",
    "PAPER_ACCOUNTS_BY_HANDLE",
    "PRECACHED",
    "PaperAccount",
    "RateLimitMeasurement",
    "ResponseTimeRow",
    "TOOL_SAMPLE_SIZES",
    "Table3Row",
    "TextTable",
    "TiltSensitivityRow",
    "ValidationReport",
    "accounts_in_tiers",
    "analyse_disagreement",
    "ascii_bar_chart",
    "average_accounts",
    "build_engines",
    "build_paper_world",
    "check_head_growth",
    "daily_snapshots",
    "empirical_coverage",
    "measure_rate_limit",
    "pct",
    "render_chaos",
    "render_ta_charts",
    "render_table3",
    "run_acquisition_experiment",
    "run_all",
    "run_chaos_experiment",
    "run_churn_sensitivity",
    "run_deepdive_comparison",
    "run_detection_latency",
    "run_monitor_fleet",
    "run_ordering_experiment",
    "run_purchased_burst_demo",
    "run_response_time_experiment",
    "run_sample_size_experiment",
    "run_ta_charts",
    "run_table1",
    "run_table3",
    "run_tilt_sensitivity",
    "testbed_spec",
    "validate_model",
    "validate_population",
    "validate_world",
]
