"""Experiment E5 — acquisition time for very large follower bases.

The paper (Section IV-B): "collecting data of accounts with a very
large numbers of followers can be extremely time consuming.  For
example, for our tests we gathered data from the whole set of followers
of President Obama.  This required a total time of around 27 days."

The experiment has two halves:

* an **analytic** prediction for each high-tier target at its real
  scale (Obama: 41 M followers -> ~5.7 days of ``followers/ids`` paging
  plus ~23.7 days of ``users/lookup``);
* an **empirical validation** of the model: a full crawl of a mid-sized
  synthetic base is actually executed against the rate-limited client
  and compared to the prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..api.client import TwitterApiClient
from ..api.crawler import AcquisitionEstimate, Crawler, estimate_acquisition_time
from ..core.clock import SimClock
from ..core.timeutil import format_duration
from ..twitter.generator import add_simple_target, build_world
from .report import TextTable
from .testbed import HIGH, accounts_in_tiers


@dataclass(frozen=True)
class EmpiricalCrawl:
    """Measured vs predicted full-crawl time for one synthetic base."""

    followers: int
    measured_seconds: float
    predicted_seconds: float

    @property
    def relative_error(self) -> float:
        """|measured - predicted| / predicted."""
        if self.predicted_seconds == 0:
            return 0.0
        return abs(self.measured_seconds - self.predicted_seconds) \
            / self.predicted_seconds


def validate_model(followers: int = 60_000, seed: int = 3) -> EmpiricalCrawl:
    """Crawl a synthetic base end to end and compare to the estimator.

    The crawl fetches the full id list and looks up every follower —
    the same acquisition the paper performed for Obama, at a size that
    simulates in well under a second of wall time.
    """
    world = build_world(seed=seed)
    add_simple_target(world, "bigone", followers, 0.4, 0.1, 0.5)
    clock = SimClock()
    client = TwitterApiClient(world, clock)
    crawler = Crawler(client)
    start = clock.now()
    ids = crawler.fetch_all_follower_ids("bigone")
    crawler.lookup_users(ids)
    measured = clock.now() - start
    predicted = estimate_acquisition_time(followers).seconds
    return EmpiricalCrawl(
        followers=followers,
        measured_seconds=measured,
        predicted_seconds=predicted,
    )


def run_acquisition_experiment() -> Tuple[List[AcquisitionEstimate],
                                          EmpiricalCrawl, str]:
    """Predict high-tier crawl times and validate the model empirically."""
    estimates = [
        estimate_acquisition_time(account.followers)
        for account in accounts_in_tiers(HIGH)
    ]
    table = TextTable(
        ["Twitter profile", "followers", "followers/ids pages",
         "users/lookup requests", "predicted crawl time"],
        title="Whole-base acquisition cost under Table I limits "
              "(paper: Obama took 'around 27 days')",
    )
    for account, estimate in zip(accounts_in_tiers(HIGH), estimates):
        table.add_row(
            "@" + account.handle,
            account.followers,
            estimate.follower_pages,
            estimate.lookup_requests,
            format_duration(estimate.seconds),
        )
    empirical = validate_model()
    table.add_row(
        "(synthetic validation)",
        empirical.followers,
        "-",
        "-",
        f"measured {format_duration(empirical.measured_seconds)} vs "
        f"predicted {format_duration(empirical.predicted_seconds)} "
        f"({100 * empirical.relative_error:.1f}% error)",
    )
    return estimates, empirical, table.render()
