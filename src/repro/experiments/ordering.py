"""Experiment E2 — Section IV-B: follower-list ordering.

The paper's hypothesis: ``GET followers/ids`` "reports the followers in
the reverse order with respect to 'following time'" — the first ids
returned are the *latest* accounts to have followed.  The authors
verified it by saving each testbed account's full follower list once a
day and diffing consecutive snapshots: every new follower appeared at
one fixed end of the list, never in the middle.

This experiment does exactly that against the simulator: daily full
crawls over a window of days, then a structural check that each day's
(newest-first) list equals ``new_arrivals + yesterday's list``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..api.client import TwitterApiClient
from ..api.crawler import Crawler
from ..core.clock import SimClock
from ..core.errors import ConfigurationError
from ..core.timeutil import DAY
from ..twitter.population import SyntheticWorld
from .report import TextTable


@dataclass(frozen=True)
class OrderingResult:
    """Outcome of the daily-snapshot diff for one target."""

    handle: str
    days: int
    initial_followers: int
    final_followers: int
    new_followers_total: int
    #: Number of day-pairs where yesterday's list was NOT a suffix of
    #: today's (i.e. an arrival appeared anywhere but the head).
    violations: int

    @property
    def ordering_confirmed(self) -> bool:
        """True iff every arrival entered at the head of the listing."""
        return self.violations == 0


def daily_snapshots(world: SyntheticWorld, handle: str, days: int,
                    clock: SimClock) -> List[Tuple[int, ...]]:
    """Crawl the full (newest-first) follower list once per simulated day.

    Each crawl pays real API costs against ``clock``; a fresh budget is
    used per day, as a daily cron job would have.
    """
    if days < 2:
        raise ConfigurationError(f"need >= 2 daily snapshots: {days!r}")
    client = TwitterApiClient(world, clock)
    crawler = Crawler(client)
    snapshots: List[Tuple[int, ...]] = []
    for day in range(days):
        day_start = clock.now()
        client.reset_budgets()
        snapshots.append(tuple(crawler.fetch_all_follower_ids(handle)))
        # Sleep until the same time tomorrow.
        clock.advance_to(day_start + DAY)
    return snapshots


def check_head_growth(snapshots: Sequence[Tuple[int, ...]]) -> Tuple[int, int]:
    """Diff consecutive newest-first snapshots.

    Returns ``(new_followers_total, violations)``.  A day-pair is a
    violation unless yesterday's list is exactly the tail of today's —
    which is equivalent to "all new entries were appended at the
    (chronological) end", the property the paper confirms.

    Unfollows would also break the suffix property; the paper's
    observation window showed none, and the synthetic worlds never
    remove edges, so a violation here always means an ordering bug.
    """
    new_total = 0
    violations = 0
    for yesterday, today in zip(snapshots, snapshots[1:]):
        growth = len(today) - len(yesterday)
        if growth < 0 or today[growth:] != yesterday:
            violations += 1
            continue
        new_ids = set(today[:growth])
        if len(new_ids) != growth or new_ids & set(yesterday):
            violations += 1
            continue
        new_total += growth
    return new_total, violations


def run_ordering_experiment(world: SyntheticWorld, handles: Sequence[str],
                            *, days: int = 7,
                            clock: SimClock = None
                            ) -> Tuple[List[OrderingResult], str]:
    """Run the Section IV-B experiment over the given targets."""
    results: List[OrderingResult] = []
    for handle in handles:
        local_clock = SimClock(world.ref_time) if clock is None else clock
        snapshots = daily_snapshots(world, handle, days, local_clock)
        new_total, violations = check_head_growth(snapshots)
        results.append(OrderingResult(
            handle=handle,
            days=days,
            initial_followers=len(snapshots[0]),
            final_followers=len(snapshots[-1]),
            new_followers_total=new_total,
            violations=violations,
        ))
    table = TextTable(
        ["Twitter profile", "days", "followers (day 1)",
         "followers (last)", "new arrivals", "arrivals at head only"],
        title="Section IV-B: follower lists are returned newest-first",
    )
    for result in results:
        table.add_row(
            "@" + result.handle,
            result.days,
            result.initial_followers,
            result.final_followers,
            result.new_followers_total,
            "yes" if result.ordering_confirmed else "NO",
        )
    return results, table.render()
