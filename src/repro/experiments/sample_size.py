"""Experiment E8 — the FC sample size and the tools' error margins.

The paper (Section IV-C): "to be statistically sound, the sample size
is always 9604, to guarantee a confidence level of 95%, with a
confidence interval of 1%."  This experiment verifies the arithmetic,
tabulates the margin each surveyed tool's sample size actually buys,
and checks the claim *empirically*: across repeated uniform samples of
9604 from a synthetic base, ~95 % of estimates must fall within ±1 % of
the true proportion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.rng import make_rng
from ..core.timeutil import PAPER_EPOCH
from ..stats.estimation import (
    ProportionEstimate,
    achieved_margin,
    required_sample_size,
)
from ..stats.sampling import uniform_sample
from ..twitter.account import Label
from ..twitter.generator import add_simple_target, build_world
from .report import TextTable

#: (tool, documented sample size) — the paper's Section II survey.
TOOL_SAMPLE_SIZES: Tuple[Tuple[str, int], ...] = (
    ("StatusPeople Fakers", 700),
    ("Socialbakers FFC", 2000),
    ("Twitteraudit", 5000),
    ("Fake Project FC", 9604),
)


@dataclass(frozen=True)
class CoverageResult:
    """Empirical confidence-interval coverage of the FC sample size."""

    true_proportion: float
    sample_size: int
    trials: int
    within_margin: int
    margin: float

    @property
    def coverage(self) -> float:
        """Fraction of trials landing within the margin."""
        return self.within_margin / self.trials


def empirical_coverage(*, population: int = 60_000, sample_size: int = 9604,
                       trials: int = 200, margin: float = 0.01,
                       seed: int = 17) -> CoverageResult:
    """Repeatedly estimate an inactive-rate from uniform samples.

    The property measured is ground-truth inactivity of a synthetic
    base; with n = 9604 and an unbiased sample, at least ~95 % of the
    estimates must land within ±1 % of the truth.
    """
    world = build_world(seed=seed)
    add_simple_target(world, "coverage", population, 0.42, 0.1, 0.48)
    pop = world.population("coverage")
    now = PAPER_EPOCH
    size = pop.size_at(now)

    labels = {}  # memoised ground truth per position

    def is_inactive(position: int) -> bool:
        if position not in labels:
            labels[position] = pop.true_label_at(position)
        return labels[position] is Label.INACTIVE

    # Exact truth over the whole base.
    true_hits = sum(1 for position in range(size) if is_inactive(position))
    truth = true_hits / size

    rng = make_rng(seed, "coverage-trials")
    within = 0
    for __ in range(trials):
        positions = uniform_sample(rng, size, sample_size)
        hits = sum(1 for position in positions if is_inactive(position))
        estimate = ProportionEstimate(hits, sample_size)
        if abs(estimate.p_hat - truth) <= margin:
            within += 1
    return CoverageResult(
        true_proportion=truth,
        sample_size=sample_size,
        trials=trials,
        within_margin=within,
        margin=margin,
    )


def run_sample_size_experiment(*, trials: int = 200,
                               seed: int = 17) -> Tuple[CoverageResult, str]:
    """Verify n = 9604 analytically and empirically; tabulate margins."""
    table = TextTable(
        ["tool", "sample size", "worst-case margin (95%)"],
        title="E8: what each tool's sample size buys "
              "(assuming an unbiased sample — which only FC draws)",
    )
    for tool, n in TOOL_SAMPLE_SIZES:
        table.add_row(tool, n, f"+/-{100 * achieved_margin(n):.2f}%")
    required = required_sample_size(0.01, 0.95)
    coverage = empirical_coverage(trials=trials, seed=seed)
    lines = [
        table.render(),
        "",
        f"required n for 95% +/-1% (p=0.5): {required} (paper: 9604)",
        f"empirical coverage over {coverage.trials} uniform samples of "
        f"{coverage.sample_size}: {100 * coverage.coverage:.1f}% within "
        f"+/-1% of truth ({100 * coverage.true_proportion:.2f}%)",
    ]
    return coverage, "\n".join(lines)
