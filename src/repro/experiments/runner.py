"""One-stop experiment runner.

``run_all`` executes every experiment of the paper's evaluation (E1-E8)
and returns a single text report; the CLI and the EXPERIMENTS.md
generator are thin wrappers around it.  Individual experiments remain
importable for targeted runs and for the benchmark suite.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.clock import SimClock
from ..fc.engine import default_detector
from ..fc.training import TrainedDetector
from ..obs.runtime import get_observability
from .acquisition import run_acquisition_experiment
from .api_limits import run_table1
from .bias_demo import run_deepdive_comparison, run_purchased_burst_demo
from .ordering import run_ordering_experiment
from .response_time import run_response_time_experiment
from .results import analyse_disagreement, run_table3
from .sample_size import run_sample_size_experiment
from .testbed import AVERAGE, average_accounts, build_paper_world


@dataclass
class ExperimentSuiteResult:
    """Structured results plus the rendered report of a full run."""

    sections: Dict[str, object] = field(default_factory=dict)
    report_parts: List[str] = field(default_factory=list)

    def add(self, key: str, result: object, rendered: str) -> None:
        """Record one experiment's result and rendered report section."""
        self.sections[key] = result
        self.report_parts.append(rendered)

    def report(self) -> str:
        """The full rendered report, section by section."""
        return "\n\n".join(self.report_parts)

    def save(self, directory) -> "pathlib.Path":
        """Write the combined report and one file per section.

        Creates ``directory`` if needed; returns the path of the
        combined ``report.txt``.
        """
        target = pathlib.Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        for key, rendered in zip(self.sections, self.report_parts):
            (target / f"{key}.txt").write_text(rendered + "\n",
                                               encoding="utf-8")
        combined = target / "report.txt"
        combined.write_text(self.report() + "\n", encoding="utf-8")
        return combined


def run_all(*, seed: int = 42,
            detector: Optional[TrainedDetector] = None,
            ordering_days: int = 5,
            coverage_trials: int = 100,
            table2_accounts=None,
            table3_accounts=None) -> ExperimentSuiteResult:
    """Run E1-E8 and collect one report.

    A single detector is trained once and shared by every FC instance;
    pass one explicitly to reuse across suites.  ``table2_accounts`` /
    ``table3_accounts`` restrict the timing and results experiments to
    subsets of the testbed (handy for quick smoke runs); the default is
    the paper's full account lists.
    """
    suite = ExperimentSuiteResult()
    tracer = get_observability().tracer
    if detector is None:
        detector = default_detector(seed=seed)

    with tracer.span("experiment", experiment="table1"):
        measurements, rendered = run_table1()
    suite.add("table1", measurements, rendered)

    world = build_paper_world(seed, SimClock().now(), tiers=(AVERAGE,))
    ordering_pool = (table2_accounts if table2_accounts is not None
                     else average_accounts())
    handles = [account.handle for account in ordering_pool]
    with tracer.span("experiment", experiment="ordering"):
        ordering_results, rendered = run_ordering_experiment(
            world, handles, days=ordering_days)
    suite.add("ordering", ordering_results, rendered)

    with tracer.span("experiment", experiment="table2"):
        rows2, rendered = run_response_time_experiment(
            seed=seed, detector=detector, accounts=table2_accounts)
    suite.add("table2", rows2, rendered)

    with tracer.span("experiment", experiment="table3"):
        rows3, rendered = run_table3(seed=seed, detector=detector,
                                     accounts=table3_accounts)
    analysis = analyse_disagreement(rows3)
    rendered += "\n\n" + "\n".join([
        "Table III claims, quantified on measured rows:",
        f"  corr(log10 followers, fake-estimate stddev) = "
        f"{analysis.followers_vs_disagreement:+.2f} "
        f"(paper: positive - more followers, less agreement)",
        f"  mean |TA good - SB good| = {analysis.ta_sb_genuine_gap:.1f} pts "
        f"(paper: 'similar')",
        f"  mean (FC inact - SB inact) = "
        f"{analysis.fc_minus_sb_inactive:+.1f} pts (paper: large positive)",
        f"  mean (FC inact - SP inact) = "
        f"{analysis.fc_minus_sp_inactive:+.1f} pts",
        f"  SP reports the lowest genuine share on "
        f"{100 * analysis.sp_lowest_genuine_fraction:.0f}% of targets "
        f"(paper: 'SP Fakers minimizes the number of genuine followers')",
    ])
    suite.add("table3", (rows3, analysis), rendered)

    with tracer.span("experiment", experiment="acquisition"):
        estimates, empirical, rendered = run_acquisition_experiment()
    suite.add("acquisition", (estimates, empirical), rendered)

    with tracer.span("experiment", experiment="purchased_burst"):
        burst, rendered = run_purchased_burst_demo(seed=seed,
                                                   detector=detector)
    suite.add("purchased_burst", burst, rendered)

    with tracer.span("experiment", experiment="deepdive"):
        deepdive, rendered = run_deepdive_comparison(seed=seed)
    suite.add("deepdive", deepdive, rendered)

    with tracer.span("experiment", experiment="sample_size"):
        coverage, rendered = run_sample_size_experiment(
            trials=coverage_trials, seed=seed)
    suite.add("sample_size", coverage, rendered)

    return suite
