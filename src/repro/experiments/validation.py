"""World self-validation.

Synthetic-data studies live or die by their generators: if ground-truth
labels drift from the behavioural definitions, every downstream result
is garbage.  This module packages the invariants the library's own test
suite enforces into a runtime check any user can point at any world —
especially one they built themselves with custom personas or specs:

1. **label/behaviour consistency** — an account labelled INACTIVE
   never tweeted or last tweeted > 90 days ago, and vice versa;
2. **arrival monotonicity** — follower positions are chronological;
3. **composition accuracy** — realised label shares match the spec's
   declared composition within sampling tolerance;
4. **causality** — no follower's account was created after it followed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.errors import ConfigurationError
from ..core.rng import make_rng
from ..twitter.account import Label
from ..twitter.personas import INACTIVITY_HORIZON
from ..twitter.population import FollowerPopulation, SyntheticWorld
from .report import TextTable


@dataclass
class ValidationReport:
    """Outcome of validating one target population."""

    handle: str
    checked: int
    label_mismatches: int = 0
    ordering_violations: int = 0
    causality_violations: int = 0
    composition_error: float = 0.0
    #: Allowed composition error, scaled to the sampling noise of
    #: ``checked`` draws (~3 sigma of a worst-case proportion).
    composition_tolerance: float = 0.06
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every invariant held within tolerance."""
        return (self.label_mismatches == 0
                and self.ordering_violations == 0
                and self.causality_violations == 0
                and self.composition_error <= self.composition_tolerance)


def validate_population(population: FollowerPopulation, now: float,
                        *, sample: int = 2000,
                        seed: int = 0) -> ValidationReport:
    """Check one target's follower population against the invariants."""
    size = population.size_at(now)
    handle = population.spec.screen_name
    if size == 0:
        return ValidationReport(handle=handle, checked=0,
                                notes=["empty population: nothing to check"])
    rng = make_rng(seed, "validate", handle)
    if sample < size:
        positions = sorted(rng.sample(range(size), sample))
    else:
        positions = list(range(size))

    tolerance = max(0.02, 3.0 * (0.25 / len(positions)) ** 0.5)
    report = ValidationReport(handle=handle, checked=len(positions),
                              composition_tolerance=tolerance)
    counts: Dict[Label, int] = {label: 0 for label in Label}
    previous_arrival = None
    for position in positions:
        account = population.account_at(position, now)
        label = account.true_label
        counts[label] += 1

        age = account.last_tweet_age(now)
        behaviourally_inactive = age is None or age > INACTIVITY_HORIZON
        if behaviourally_inactive != (label is Label.INACTIVE):
            report.label_mismatches += 1

        arrival = population.followed_at(position)
        if previous_arrival is not None and arrival < previous_arrival:
            report.ordering_violations += 1
        previous_arrival = arrival

        if account.created_at > arrival + 1e-6:
            report.causality_violations += 1

    # Composition accuracy: realised shares vs the spec's persona mass.
    expected = _expected_composition(population)
    total = sum(counts.values())
    report.composition_error = max(
        abs(counts[label] / total - expected[label]) for label in Label)
    return report


def _expected_composition(population: FollowerPopulation
                          ) -> Dict[Label, float]:
    """Label shares implied by the spec's segments and persona labels."""
    from ..twitter.personas import PERSONAS
    shares = {label: 0.0 for label in Label}
    for segment in population.spec.segments:
        mass = sum(segment.personas.values())
        for name, weight in segment.personas.items():
            shares[PERSONAS[name].label] += segment.fraction * weight / mass
    total = sum(shares.values()) or 1.0
    return {label: value / total for label, value in shares.items()}


def validate_world(world: SyntheticWorld, *, sample: int = 2000,
                   seed: int = 0) -> Tuple[List[ValidationReport], str]:
    """Validate every target in a world; returns reports and a table."""
    if not world.targets():
        raise ConfigurationError("the world has no targets to validate")
    now = world.ref_time
    reports = [
        validate_population(population, now, sample=sample, seed=seed)
        for population in world.targets()
    ]
    table = TextTable(
        ["target", "checked", "label mismatches", "ordering violations",
         "causality violations", "max composition error", "verdict"],
        title="world validation",
    )
    for report in reports:
        table.add_row(
            "@" + report.handle,
            report.checked,
            report.label_mismatches,
            report.ordering_violations,
            report.causality_violations,
            f"{100 * report.composition_error:.1f}pp",
            "ok" if report.ok else "FAIL",
        )
    return reports, table.render()
