"""Detection latency vs purchase size — and what the alarm costs.

The monitoring story has two clocks.  First, how long after a purchased
block lands does the daily poller's burst detector fire?  With a robust
MAD z-score over daily arrivals the answer is sharp: any block above the
detectability floor (``max(threshold * organic scale, min_excess)``
arrivals over the organic median) fires on the very next poll, and a
block below the floor never fires at all — latency is a step function
of quantity, not a slope.  Second, once the alarm fires, what does the
*investigation* cost?  A full FC audit re-crawls the whole follower
base no matter how small the change; a watermarked delta re-audit (see
:mod:`repro.sched.incremental`) walks only the new head, so its API
bill scales with the purchase, not the account — until the block
outgrows the engine's sample frame, at which point the delta path
falls back to a full audit by design (``delta_too_large``).

This experiment sweeps the purchase quantity across that whole range on
one monitored columnar target and reports both clocks per row: latency
in polling days (or "never"), the detector's excess-based size
estimate, and the delta-vs-full API-call bill at the detection instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..audit import AuditRequest, build_engines
from ..core.clock import SimClock
from ..core.errors import ConfigurationError
from ..core.timeutil import DAY, PAPER_EPOCH
from ..fc.training import TrainedDetector
from ..growth import BurstDetector, GrowthMonitor
from ..growth.series import series_from_observations
from ..sched import DeltaAuditor, WatermarkStore
from ..twitter import add_simple_target, build_columnar_world, \
    fake_purchase_burst


@dataclass(frozen=True)
class DetectionLatencyRow:
    """One purchase quantity's detection and investigation outcome."""

    quantity: int
    #: Polling days from the purchase landing to the first burst alert;
    #: ``None`` when the block stays under the detectability floor.
    latency_days: Optional[int]
    #: Strongest z-score at the detection instant (0 when undetected).
    z_score: float
    #: The detector's purchased-block size estimate (summed excess).
    estimated_block: int
    #: API calls of the delta re-audit at the detection instant, and of
    #: a fresh full audit of the same frame (both 0 when undetected).
    delta_api_calls: int
    full_api_calls: int
    #: What the delta path actually did: ``"delta"`` (head-only merge)
    #: or ``"full"`` (fallback, e.g. the block outgrew the frame).
    investigation_mode: str

    @property
    def detected(self) -> bool:
        """Whether the burst detector ever fired."""
        return self.latency_days is not None

    @property
    def call_reduction(self) -> float:
        """Full-audit calls per delta-audit call (1.0 = no saving)."""
        if self.delta_api_calls <= 0:
            return 1.0
        return self.full_api_calls / self.delta_api_calls


def _build_case(quantity: int, *, seed: int, base_followers: int,
                organic_per_day: float, purchase_day: int, start: float):
    """One monitored target with the purchase baked into its schedule."""
    world = build_columnar_world(seed=seed, ref_time=start)
    bursts = (fake_purchase_burst(float(purchase_day), quantity),) \
        if quantity > 0 else ()
    add_simple_target(world, "latcase", base_followers,
                      0.25, 0.10, 0.65,
                      daily_new_followers=organic_per_day,
                      post_ref_bursts=bursts)
    return world


def _investigation_costs(world, fc_detector, seed: int, start: float,
                         detect_time: float) -> Tuple[int, int, str]:
    """API bills of the two investigation strategies at ``detect_time``.

    The delta strategy took its watermarked baseline on day 0 (the
    audit an operator runs when putting an account on the watchlist);
    the full strategy audits from scratch.  Separate engines keep the
    call logs independent.
    """
    clock = SimClock(start)
    fc = build_engines(world, clock, fc_detector, seed,
                       engines=("fc",))["fc"]
    auditor = DeltaAuditor(fc, WatermarkStore())
    auditor.audit(AuditRequest(target="latcase", as_of=start, mode="delta"))
    baseline_calls = fc.client.call_log.count()
    report = auditor.audit(AuditRequest(
        target="latcase", as_of=detect_time, mode="delta"))
    delta_calls = fc.client.call_log.count() - baseline_calls

    full_fc = build_engines(world, SimClock(start), fc_detector, seed,
                            engines=("fc",))["fc"]
    full_fc.audit(AuditRequest(target="latcase", as_of=detect_time))
    full_calls = full_fc.client.call_log.count()
    return delta_calls, full_calls, report.details.get("mode", "full")


def run_detection_latency(
        *,
        quantities: Sequence[int] = (40, 500, 4000, 20000),
        base_followers: int = 30_000,
        organic_per_day: float = 150.0,
        purchase_day: int = 10,
        horizon_days: int = 30,
        seed: int = 42,
        burst_threshold: float = 6.0,
        burst_min_excess: int = 50,
        detector: TrainedDetector = None,
) -> Tuple[List[DetectionLatencyRow], str]:
    """Sweep purchase sizes; measure detection latency and audit cost."""
    if not quantities:
        raise ConfigurationError("need at least one purchase quantity")
    if not 1 <= purchase_day < horizon_days:
        raise ConfigurationError(
            "purchase_day must be within the polling horizon")
    burst_detector = BurstDetector(threshold=burst_threshold,
                                   min_excess=burst_min_excess)
    start = PAPER_EPOCH
    rows: List[DetectionLatencyRow] = []
    for quantity in quantities:
        world = _build_case(quantity, seed=seed,
                            base_followers=base_followers,
                            organic_per_day=organic_per_day,
                            purchase_day=purchase_day, start=start)
        clock = SimClock(start)
        monitor = GrowthMonitor(world, clock)
        observations: List[Tuple[float, int]] = []
        detected_day: Optional[int] = None
        z_score, estimated = 0.0, 0
        for day in range(horizon_days + 1):
            tick_time = start + day * DAY
            if clock.now() < tick_time:
                clock.advance_to(tick_time)
            observations.append(monitor.poll("latcase"))
            if day <= purchase_day or len(observations) < 5:
                continue
            events = burst_detector.detect(
                series_from_observations(observations))
            if events:
                detected_day = day
                z_score = events[0].z_score
                estimated = int(round(sum(e.excess for e in events)))
                break
        if detected_day is None:
            rows.append(DetectionLatencyRow(
                quantity=quantity, latency_days=None, z_score=0.0,
                estimated_block=0, delta_api_calls=0, full_api_calls=0,
                investigation_mode="none"))
            continue
        delta_calls, full_calls, mode = _investigation_costs(
            world, detector, seed, start, start + detected_day * DAY)
        rows.append(DetectionLatencyRow(
            quantity=quantity,
            latency_days=detected_day - purchase_day,
            z_score=z_score,
            estimated_block=estimated,
            delta_api_calls=delta_calls,
            full_api_calls=full_calls,
            investigation_mode=mode))

    from .report import TextTable
    table = TextTable(
        ["block size", "latency", "z", "est. block",
         "delta calls", "full calls", "saving", "mode"],
        title=f"detection latency vs purchase size "
              f"({base_followers} followers, "
              f"{organic_per_day:.0f}/day organic)",
    )
    for row in rows:
        latency = (f"{row.latency_days}d" if row.detected else "never")
        saving = (f"{row.call_reduction:.1f}x" if row.detected else "-")
        table.add_row(
            str(row.quantity), latency,
            f"{row.z_score:.1f}" if row.detected else "-",
            str(row.estimated_block) if row.detected else "-",
            str(row.delta_api_calls) if row.detected else "-",
            str(row.full_api_calls) if row.detected else "-",
            saving, row.investigation_mode,
        )
    return rows, table.render()
