"""Experiment E3 — Table II: response time to the first analysis request.

The paper times the four engines over the thirteen average-class
Italian accounts and reads the infrastructure off the latencies:

* FC always takes > 180 s — it honestly pages the whole follower list
  and looks up its 9604-strong sample on a single credential;
* Twitteraudit takes ~40-55 s when fresh, but answered @pinucciotwit in
  3 s because it had a result from "7 months ago";
* StatusPeople averages ~25 s, yet three popular accounts returned in
  2-3 s — silently pre-cached;
* Socialbakers answers in ~10 s uniformly — no caching observed, but a
  crawler far faster than public API budgets allow.

All of that is reproduced: the engines run against a shared virtual
clock, the pre-cached handles are warmed before measurement, and each
report carries its cache status.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..audit import AuditReport, AuditRequest
from ..audit import build_engines as _build_engines
from ..core.clock import SimClock
from ..core.errors import ConfigurationError
from ..faults.plan import FaultPlan
from ..faults.retry import RetryPolicy
from ..fc.training import TrainedDetector
from ..obs.analysis import render_phase_attribution
from ..obs.runtime import get_observability
from ..sched import BatchAuditScheduler
from ..twitter.population import SyntheticWorld
from .report import TextTable
from .testbed import (
    AVERAGE,
    PAPER_ACCOUNTS_BY_HANDLE,
    PRECACHED,
    PaperAccount,
    average_accounts,
    build_paper_world,
)

#: Engine column order of the paper's Table II.
ENGINE_ORDER = ("fc", "twitteraudit", "statuspeople", "socialbakers")


@dataclass(frozen=True)
class ResponseTimeRow:
    """Measured first-request latencies for one target (seconds)."""

    account: PaperAccount
    followers_used: int
    seconds: Dict[str, float]
    cached: Dict[str, bool]

    def paper_seconds(self) -> Optional[Tuple[float, float, float, float]]:
        """The paper's Table II row for this account, if measured."""
        return self.account.response_times


def build_engines(world: SyntheticWorld, clock: SimClock,
                  detector: Optional[TrainedDetector] = None,
                  seed: int = 5,
                  faults: Optional[FaultPlan] = None,
                  retry: Optional[RetryPolicy] = None,
                  provenance=None) -> Dict[str, object]:
    """The paper's four engines, sharing one world and one clock.

    Socialbakers' ten-per-day quota is lifted for experiment runs (the
    authors spread their audits over days; the runner does them in one
    session).  ``faults``/``retry`` make every engine's client crawl
    under the same injected API weather (see ``repro.faults``).

    A thin delegate to :func:`repro.audit.build_engines` (the unified
    factory), kept for its historical import site and its
    experiment-runner defaults.
    """
    return _build_engines(world, clock, detector, seed,
                          faults=faults, retry=retry,
                          sb_daily_quota=10**9,
                          provenance=provenance)


def run_response_time_experiment(
        *,
        seed: int = 42,
        accounts: Optional[Sequence[PaperAccount]] = None,
        detector: Optional[TrainedDetector] = None,
        prewarm: bool = True,
        faults: Optional[FaultPlan] = None,
        mode: str = "batch",
) -> Tuple[List[ResponseTimeRow], str]:
    """Measure Table II: first-analysis latency of all four engines.

    ``mode="batch"`` (the default) drives the audits through the
    :class:`~repro.sched.BatchAuditScheduler` with one slot per lane
    and **no** shared acquisition cache: each engine's lane runs its
    audits back to back on its own clock, so every measured latency is
    exactly the serial measurement (the paper timed each tool
    independently anyway), while the four lanes overlap in simulated
    time.  ``mode="serial"`` replays the legacy one-shared-clock loop.
    """
    if mode not in ("batch", "serial"):
        raise ConfigurationError(
            f"mode must be 'batch' or 'serial': {mode!r}")
    if accounts is None:
        accounts = average_accounts()
    obs = get_observability()
    trace_mark = len(obs.tracer)
    world = build_paper_world(seed, SimClock().now(), tiers=(AVERAGE,))
    clock = SimClock(world.ref_time)

    rows: List[ResponseTimeRow] = []
    if mode == "serial":
        engines = build_engines(world, clock, detector, seed=seed,
                                faults=faults)
        _prewarm(engines.__getitem__, accounts, prewarm)
        for account in accounts:
            seconds: Dict[str, float] = {}
            cached: Dict[str, bool] = {}
            followers_used = 0
            for tool in ENGINE_ORDER:
                report: AuditReport = engines[tool].audit(
                    AuditRequest(target=account.handle, engine=tool))
                seconds[tool] = report.response_seconds
                cached[tool] = report.cached
                followers_used = report.followers_count
            rows.append(ResponseTimeRow(
                account=account,
                followers_used=followers_used,
                seconds=seconds,
                cached=cached,
            ))
    else:
        scheduler = BatchAuditScheduler(
            world, clock, seed=seed, detector=detector, faults=faults,
            lane_slots=1, shared_cache=False)
        _prewarm(scheduler.engine, accounts, prewarm)
        scheduler.submit_batch(
            [AuditRequest(target=account.handle) for account in accounts])
        batch = scheduler.run()
        for account in accounts:
            reports = batch.reports_for(account.handle)
            rows.append(ResponseTimeRow(
                account=account,
                followers_used=max(
                    (r.followers_count for r in reports.values()), default=0),
                seconds={tool: reports[tool].response_seconds
                         for tool in ENGINE_ORDER},
                cached={tool: reports[tool].cached for tool in ENGINE_ORDER},
            ))

    table = TextTable(
        ["Twitter profile", "followers", "FC", "TA", "SP", "SB",
         "FC/TA/SP/SB (paper)"],
        title="Table II: response time to first analysis request (seconds)",
    )
    for row in rows:
        paper = row.paper_seconds()
        table.add_row(
            "@" + row.account.handle,
            row.followers_used,
            f"{row.seconds['fc']:.0f}",
            _cell(row, "twitteraudit"),
            _cell(row, "statuspeople"),
            _cell(row, "socialbakers"),
            "/".join(str(int(x)) for x in paper) if paper else "-",
        )
    rendered = table.render()
    if obs.enabled:
        # Where the seconds went: decompose this experiment's spans
        # (only the ones recorded since we started) per engine phase.
        rendered += "\n\n" + render_phase_attribution(
            obs.tracer.spans()[trace_mark:])
    return rows, rendered


def _prewarm(engine_for, accounts: Sequence[PaperAccount],
             enabled: bool) -> None:
    """Warm each tool's silently pre-cached handles before measuring."""
    if not enabled:
        return
    handles = {account.handle for account in accounts}
    for tool, precached_handles in PRECACHED.items():
        engine_for(tool).prewarm(
            [h for h in precached_handles if h in handles])


def _cell(row: ResponseTimeRow, tool: str) -> str:
    mark = "*" if row.cached[tool] else ""
    return f"{row.seconds[tool]:.0f}{mark}"
