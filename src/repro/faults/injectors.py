"""Runtime fault injection: binding a :class:`FaultPlan` to a client.

A :class:`FaultInjector` owns one dedicated ``random.Random`` derived
from the plan's seed (never the world's or any engine's RNG, so fault
weather cannot perturb sampling decisions) and answers one question per
API request: *does this request fail, and how?*

Decisions are made in injector-spec order with a first-hit-wins rule,
one uniform draw per applicable spec.  Because the draw sequence is a
pure function of the request sequence, two runs that issue the same
requests under the same plan observe identical faults — the contract
the property tests in ``tests/faults/test_properties.py`` enforce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.rng import make_rng
from .plan import FaultPlan, InjectorSpec


@dataclass(frozen=True)
class Fault:
    """One decided fault: the kind that fired and its parameter source."""

    kind: str
    spec: InjectorSpec

    @property
    def raises(self) -> bool:
        """Whether this fault surfaces as an exception (vs. truncation)."""
        return self.kind != "truncated_ids_page"


class FaultInjector:
    """Per-client fault decision engine.

    Parameters
    ----------
    plan:
        The declarative weather description.
    registry:
        Metrics registry for per-injector fire counters
        (``faults_injected_total{injector=...,resource=...}``).
        Instruments are created lazily on first fire, so a plan that
        never fires adds no metric series.
    """

    def __init__(self, plan: FaultPlan, registry=None) -> None:
        self._plan = plan
        self._rng = make_rng(plan.seed, "faults")
        self._registry = registry
        self._fired = {}

    @property
    def plan(self) -> FaultPlan:
        """The bound fault plan."""
        return self._plan

    def _count_fire(self, kind: str, resource: str) -> None:
        if self._registry is None:
            return
        counter = self._fired.get((kind, resource))
        if counter is None:
            counter = self._registry.counter(
                "faults_injected_total",
                help="fault-injector fires, by injector kind and resource",
                injector=kind, resource=resource)
            self._fired[(kind, resource)] = counter
        counter.inc()

    def decide(self, resource: str, now: float, *,
               paged: bool = False,
               cursor_positive: bool = False) -> Optional[Fault]:
        """Decide the fate of one request issued at simulated ``now``.

        ``paged`` marks ids-page requests (the only ones eligible for
        ``truncated_ids_page``); ``cursor_positive`` marks continuation
        pages (the only ones eligible for ``stale_cursor`` — a first
        page has no cursor to go stale).  Returns ``None`` when the
        request proceeds normally.
        """
        for spec in self._plan.injectors:
            if not spec.applies_to(resource):
                continue
            if spec.kind == "truncated_ids_page" and not paged:
                continue
            if spec.kind == "stale_cursor" and not cursor_positive:
                continue
            if self._rng.random() < spec.probability_at(now):
                self._count_fire(spec.kind, resource)
                return Fault(spec.kind, spec)
        return None
