"""Deterministic fault injection and retry for the simulated API.

The paper's numbers were measured against a flaky live service; this
package lets the reproduction ask how every engine's results degrade
when the service misbehaves — without giving up bit-for-bit
reproducibility.  Three pieces:

* :class:`FaultPlan` / :class:`InjectorSpec` / :class:`BurstSchedule`
  (``repro.faults.plan``) — declarative weather: which failure modes,
  against which resources, at what (possibly bursty) probability;
* :class:`FaultInjector` (``repro.faults.injectors``) — the per-client
  runtime that turns a plan plus a dedicated seeded RNG into per-request
  decisions;
* :class:`RetryPolicy` / :class:`RetryState` (``repro.faults.retry``) —
  capped exponential backoff with jitter and per-resource budgets,
  charged to the simulated clock.

Pass ``faults=named_plan("bursty")`` to
:class:`~repro.api.client.TwitterApiClient` (or to any engine, which
forwards it) to turn the weather on; the default ``faults=None`` leaves
every code path byte-identical to a fault-free build.
"""

from .injectors import Fault, FaultInjector
from .plan import (
    BurstSchedule,
    FaultPlan,
    INJECTOR_KINDS,
    InjectorSpec,
    RAISING_KINDS,
    SCENARIOS,
    named_plan,
)
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy, RetryState

__all__ = [
    "BurstSchedule",
    "DEFAULT_RETRY_POLICY",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "INJECTOR_KINDS",
    "InjectorSpec",
    "RAISING_KINDS",
    "RetryPolicy",
    "RetryState",
    "SCENARIOS",
    "named_plan",
]
