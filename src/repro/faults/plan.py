"""Declarative fault plans: what can go wrong, where, when, how often.

The paper's measurements were taken against a live service that failed
constantly — 503 storms, hung connections, rate-limit surprises beyond
the documented budgets, truncated follower pages, cursors that expired
mid-crawl.  "Fame for sale" (Cresci et al., 2015) makes the point
bluntly: crawler robustness determines dataset completeness.  A
:class:`FaultPlan` describes that hostile weather as data, so the same
storm can be replayed bit-for-bit against any engine.

A plan is a tuple of :class:`InjectorSpec` entries plus a seed.  Each
spec names one failure mode (one of :data:`INJECTOR_KINDS`), the API
resources it applies to, a base per-request probability, and an
optional :class:`BurstSchedule` that multiplies the probability during
periodic sim-time windows (503s come in storms, not as white noise).

Plans are *inert*: nothing here draws randomness or touches a clock.
:class:`repro.faults.injectors.FaultInjector` binds a plan to a client.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..core.errors import ConfigurationError

#: The supported failure modes, in documentation order.
#:
#: * ``transient_503`` — the request reaches the service and dies with
#:   HTTP 503; normal latency is charged.
#: * ``timeout`` — the request hangs; the client's full timeout interval
#:   is charged before the failure surfaces.
#: * ``rate_limit_spike`` — a server-side 429 beyond the documented
#:   Table I budgets, carrying a ``retry_after`` hint.
#: * ``truncated_ids_page`` — an ids page *succeeds* but silently drops
#:   the tail of its ids; pagination advances past the lost ids, so the
#:   crawl completes with an incomplete frame.
#: * ``stale_cursor`` — a continuation cursor expires mid-pagination
#:   (HTTP 400); only requests with ``cursor > 0`` are eligible.
INJECTOR_KINDS: Tuple[str, ...] = (
    "transient_503",
    "timeout",
    "rate_limit_spike",
    "truncated_ids_page",
    "stale_cursor",
)

#: Kinds that surface as raised exceptions (vs. degraded payloads).
RAISING_KINDS: Tuple[str, ...] = (
    "transient_503", "timeout", "rate_limit_spike", "stale_cursor")


@dataclass(frozen=True)
class BurstSchedule:
    """Periodic high-intensity windows on the simulated timeline.

    During ``[k * period + phase, k * period + phase + duration)`` the
    owning injector's probability is multiplied by ``multiplier``
    (capped at 1.0); outside those windows the base probability holds.
    Driven entirely by the shared :class:`~repro.core.clock.SimClock`,
    so two runs that issue requests at the same simulated instants see
    the same storms.
    """

    period: float
    duration: float
    multiplier: float
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError(f"period must be > 0: {self.period!r}")
        if not 0 < self.duration <= self.period:
            raise ConfigurationError(
                f"duration must be in (0, period]: {self.duration!r}")
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1: {self.multiplier!r}")

    def active(self, now: float) -> bool:
        """Whether the instant ``now`` falls inside a burst window."""
        return (now - self.phase) % self.period < self.duration

    def factor(self, now: float) -> float:
        """The probability multiplier in effect at ``now``."""
        return self.multiplier if self.active(now) else 1.0


@dataclass(frozen=True)
class InjectorSpec:
    """One failure mode's probability/burst schedule and parameters.

    ``resources`` limits the spec to the named API resources (``None``
    means every resource).  The remaining fields parameterise specific
    kinds and are ignored by the others: ``retry_after`` rides on
    ``rate_limit_spike`` 429s, ``timeout_seconds`` is the interval a
    ``timeout`` charges, ``truncate_fraction`` is the share of an ids
    page ``truncated_ids_page`` silently drops.
    """

    kind: str
    probability: float
    resources: Optional[Tuple[str, ...]] = None
    burst: Optional[BurstSchedule] = None
    retry_after: float = 60.0
    timeout_seconds: float = 30.0
    truncate_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in INJECTOR_KINDS:
            raise ConfigurationError(
                f"unknown injector kind: {self.kind!r} "
                f"(known: {', '.join(INJECTOR_KINDS)})")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1]: {self.probability!r}")
        if self.retry_after < 0:
            raise ConfigurationError(
                f"retry_after must be >= 0: {self.retry_after!r}")
        if self.timeout_seconds < 0:
            raise ConfigurationError(
                f"timeout_seconds must be >= 0: {self.timeout_seconds!r}")
        if not 0.0 < self.truncate_fraction <= 1.0:
            raise ConfigurationError(
                f"truncate_fraction must be in (0, 1]: "
                f"{self.truncate_fraction!r}")

    def applies_to(self, resource: str) -> bool:
        """Whether this spec covers requests against ``resource``."""
        return self.resources is None or resource in self.resources

    def probability_at(self, now: float) -> float:
        """Effective fire probability at simulated instant ``now``."""
        factor = self.burst.factor(now) if self.burst is not None else 1.0
        return min(1.0, self.probability * factor)


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus injector specs: one reproducible stretch of bad weather.

    The determinism contract: given the same plan (seed included) and
    the same sequence of API requests at the same simulated instants,
    the injected faults are identical — byte-identical
    :class:`~repro.api.endpoints.CallLog` records, identical audit
    results.  See ``docs/faults.md``.
    """

    injectors: Tuple[InjectorSpec, ...]
    seed: int = 7

    def __post_init__(self) -> None:
        if not isinstance(self.injectors, tuple):
            object.__setattr__(self, "injectors", tuple(self.injectors))

    def scaled(self, factor: float) -> "FaultPlan":
        """A copy with every probability multiplied by ``factor``.

        The chaos experiment sweeps a scenario through increasing
        intensities this way; probabilities cap at 1.0.
        """
        if factor < 0:
            raise ConfigurationError(f"factor must be >= 0: {factor!r}")
        return replace(self, injectors=tuple(
            replace(spec, probability=min(1.0, spec.probability * factor))
            for spec in self.injectors))

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same weather pattern under a different random stream."""
        return replace(self, seed=seed)


# ---------------------------------------------------------------------------
# Named scenarios (the CLI's --faults choices and the chaos testbed)
# ---------------------------------------------------------------------------

def _quiet(seed: int) -> FaultPlan:
    """Background noise only: rare 503s and timeouts, always retryable.

    Calibrated so a default :class:`~repro.faults.retry.RetryPolicy`
    recovers essentially every fault — FC's 9604-sample estimate must
    stay inside its ±1 % interval under this plan.
    """
    return FaultPlan(seed=seed, injectors=(
        InjectorSpec("transient_503", 0.01),
        InjectorSpec("timeout", 0.004, timeout_seconds=15.0),
    ))


def _bursty(seed: int) -> FaultPlan:
    """503 storms: a 2-minute outage every 5 minutes, plus 429 spikes."""
    return FaultPlan(seed=seed, injectors=(
        InjectorSpec("transient_503", 0.05,
                     burst=BurstSchedule(period=300.0, duration=120.0,
                                         multiplier=12.0)),
        InjectorSpec("rate_limit_spike", 0.02, retry_after=45.0),
        InjectorSpec("timeout", 0.01, timeout_seconds=30.0),
    ))


def _truncation(seed: int) -> FaultPlan:
    """Incomplete listings: dropped page tails and expiring cursors."""
    return FaultPlan(seed=seed, injectors=(
        InjectorSpec("truncated_ids_page", 0.35, truncate_fraction=0.5),
        InjectorSpec("stale_cursor", 0.08),
        InjectorSpec("transient_503", 0.02),
    ))


#: Scenario name -> plan factory, in CLI presentation order.
SCENARIOS = {
    "quiet": _quiet,
    "bursty": _bursty,
    "truncation": _truncation,
}


def named_plan(name: str, seed: int = 7) -> FaultPlan:
    """Build one of the canonical scenarios by name.

    ``quiet`` is recoverable background noise, ``bursty`` reproduces
    503 storms with rate-limit spikes, ``truncation`` attacks dataset
    completeness through dropped ids and stale cursors.
    """
    factory = SCENARIOS.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown fault scenario: {name!r} "
            f"(known: {', '.join(sorted(SCENARIOS))})")
    return factory(seed)
