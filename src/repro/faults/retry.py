"""Retry with capped exponential backoff, charged to the simulated clock.

The real crawler behind the paper's 27-day Obama acquisition could not
afford to abandon a follower page because of one 503; neither can the
reproduction once faults are injected.  :class:`RetryPolicy` describes
*how* to wait (base, multiplier, cap, deterministic jitter, per-resource
retry budgets); :class:`RetryState` is the mutable per-client tracker
that spends those budgets and guarantees the waits it hands out are
monotone non-decreasing within one request's attempt sequence — even
when jitter or a server ``retry_after`` hint would say otherwise.

Only :class:`~repro.core.errors.RetryableApiError` subclasses are ever
retried; permanent failures propagate to the caller immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.errors import ConfigurationError, RetryableApiError
from ..core.rng import make_rng


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with jitter and per-resource budgets.

    ``max_attempts`` counts the initial try: the default 4 allows three
    retries.  The wait before retry ``n`` (0-based) is
    ``min(max_backoff, base_backoff * multiplier**n)`` plus a uniform
    jitter of up to ``jitter`` times that wait, raised to any
    ``retry_after`` the failure carried.  ``budget_per_resource`` caps
    the *total* retries chargeable to one API resource between budget
    resets (the client resets alongside
    :meth:`~repro.api.client.TwitterApiClient.reset_budgets`), so a
    sustained outage degrades the dataset instead of stalling forever.
    """

    max_attempts: int = 4
    base_backoff: float = 2.0
    multiplier: float = 2.0
    max_backoff: float = 120.0
    jitter: float = 0.1
    budget_per_resource: int = 24
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1: {self.max_attempts!r}")
        if self.base_backoff <= 0:
            raise ConfigurationError(
                f"base_backoff must be > 0: {self.base_backoff!r}")
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1: {self.multiplier!r}")
        if self.max_backoff < self.base_backoff:
            raise ConfigurationError(
                f"max_backoff must be >= base_backoff: {self.max_backoff!r}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1]: {self.jitter!r}")
        if self.budget_per_resource < 0:
            raise ConfigurationError(
                f"budget_per_resource must be >= 0: "
                f"{self.budget_per_resource!r}")

    def backoff(self, retry_index: int) -> float:
        """The deterministic (pre-jitter) wait before retry ``retry_index``."""
        if retry_index < 0:
            raise ConfigurationError(
                f"retry_index must be >= 0: {retry_index!r}")
        return min(self.max_backoff,
                   self.base_backoff * self.multiplier ** retry_index)


class RetryState:
    """Per-client retry bookkeeping: budgets spent, jitter stream.

    One instance lives inside each :class:`TwitterApiClient`; its jitter
    RNG derives from the policy's seed, so same policy + same failure
    sequence means identical waits.
    """

    def __init__(self, policy: RetryPolicy) -> None:
        self._policy = policy
        self._rng = make_rng(policy.seed, "retry-jitter")
        self._spent: Dict[str, int] = {}

    @property
    def policy(self) -> RetryPolicy:
        """The immutable policy this state executes."""
        return self._policy

    def spent(self, resource: str) -> int:
        """Retries charged to ``resource`` since the last reset."""
        return self._spent.get(resource, 0)

    def reset(self) -> None:
        """Refill every resource's retry budget (fresh credentials)."""
        self._spent.clear()

    def next_wait(self, resource: str, retry_index: int,
                  error: Exception, previous_wait: float) -> Optional[float]:
        """Seconds to back off before retry ``retry_index``, or ``None``.

        ``None`` means *do not retry* — the error is not retryable, the
        request's attempt allowance is exhausted, or the resource's
        retry budget is spent.  A returned wait honors the error's
        ``retry_after`` (when present) and never decreases below
        ``previous_wait``, keeping per-request backoff sequences
        monotone non-decreasing.
        """
        if not isinstance(error, RetryableApiError):
            return None
        if retry_index + 1 >= self._policy.max_attempts:
            return None
        spent = self._spent.get(resource, 0)
        if spent >= self._policy.budget_per_resource:
            return None
        self._spent[resource] = spent + 1
        wait = self._policy.backoff(retry_index)
        wait += wait * self._policy.jitter * self._rng.random()
        retry_after = getattr(error, "retry_after", None)
        if retry_after is not None:
            wait = max(wait, float(retry_after))
        return max(wait, previous_wait)


#: The policy clients fall back to when faults are enabled without an
#: explicit retry configuration.
DEFAULT_RETRY_POLICY = RetryPolicy()
