"""Reproduction of "A Criticism to Society (as seen by Twitter analytics)".

A research-grade reimplementation of the paper's entire experimental
apparatus: a synthetic Twitter substrate, a rate-limited API simulator,
faithful re-implementations of the three commercial fake-follower
analytics it audits (StatusPeople Fakers, Socialbakers Fake Follower
Check, Twitteraudit), the authors' statistically sound Fake Project
classifier, and the experiment harness regenerating every table and
figure of the paper's evaluation.

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
paper-vs-measured results.
"""

__version__ = "1.0.0"

_ENGINE_NAMES = ("fc", "twitteraudit", "statuspeople", "socialbakers")


def quick_audit(followers, inactive, fake, genuine, *,
                engines=("fc",), seed=42, **spec_kwargs):
    """One-call demo: build a synthetic target and audit it.

    Constructs a world containing a single target with the given
    follower count and (inactive, fake, genuine) composition, runs the
    requested engines over it, and returns ``{engine_name: AuditReport}``.
    ``engines`` may be any subset of ``("fc", "twitteraudit",
    "statuspeople", "socialbakers")`` or the string ``"all"``.
    Additional keyword arguments are forwarded to
    :func:`repro.twitter.make_target_spec` (``tilt``,
    ``fake_burst_fraction``, ...).

    This is the front door for a first session with the library; real
    studies should assemble the pieces explicitly (see ``examples/``).
    """
    from .audit import AuditRequest, build_engines
    from .core.clock import SimClock
    from .twitter import add_simple_target, build_world

    if engines == "all":
        engines = _ENGINE_NAMES
    world = build_world(seed=seed)
    add_simple_target(world, "quick_target", followers,
                      inactive, fake, genuine, **spec_kwargs)
    clock = SimClock()
    built = build_engines(world, clock, seed=seed, engines=tuple(engines))
    return {
        name: built[name].audit(
            AuditRequest(target="quick_target", engine=name))
        for name in engines
    }
